"""Checkpoint fast-forward: deep capture/restore of a mid-run simulation.

A Coz session re-runs the same program once per (line, speedup) experiment,
and in a deterministic simulator every run with the same seed is
bit-identical up to the instant the first virtual-speedup delay lands.  This
module lets the harness simulate that shared prefix once and *resume* every
subsequent run from a snapshot instead of from t=0 (the rr / gem5
checkpointing idea applied to the DES).

The hard part is that VThreads are Python generators, which cannot be
pickled or deep-copied.  Capture therefore works by **record and replay**:

* While a :class:`Recorder` is attached, the engine appends every generator
  interaction to a global op log — ``(tid, send_value, yielded_op)`` for each
  ``gen.send``, ``(tid, send_value, None)`` when a generator finishes, and a
  ``_SPAWN_EXEC`` marker when a spawn continuation actually creates a child
  (child-tid assignment order is a scheduling fact, not derivable from yield
  order).  The log is serialized incrementally: send values become small
  descriptors (scalars verbatim, threads and exit values by tid) and sync
  primitives get first-encounter integer ids.
* :func:`restore` rebuilds the program from scratch, replays the logged
  sends in their original global order — which re-executes the generator
  bodies and thereby reconstructs every closure (channels, work tables,
  spin-lock counters) exactly — and then overlays the engine-owned state the
  replay cannot reproduce: thread scheduling fields, sync-primitive
  wait-sets, the event heap verbatim, RNG streams, sampler accumulators,
  and the profiler hook's own snapshot.

Bit-identity of a resumed run rests on three engine properties (see
DESIGN.md §5f): the heap's tuple ordering never compares event payloads
(the ``seq`` field is unique), every iteration over the ``running`` set is
tid-sorted, and all remaining cross-run state is either overlaid here or
rebuilt value-identically by the replay.

Capture is strictly best-effort: any state the recorder cannot serialize
(an unknown timer callable, a non-scalar send value that is not a thread or
exit value) raises :class:`SnapshotError`, the recorder warns once and
disables itself, and the run simply continues cold.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim import ops as O
from repro.sim.clock import MS
from repro.sim.engine import (
    _EV_TIMER,
    _SPAWN_EXEC,
    Engine,
    SimConfig,
    SimulationError,
)
from repro.sim.sync import Barrier, CondVar, Mutex, Semaphore
from repro.sim.thread import Frame, ThreadState, VThread

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "EngineSnapshot",
    "Recorder",
    "restore",
]

#: bump whenever the capture layout changes; restore refuses other versions
SNAPSHOT_VERSION = 1

#: first checkpoint-grid point (virtual ns)
DEFAULT_GRID_FIRST_NS = MS(10)
#: geometric growth of the grid spacing; the deepest checkpoint is then
#: always within (1 - 1/factor) of the end of any prefix, so a resumed run
#: re-simulates at most ~20% of the shared prefix with the default 1.25
DEFAULT_GRID_FACTOR = 1.25
#: hard cap on captures per run (runaway-grid backstop)
DEFAULT_MAX_SNAPSHOTS = 64


class SnapshotError(SimulationError):
    """State could not be captured or restored faithfully."""


# send values that serialize verbatim (never tuples, so descriptors — which
# are tuples — stay unambiguous)
_SCALAR_TYPES = (type(None), bool, int, float, str)

# which attributes of each yielded op reference sync primitives; walked in
# log order on both sides so first-encounter ids agree between capture and
# replay
_SYNC_ATTRS = {
    O.Lock: ("mutex",),
    O.TryLock: ("mutex",),
    O.Unlock: ("mutex",),
    O.CondWait: ("cond", "mutex"),
    O.Signal: ("cond",),
    O.Broadcast: ("cond",),
    O.BarrierWait: ("barrier",),
    O.SemWait: ("sem",),
    O.SemPost: ("sem",),
}

# op-log entry tags in serialized form
_T_SEND = 0
_T_STOP = 1
_T_SPAWN = 2


def _check_continuation_name(name: str) -> None:
    if not (name.startswith("_do_") or name in ("_setup_op_body", "_finish_exit")):
        raise SnapshotError(f"unexpected continuation method {name!r}")


def _check_timer_name(name: str) -> None:
    if not name.startswith("_fault_"):
        raise SnapshotError(f"unexpected engine timer method {name!r}")


@dataclass
class EngineSnapshot:
    """Deep, versioned capture of a running engine at one instant.

    ``oplog`` is *shared* between all snapshots taken by one recorder (each
    snapshot replays only its ``n_ops`` prefix), so a geometric grid of
    checkpoints costs O(total ops) serialization work, not O(ops × grid).
    The structure contains only plain data (ints, strings, tuples,
    SourceLines, Samples), so it pickles cleanly for the on-disk cache and
    for shipping to parallel workers.
    """

    version: int
    seed: int
    when: int                     # virtual time of capture
    n_ops: int                    # replay prefix length into oplog
    oplog: List[tuple]            # shared serialized op-log entries
    threads: List[dict]           # per-tid engine-owned overlays
    sync: List[tuple]             # (type_name, state) per registered primitive
    heap: List[tuple]             # event heap verbatim, threads/timers by ref
    engine: Dict[str, Any]        # engine scalars + RNG state
    faults: Optional[dict]        # fault-injector overlay (None if no plan)
    hook: Optional[Any]           # profiler hook's own snapshot_state()

    #: byte-container magic (versioned separately from SNAPSHOT_VERSION:
    #: the container wraps whatever snapshot layout is current)
    WIRE_MAGIC = b"RSNP"
    WIRE_VERSION = 1

    def to_bytes(self) -> bytes:
        """Versioned byte container for shipping/storing this snapshot.

        Used by the checkpoint store's disk files and by the parallel
        executor when a snapshot must cross a process boundary that cannot
        inherit it (non-fork start methods).  The payload is a pickle —
        the structure is plain data by construction — wrapped in a magic +
        version header so readers can reject foreign or future layouts
        without unpickling.
        """
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        return (
            self.WIRE_MAGIC
            + bytes([self.WIRE_VERSION])
            + self.version.to_bytes(4, "little")
            + payload
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EngineSnapshot":
        """Rebuild from :meth:`to_bytes`; raises :class:`SnapshotError` on
        foreign magic, unsupported container versions, or payload rot."""
        if len(blob) < 9 or blob[:4] != cls.WIRE_MAGIC:
            raise SnapshotError("not an EngineSnapshot byte container")
        if blob[4] != cls.WIRE_VERSION:
            raise SnapshotError(
                f"unsupported snapshot container version {blob[4]}"
            )
        snap_version = int.from_bytes(blob[5:9], "little")
        if snap_version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot layout v{snap_version} != current v{SNAPSHOT_VERSION}"
            )
        try:
            snap = pickle.loads(blob[9:])
        except Exception as exc:
            raise SnapshotError(f"unreadable snapshot payload ({exc})") from exc
        if not isinstance(snap, cls):
            raise SnapshotError("snapshot payload is not an EngineSnapshot")
        return snap


class Recorder:
    """Attach to a fresh engine; capture snapshots on a geometric time grid.

    The engine run loop calls :meth:`take` whenever virtual time is about to
    cross the next grid point.  Only the latest (deepest) snapshot is kept
    unless ``keep_all`` is set — a deterministic resume never benefits from
    a shallower checkpoint, and dropping the rest bounds memory.
    """

    def __init__(
        self,
        first_ns: int = DEFAULT_GRID_FIRST_NS,
        factor: float = DEFAULT_GRID_FACTOR,
        max_snapshots: int = DEFAULT_MAX_SNAPSHOTS,
        keep_all: bool = False,
        grid: Optional[List[int]] = None,
    ) -> None:
        if grid is not None:
            # explicit capture instants (tests); consumed front to back
            self._grid = sorted(grid)
            self._next: Optional[int] = self._grid[0] if self._grid else None
        else:
            self._grid = None
            self._next = int(first_ns)
        self.factor = factor
        self.max_snapshots = max_snapshots
        self.keep_all = keep_all
        self.snapshots: List[EngineSnapshot] = []
        self.failed = False
        self._taken = 0
        # raw engine-side op log and its incremental serialization
        self._raw: List[tuple] = []
        self._cursor = 0
        self._serialized: List[tuple] = []
        # first-encounter sync-primitive registry (ids stable across takes)
        self._sync_objs: List[Any] = []
        self._sync_ids: Dict[int, int] = {}

    # -------------------------------------------------------------- attach

    def attach(self, engine: Engine) -> None:
        """Wire the recorder into a not-yet-started engine.

        Refuses configurations whose state the snapshot cannot carry:
        observers (arbitrary state) and hooks without the snapshot
        protocol (``snapshot_state``/``restore_state``/``restore_timer``).
        """
        if engine._started:
            raise SnapshotError("recorder must attach before engine.run()")
        if engine._recorder is not None:
            raise SnapshotError("engine already has a recorder attached")
        if engine.observers:
            raise SnapshotError("engines with observers are not snapshot-aware")
        if engine.hook is not None and not hasattr(engine.hook, "snapshot_state"):
            raise SnapshotError(
                f"hook {type(engine.hook).__name__} is not snapshot-aware"
            )
        engine._recorder = self
        engine._oplog = self._raw
        engine._snap_next = self._next

    # ---------------------------------------------------------------- take

    def take(self, engine: Engine) -> Optional[int]:
        """Capture a snapshot now; return the next grid point (None = stop).

        Called by the engine run loop between event pops.  A capture
        failure warns once and permanently disables further captures for
        this run — snapshots already taken remain valid (the run up to
        their instant was recorded faithfully, whatever happens later).
        """
        try:
            snap = self._capture(engine)
        except SnapshotError as exc:
            warnings.warn(
                f"checkpoint capture disabled for this run: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            self.failed = True
            return None
        if self.keep_all or not self.snapshots:
            self.snapshots.append(snap)
        else:
            self.snapshots[-1] = snap
        self._taken += 1
        if self._taken >= self.max_snapshots:
            return None
        return self._advance_grid(engine)

    def _advance_grid(self, engine: Engine) -> Optional[int]:
        head = engine._heap[0][0] if engine._heap else engine.now
        if self._grid is not None:
            while self._grid and self._grid[0] <= head:
                self._grid.pop(0)
            self._next = self._grid[0] if self._grid else None
            return self._next
        nxt = self._next
        while nxt <= head:
            nxt = max(nxt + 1, int(nxt * self.factor))
        self._next = nxt
        return nxt

    # ------------------------------------------------------------- capture

    def _capture(self, engine: Engine) -> EngineSnapshot:
        raw = self._raw
        serialized = self._serialized
        while self._cursor < len(raw):
            serialized.append(self._serialize_entry(raw[self._cursor], engine))
            self._cursor += 1
        return EngineSnapshot(
            version=SNAPSHOT_VERSION,
            seed=engine.cfg.seed,
            when=engine.now,
            n_ops=len(serialized),
            oplog=serialized,
            threads=[self._thread_state(t, engine) for t in engine.threads],
            sync=[self._sync_state(obj) for obj in self._sync_objs],
            heap=[self._heap_entry(ev, engine) for ev in engine._heap],
            engine=self._engine_state(engine),
            faults=self._fault_state(engine),
            hook=engine.hook.snapshot_state() if engine.hook is not None else None,
        )

    def _serialize_entry(self, entry: tuple, engine: Engine) -> tuple:
        a, b, op = entry
        if op is _SPAWN_EXEC:
            return (_T_SPAWN, a, b)          # (child_tid, parent_tid)
        descr = self._descr_value(b, engine)
        if op is None:
            return (_T_STOP, a, descr)       # generator finished
        attrs = _SYNC_ATTRS.get(type(op))
        if attrs is not None:
            for attr in attrs:
                obj = getattr(op, attr)
                if id(obj) not in self._sync_ids:
                    self._sync_ids[id(obj)] = len(self._sync_objs)
                    self._sync_objs.append(obj)
        return (_T_SEND, a, descr)

    def _descr_value(self, v: Any, engine: Engine) -> Any:
        """Serialize a generator send value.

        Scalars pass through verbatim; descriptors are tuples, which scalar
        sends can never be.  Everything else must be reachable by identity
        from the engine (a thread, or some thread's exit value) — replay
        then resolves the replayed twin, preserving the identity graph.
        """
        if type(v) in _SCALAR_TYPES:
            return v
        if isinstance(v, VThread):
            return ("t", v.tid)
        for t in engine.threads:
            if t.exit_value is v:
                return ("x", t.tid)
        raise SnapshotError(f"cannot serialize send value {v!r}")

    def _thread_state(self, t: VThread, engine: Engine) -> dict:
        cont = t.continuation
        if cont is None:
            cont_d = None
        else:
            fn, op = cont
            if getattr(fn, "__self__", None) is not engine:
                raise SnapshotError(f"continuation {fn!r} is not engine-bound")
            _check_continuation_name(fn.__name__)
            if op is not None and op is not t.current_op:
                raise SnapshotError("continuation op is not the current op")
            cont_d = (fn.__name__, op is not None)
        return {
            "state": t.state.name,
            "send": self._descr_value(t.send_value, engine),
            "activity_remaining": t.activity_remaining,
            "activity_line": t.activity_line,
            "activity_memory_bound": t.activity_memory_bound,
            "chunk_start": t.chunk_start,
            "chunk_nominal": t.chunk_nominal,
            "chunk_rate": t.chunk_rate,
            "chunk_token": t.chunk_token,
            "chain_key": t.chain_key,
            "continuation": cont_d,
            "woken_by": t.woken_by.tid if t.woken_by is not None else None,
            "spinning": t.spinning,
            "blocked_on": t.blocked_on,
            "cpu_ns": t.cpu_ns,
            "profiler_cpu_ns": t.profiler_cpu_ns,
            "pause_ns": t.pause_ns,
            "sample_accum": t.sample_accum,
            "sample_buffer": tuple(t.sample_buffer),
            "pending_pause_ns": t.pending_pause_ns,
            "pending_cpu_ns": t.pending_cpu_ns,
            "stack": tuple((f.func, f.callsite) for f in t.stack),
            "prof": dict(t.prof),
            "joiners": tuple(j.tid for j in t.joiners),
        }

    def _sync_state(self, obj: Any) -> tuple:
        if isinstance(obj, Mutex):
            return (
                "Mutex",
                (
                    obj.owner.tid if obj.owner is not None else None,
                    tuple(t.tid for t in obj.waiters),
                    obj.acquires,
                    obj.contended_acquires,
                ),
            )
        if isinstance(obj, CondVar):
            waiters = tuple(
                (t.tid, self._sync_ids[id(m)]) for (t, m) in obj.waiters
            )
            return ("CondVar", (waiters, obj.signals, obj.broadcasts))
        if isinstance(obj, Barrier):
            return ("Barrier", (tuple(t.tid for t in obj.arrived), obj.cycles))
        if isinstance(obj, Semaphore):
            return ("Semaphore", (obj.value, tuple(t.tid for t in obj.waiters)))
        raise SnapshotError(f"unknown sync primitive {type(obj).__name__}")

    def _heap_entry(self, ev: tuple, engine: Engine) -> tuple:
        when, lp, sub, seq, kind, obj, arg = ev
        if kind == _EV_TIMER:
            obj_d = self._descr_timer(obj, engine)
        else:
            obj_d = obj.tid
        return (when, lp, sub, seq, kind, obj_d, arg)

    def _descr_timer(self, fn: Any, engine: Engine) -> tuple:
        bound_self = getattr(fn, "__self__", None)
        if bound_self is engine:
            _check_timer_name(fn.__name__)
            return ("e", fn.__name__)
        ref = getattr(fn, "snapshot_ref", None)
        if ref is not None:
            return ("h", fn.snapshot_ref())
        raise SnapshotError(f"cannot serialize pending timer {fn!r}")

    def _engine_state(self, engine: Engine) -> dict:
        return {
            "now": engine.now,
            "seq": engine._seq,
            "timer_count": engine._timer_count,
            "alive": engine._alive,
            "sleeping": engine._sleeping,
            "ready": tuple(t.tid for t in engine.ready),
            # tid-sorted is safe: the engine only ever iterates `running`
            # in tid order (see _mega_chunks / _rescale_running)
            "running": tuple(sorted(t.tid for t in engine.running)),
            "sampling_enabled": engine.sampling_enabled,
            "sampling_live": engine._sampling_live,
            "interference": engine.interference,
            "line_watchers": tuple(engine._line_watchers),
            "progress_counts": dict(engine.progress_counts),
            "total_delay_ns": engine.total_delay_ns,
            "total_cpu_ns": engine.total_cpu_ns,
            "events_processed": engine.events_processed,
            "sampler_total": engine.sampler.total_samples,
            "stalled": engine._stalled.tid if engine._stalled is not None else None,
            "rng": engine.rng.getstate(),
        }

    def _fault_state(self, engine: Engine) -> Optional[dict]:
        inj = engine._faults
        if inj is None:
            return None
        return {"rng": inj._rng.getstate(), "spiked": inj._spiked}


# ------------------------------------------------------------------ restore


def restore(
    snapshot: EngineSnapshot,
    program: Any,
    hook: Optional[Any] = None,
    config: Optional[SimConfig] = None,
) -> Engine:
    """Rebuild a live engine from ``snapshot``; finish it with resume_run().

    ``program`` must be the same program (rebuilt fresh — its generators
    will be partially re-executed by the replay), ``hook`` a *fresh*
    snapshot-aware profiler hook matching the one recorded (or None), and
    ``config`` the same SimConfig the original run used.
    """
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} != {SNAPSHOT_VERSION}"
        )
    cfg = config if config is not None else program.config
    if cfg.seed != snapshot.seed:
        raise SnapshotError(
            f"snapshot was taken with seed {snapshot.seed}, config has {cfg.seed}"
        )
    if (snapshot.hook is None) != (hook is None):
        raise SnapshotError("snapshot/hook presence mismatch")
    if hook is not None and not hasattr(hook, "restore_state"):
        raise SnapshotError(f"hook {type(hook).__name__} is not snapshot-aware")
    engine = Engine(cfg)
    engine.program = program  # type: ignore[attr-defined]
    if (snapshot.faults is None) != (engine._faults is None):
        raise SnapshotError("snapshot/config fault-plan mismatch")
    if hook is not None:
        engine.install(hook)

    threads, sync_objs = _replay(snapshot, program)
    _overlay_sync(snapshot, sync_objs, threads)
    _overlay_threads(snapshot, threads, engine)
    _overlay_engine(snapshot, engine, threads, hook)
    if hook is not None:
        hook.restore_state(snapshot.hook, engine)
    engine._started = True
    return engine


def _resolve(descr: Any, threads: List[VThread]) -> Any:
    if type(descr) is not tuple:
        return descr
    tag, tid = descr
    if tag == "t":
        return threads[tid]
    return threads[tid].exit_value


def _replay(
    snapshot: EngineSnapshot, program: Any
) -> Tuple[List[VThread], List[Any]]:
    """Re-execute the logged generator sends; rebuild threads and closures."""
    threads: List[VThread] = [VThread(program.main, name="main", tid=0)]
    sync_objs: List[Any] = []
    sync_seen: Dict[int, None] = {}
    oplog = snapshot.oplog
    try:
        for i in range(snapshot.n_ops):
            tag, a, b = oplog[i]
            if tag == _T_SEND:
                t = threads[a]
                try:
                    op = t.gen.send(_resolve(b, threads))
                except StopIteration:
                    raise SnapshotError(
                        f"replay desync: thread {a} finished early at op {i}"
                    )
                t.current_op = op
                attrs = _SYNC_ATTRS.get(type(op))
                if attrs is not None:
                    for attr in attrs:
                        obj = getattr(op, attr)
                        if id(obj) not in sync_seen:
                            sync_seen[id(obj)] = None
                            sync_objs.append(obj)
            elif tag == _T_SPAWN:
                parent = threads[b]
                op = parent.current_op
                if type(op) is not O.Spawn:
                    raise SnapshotError(
                        f"replay desync: spawn entry {i} but parent {b} "
                        f"yielded {type(op).__name__}"
                    )
                if a != len(threads):
                    raise SnapshotError(
                        f"replay desync: expected child tid {len(threads)}, "
                        f"log says {a}"
                    )
                threads.append(
                    VThread(op.body, name=op.name, parent=parent, tid=a)
                )
            else:  # _T_STOP
                t = threads[a]
                try:
                    t.gen.send(_resolve(b, threads))
                except StopIteration as stop:
                    t.exit_value = stop.value
                else:
                    raise SnapshotError(
                        f"replay desync: thread {a} kept running at op {i}"
                    )
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"replay failed at program level: {exc!r}") from exc
    if len(threads) != len(snapshot.threads):
        raise SnapshotError(
            f"replay produced {len(threads)} threads, snapshot has "
            f"{len(snapshot.threads)}"
        )
    if len(sync_objs) != len(snapshot.sync):
        raise SnapshotError(
            f"replay registered {len(sync_objs)} sync objects, snapshot has "
            f"{len(snapshot.sync)}"
        )
    return threads, sync_objs


def _overlay_sync(
    snapshot: EngineSnapshot, sync_objs: List[Any], threads: List[VThread]
) -> None:
    from collections import deque

    for obj, (type_name, state) in zip(sync_objs, snapshot.sync):
        if type(obj).__name__ != type_name:
            raise SnapshotError(
                f"sync-object type mismatch: replay {type(obj).__name__}, "
                f"snapshot {type_name}"
            )
        if type_name == "Mutex":
            owner, waiters, acquires, contended = state
            obj.owner = threads[owner] if owner is not None else None
            obj.waiters = deque(threads[w] for w in waiters)
            obj.acquires = acquires
            obj.contended_acquires = contended
        elif type_name == "CondVar":
            waiters, signals, broadcasts = state
            obj.waiters = deque(
                (threads[w], sync_objs[m]) for (w, m) in waiters
            )
            obj.signals = signals
            obj.broadcasts = broadcasts
        elif type_name == "Barrier":
            arrived, cycles = state
            obj.arrived = [threads[w] for w in arrived]
            obj.cycles = cycles
        else:  # Semaphore
            value, waiters = state
            obj.value = value
            obj.waiters = deque(threads[w] for w in waiters)


def _overlay_threads(
    snapshot: EngineSnapshot, threads: List[VThread], engine: Engine
) -> None:
    for t, d in zip(threads, snapshot.threads):
        t.state = ThreadState[d["state"]]
        t.send_value = _resolve(d["send"], threads)
        t.activity_remaining = d["activity_remaining"]
        t.activity_line = d["activity_line"]
        t.activity_memory_bound = d["activity_memory_bound"]
        t.chunk_start = d["chunk_start"]
        t.chunk_nominal = d["chunk_nominal"]
        t.chunk_rate = d["chunk_rate"]
        t.chunk_token = d["chunk_token"]
        t.chain_key = d["chain_key"]
        cont = d["continuation"]
        if cont is None:
            t.continuation = None
        else:
            name, has_op = cont
            _check_continuation_name(name)
            fn = getattr(engine, name, None)
            if fn is None:
                raise SnapshotError(f"engine has no continuation method {name!r}")
            t.continuation = (fn, t.current_op if has_op else None)
        woken = d["woken_by"]
        t.woken_by = threads[woken] if woken is not None else None
        t.spinning = d["spinning"]
        t.blocked_on = d["blocked_on"]
        t.cpu_ns = d["cpu_ns"]
        t.profiler_cpu_ns = d["profiler_cpu_ns"]
        t.pause_ns = d["pause_ns"]
        t.sample_accum = d["sample_accum"]
        # rehydrate through the sampler so the buffer matches the engine's
        # pipeline: a plain list (scalar) or a ColumnarBuf carrying the
        # captured Samples as a literal segment (columnar) — the capture
        # wire format (a materialized Sample tuple) is pipeline-agnostic
        t.sample_buffer = engine.sampler.new_buffer(d["sample_buffer"])
        t.pending_pause_ns = d["pending_pause_ns"]
        t.pending_cpu_ns = d["pending_cpu_ns"]
        t.stack = [Frame(func, callsite) for (func, callsite) in d["stack"]]
        t.chain_cache = None
        t.prof = dict(d["prof"])
        t.joiners = [threads[j] for j in d["joiners"]]


def _overlay_engine(
    snapshot: EngineSnapshot,
    engine: Engine,
    threads: List[VThread],
    hook: Optional[Any],
) -> None:
    from collections import Counter, deque

    e = snapshot.engine
    engine.threads = threads
    engine.main_thread = threads[0]
    engine.now = e["now"]
    engine._seq = e["seq"]
    engine._timer_count = e["timer_count"]
    engine._alive = e["alive"]
    engine._sleeping = e["sleeping"]
    engine.ready = deque(threads[tid] for tid in e["ready"])
    engine.running = set(threads[tid] for tid in e["running"])
    engine.sampling_enabled = e["sampling_enabled"]
    engine._sampling_live = e["sampling_live"]
    engine.interference = e["interference"]
    engine._line_watchers = set(e["line_watchers"])
    engine.progress_counts = Counter(e["progress_counts"])
    engine.total_delay_ns = e["total_delay_ns"]
    engine.total_cpu_ns = e["total_cpu_ns"]
    engine.events_processed = e["events_processed"]
    engine.sampler.total_samples = e["sampler_total"]
    stalled = e["stalled"]
    engine._stalled = threads[stalled] if stalled is not None else None
    engine.rng.setstate(e["rng"])
    heap = []
    for (when, lp, sub, seq, kind, obj_d, arg) in snapshot.heap:
        if kind == _EV_TIMER:
            tag, payload = obj_d
            if tag == "e":
                _check_timer_name(payload)
                fn = getattr(engine, payload, None)
                if fn is None:
                    raise SnapshotError(f"engine has no timer method {payload!r}")
            else:
                if hook is None:
                    raise SnapshotError("hook timer in snapshot but no hook given")
                fn = hook.restore_timer(payload)
            heap.append((when, lp, sub, seq, kind, fn, arg))
        else:
            heap.append((when, lp, sub, seq, kind, threads[obj_d], arg))
    # list order preserved verbatim: it is a valid heap, and heap-tuple
    # comparison never reaches the payload because seq is unique
    engine._heap = heap
    if snapshot.faults is not None:
        inj = engine._faults
        inj._rng.setstate(snapshot.faults["rng"])
        inj._spiked = snapshot.faults["spiked"]
