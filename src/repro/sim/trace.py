"""Execution tracing: a passive observer that records a run's timeline.

Useful for debugging workload models and for visualizing what the profiler
did to an execution (where pauses landed, when experiments ran).  The trace
records thread lifecycle events, per-line CPU accounting, progress-point
visits, and (optionally) every sample — bounded by ``max_events`` so a
runaway trace cannot exhaust memory.

Example::

    tracer = TraceObserver()
    program.run(observers=[tracer])
    print(tracer.summary())
    tracer.write_csv("trace.csv")
"""

from __future__ import annotations

import hashlib
import io
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.clock import fmt_ns
from repro.sim.hooks import Observer
from repro.sim.sampler import Sample
from repro.sim.source import SourceLine
from repro.sim.thread import VThread


@dataclass(frozen=True)
class TraceEvent:
    """One timeline record."""

    time: int
    kind: str          # 'spawn' | 'exit' | 'work' | 'progress' | 'sample' | 'call'
    thread: str
    detail: str

    def row(self) -> str:
        return f"{fmt_ns(self.time):>12}  {self.kind:<9} {self.thread:<16} {self.detail}"


class TraceObserver(Observer):
    """Record a bounded execution trace plus aggregate statistics."""

    wants_samples = False

    def __init__(
        self,
        record_work: bool = True,
        record_samples: bool = False,
        max_events: int = 100_000,
    ) -> None:
        self.record_work = record_work
        self.record_samples = record_samples
        self.wants_samples = record_samples
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False
        self.line_cpu: Counter = Counter()
        self.func_calls: Counter = Counter()
        self.progress_counts: Counter = Counter()
        self._engine = None

    # -- event feeds --------------------------------------------------------

    def on_run_start(self, engine) -> None:
        self._engine = engine

    def _emit(self, kind: str, thread: str, detail: str) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        now = self._engine.now if self._engine is not None else 0
        self.events.append(TraceEvent(now, kind, thread, detail))

    def on_thread_created(self, thread: VThread, parent: Optional[VThread]) -> None:
        pname = parent.name if parent is not None else "<none>"
        self._emit("spawn", thread.name, f"parent={pname}")

    def on_thread_exit(self, thread: VThread) -> None:
        self._emit(
            "exit",
            thread.name,
            f"cpu={fmt_ns(thread.cpu_ns)} paused={fmt_ns(thread.pause_ns)}",
        )

    def on_work(self, thread: VThread, line: SourceLine, func: str, nominal_ns: int) -> None:
        self.line_cpu[line] += nominal_ns
        if self.record_work:
            self._emit("work", thread.name, f"{line} +{fmt_ns(nominal_ns)}")

    def on_call(self, thread: VThread, func: str, caller: str) -> None:
        self.func_calls[func] += 1

    def on_progress(self, thread: VThread, name: str) -> None:
        self.progress_counts[name] += 1
        self._emit("progress", thread.name, name)

    def on_sample(self, sample: Sample) -> None:
        if self.record_samples:
            self._emit("sample", f"tid-{sample.tid}", str(sample.line))

    # -- reporting --------------------------------------------------------------

    def summary(self, top: int = 10) -> str:
        """Aggregate view: hottest lines, call counts, progress totals."""
        buf = io.StringIO()
        total = sum(self.line_cpu.values()) or 1
        buf.write(f"trace: {len(self.events)} events"
                  + (" (truncated)" if self.truncated else "") + "\n")
        buf.write("hottest lines by CPU:\n")
        for line, ns in self.line_cpu.most_common(top):
            buf.write(f"  {str(line):<28} {fmt_ns(ns):>12} ({100 * ns / total:5.1f}%)\n")
        if self.func_calls:
            buf.write("calls:\n")
            for func, n in self.func_calls.most_common(top):
                buf.write(f"  {func:<28} {n:>8}\n")
        if self.progress_counts:
            buf.write("progress points:\n")
            for name, n in sorted(self.progress_counts.items()):
                buf.write(f"  {name:<28} {n:>8}\n")
        return buf.getvalue()

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write("time_ns,kind,thread,detail\n")
        for e in self.events:
            detail = e.detail.replace(",", ";")
            buf.write(f"{e.time},{e.kind},{e.thread},{detail}\n")
        return buf.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_csv())


class TraceHasher(Observer):
    """Streaming digest of everything observable about a run's timeline.

    The digest covers the *semantic* event stream — thread lifecycle with
    final accounting, progress-point visits, every IP sample with its
    interpolated timestamp and callchain, per-line CPU totals, and the
    run-level aggregates — but deliberately **not** the granularity of
    ``on_work`` callbacks, which is an engine implementation detail: the
    chunk-coalescing fast path books one large span of CPU where the legacy
    quantum path books many small ones, while every number hashed here is
    identical between the two.  Two runs with equal digests took the same
    samples at the same instants, inserted the same delays, and finished at
    the same virtual time; this is the referee used by the golden-trace
    equivalence matrix.
    """

    def __init__(self, record_samples: bool = True) -> None:
        self.wants_samples = record_samples
        self._h = hashlib.sha256()
        self.line_cpu: Counter = Counter()
        self.func_calls: Counter = Counter()
        self._engine = None
        self._final: Optional[str] = None

    def _feed(self, *parts) -> None:
        self._h.update(("|".join(str(p) for p in parts) + "\n").encode())

    def on_run_start(self, engine) -> None:
        self._engine = engine

    def on_thread_created(self, thread: VThread, parent: Optional[VThread]) -> None:
        now = self._engine.now if self._engine is not None else 0
        ptid = parent.tid if parent is not None else -1
        self._feed("spawn", now, thread.tid, thread.name, ptid)

    def on_thread_exit(self, thread: VThread) -> None:
        self._feed(
            "exit", self._engine.now, thread.tid,
            thread.cpu_ns, thread.pause_ns, thread.profiler_cpu_ns,
        )

    def on_progress(self, thread: VThread, name: str) -> None:
        self._feed("prog", self._engine.now, thread.tid, name)

    def on_sample(self, sample: Sample) -> None:
        self._feed(
            "samp", sample.time, sample.tid, sample.line, sample.func,
            ";".join(str(s) for s in sample.callchain),
        )

    def on_work(self, thread: VThread, line: SourceLine, func: str, nominal_ns: int) -> None:
        self.line_cpu[line] += nominal_ns

    def on_call(self, thread: VThread, func: str, caller: str) -> None:
        self.func_calls[func] += 1

    def on_run_end(self, engine) -> None:
        for line, ns in sorted(self.line_cpu.items()):
            self._feed("cpu", line, ns)
        for func, n in sorted(self.func_calls.items()):
            self._feed("call", func, n)
        self._feed(
            "end", engine.now, engine.total_cpu_ns, engine.total_delay_ns,
            engine.sampler.total_samples,
        )
        self._final = self._h.hexdigest()

    def hexdigest(self) -> str:
        """The run digest (only valid after the run has ended)."""
        if self._final is None:
            raise RuntimeError("TraceHasher.hexdigest() called before run end")
        return self._final
