"""Discrete-event execution simulator: the substrate for causal profiling.

This package models what the Linux kernel, perf_event, and pthreads provide
to the real Coz profiler:

* virtual threads (generator coroutines) scheduled on a fixed number of
  virtual cores with a nanosecond-resolution virtual clock
  (:mod:`repro.sim.engine`, :mod:`repro.sim.thread`);
* synchronization primitives whose blocking/waking edges are visible to a
  profiler hook (:mod:`repro.sim.sync`);
* per-thread CPU-time instruction-pointer sampling with batched processing
  (:mod:`repro.sim.sampler`);
* source-line attribution and scope filtering, the stand-in for DWARF debug
  information (:mod:`repro.sim.source`).

Programs are written as generator functions that yield operations from
:mod:`repro.sim.ops`; see :mod:`repro.apps` for full examples.
"""

from repro.sim.clock import MS, NS_PER_MS, NS_PER_SEC, NS_PER_US, SEC, US, fmt_ns
from repro.sim.engine import Engine, SimConfig
from repro.sim.errors import (
    DeadlockError,
    RunFaultedError,
    SimulationError,
    StuckLockError,
    SyncError,
    ThreadCrashFault,
    WorkerCrashError,
    WorkerHungError,
)
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.hooks import HookAction, Observer, ProfilerHook
from repro.sim.ops import (
    IO,
    BarrierWait,
    Broadcast,
    CondWait,
    Join,
    Lock,
    PopFrame,
    Progress,
    PushFrame,
    SemPost,
    SemWait,
    SetSpinning,
    Signal,
    Sleep,
    Spawn,
    TryLock,
    Unlock,
    Work,
    call,
)
from repro.sim.program import Program, RunResult
from repro.sim.sampler import Sample, Sampler
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Barrier, Channel, CondVar, Mutex, Semaphore, SpinBarrier
from repro.sim.thread import ThreadState, VThread

__all__ = [
    "MS",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "SEC",
    "US",
    "fmt_ns",
    "Engine",
    "SimConfig",
    "DeadlockError",
    "FaultInjector",
    "FaultPlan",
    "RunFaultedError",
    "SimulationError",
    "StuckLockError",
    "SyncError",
    "ThreadCrashFault",
    "WorkerCrashError",
    "WorkerHungError",
    "HookAction",
    "Observer",
    "ProfilerHook",
    "IO",
    "BarrierWait",
    "Broadcast",
    "CondWait",
    "Join",
    "Lock",
    "PopFrame",
    "Progress",
    "PushFrame",
    "SemPost",
    "SemWait",
    "SetSpinning",
    "Signal",
    "Sleep",
    "Spawn",
    "TryLock",
    "Unlock",
    "Work",
    "call",
    "Program",
    "RunResult",
    "Sample",
    "Sampler",
    "Scope",
    "SourceLine",
    "line",
    "Barrier",
    "Channel",
    "CondVar",
    "Mutex",
    "Semaphore",
    "SpinBarrier",
    "ThreadState",
    "VThread",
]
