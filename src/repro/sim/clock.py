"""Virtual time units and helpers.

All simulator time is integer nanoseconds.  The helpers below convert from
human-friendly units; they always return ``int`` so that event times compare
exactly and simulation stays deterministic.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def US(x: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(x * NS_PER_US))


def MS(x: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(x * NS_PER_MS))


def SEC(x: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(x * NS_PER_SEC))


def fmt_ns(ns: int) -> str:
    """Render a nanosecond quantity with an adaptive unit, for reports.

    >>> fmt_ns(1_500)
    '1.500us'
    >>> fmt_ns(2_000_000_000)
    '2.000s'
    """
    if ns < 0:
        return "-" + fmt_ns(-ns)
    if ns < NS_PER_US:
        return f"{ns}ns"
    if ns < NS_PER_MS:
        return f"{ns / NS_PER_US:.3f}us"
    if ns < NS_PER_SEC:
        return f"{ns / NS_PER_MS:.3f}ms"
    return f"{ns / NS_PER_SEC:.3f}s"
