"""Program wrapper: build an engine, run a main thread, collect results.

A :class:`Program` is the simulator's equivalent of an executable: a main
generator function plus metadata (name, a notional debug-info size used by
the startup-overhead model).  Each :meth:`run` builds a *fresh* engine and
main thread, so repeated runs are independent — the app-building convention
is that all shared state (mutexes, channels, tables) is created inside the
main body's closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.sim.engine import Engine, SimConfig
from repro.sim.hooks import Observer, ProfilerHook


@dataclass
class RunResult:
    """Aggregate outcome of one simulated execution."""

    #: total virtual wall-clock time
    runtime_ns: int
    #: total nominal CPU time across all threads (incl. profiler overhead)
    cpu_ns: int
    #: CPU time charged by the profiler (startup + sample processing)
    profiler_cpu_ns: int
    #: total profiler-inserted pause time across all threads
    delay_ns: int
    #: visits per source-level progress point
    progress_counts: Dict[str, int]
    #: number of threads that ran
    thread_count: int
    #: total IP samples taken
    sample_count: int
    #: simulator events the engine processed (perf trajectory metric)
    events_processed: int = 0
    #: the engine, for tests and profilers that need post-run state
    engine: Engine = field(repr=False, default=None)

    def progress(self, name: str) -> int:
        """Visit count of one progress point (0 if never hit)."""
        return self.progress_counts.get(name, 0)


class Program:
    """A runnable simulated application."""

    def __init__(
        self,
        main: Callable,
        name: str = "program",
        config: Optional[SimConfig] = None,
        debug_size_kb: int = 256,
    ) -> None:
        self.main = main
        self.name = name
        self.config = config or SimConfig()
        #: notional size of debug information, drives Coz's startup cost model
        self.debug_size_kb = debug_size_kb

    def run(
        self,
        hook: Optional[ProfilerHook] = None,
        observers: Sequence[Observer] = (),
        config: Optional[SimConfig] = None,
        recorder=None,
    ) -> RunResult:
        """Execute the program once and return aggregate metrics.

        ``recorder`` (a :class:`repro.sim.snapshot.Recorder`) attaches
        checkpoint capture to the run; see :func:`resume` for the matching
        restore-side entry point.
        """
        engine = Engine(config or self.config)
        engine.program = self  # type: ignore[attr-defined] # for hooks needing metadata
        if hook is not None:
            engine.install(hook)
        for obs in observers:
            engine.add_observer(obs)
        if recorder is not None:
            recorder.attach(engine)
        engine.spawn(self.main, name="main")
        engine.run()
        return result_from_engine(engine)

    def resume(self, snapshot, hook=None, config=None) -> RunResult:
        """Finish a run from a checkpoint instead of from t=0.

        Bit-identical to :meth:`run` with the same hook/config by the
        argument in DESIGN.md §5f.  The program instance must be freshly
        built: the snapshot replay partially re-executes its generators,
        so a program whose closures already ran to completion cannot be
        resumed.
        """
        from repro.sim.snapshot import restore

        engine = restore(snapshot, self, hook=hook, config=config)
        engine.resume_run()
        return result_from_engine(engine)


def result_from_engine(engine: Engine) -> RunResult:
    """Aggregate metrics of a finished engine (cold or snapshot-resumed)."""
    profiler_cpu = sum(t.profiler_cpu_ns for t in engine.threads)
    return RunResult(
        runtime_ns=engine.now,
        cpu_ns=engine.total_cpu_ns,
        profiler_cpu_ns=profiler_cpu,
        delay_ns=engine.total_delay_ns,
        progress_counts=dict(engine.progress_counts),
        thread_count=len(engine.threads),
        sample_count=engine.sampler.total_samples,
        events_processed=engine.events_processed,
        engine=engine,
    )
