"""Deterministic fault injection for resilience testing (``--chaos``).

Long causal-profiling sessions are only useful if they survive to the end,
so every recovery path in the harness — typed failure records, watchdog
deadlines, retry/backoff, journal resume — must be exercisable on demand.
This module injects *virtual* faults into runs, seeded and deterministic:
the same :class:`FaultPlan` and run seed always produce the same faults at
the same virtual instants, which makes chaos tests repeatable and lets a
resumed session reproduce a faulted schedule bit-for-bit.

Fault classes (each an independent per-run probability):

* ``thread_crash`` — a thread aborts mid-activity
  (:class:`~repro.sim.errors.ThreadCrashFault`); the run fails with a
  typed, recordable error;
* ``stuck_lock`` — a running thread (typically a lock-holder mid-critical-
  section) stalls on-CPU for far longer than the in-sim stall detector
  tolerates; the detector raises
  :class:`~repro.sim.errors.StuckLockError` with every blocked peer's
  callchain, so the livelock is diagnosed instead of wedging the session;
* ``sample_loss`` / ``sample_dup`` — a delivered sample batch drops or
  duplicates one sample (a lossy perf_event ring buffer); the run completes
  and the profiler must tolerate the perturbed stream;
* ``jitter_spike`` — one inserted pause overshoots by ``spike_factor``x
  (extreme nanosleep overshoot); the run completes stretched, and the
  accounting drift is what the invariant audit exists to catch;
* ``worker_kill`` / ``worker_hang`` — executor-level faults: the *worker
  process* executing the run SIGKILLs itself or hangs before running.
  These fire only inside pool workers and only on a task's first attempt,
  so the executor's backoff/retry and watchdog paths are exercised and the
  retry succeeds.

Sim-level faults are enabled via ``SimConfig.faults`` (the engine builds a
:class:`FaultInjector` per run); the harness plumbs a plan end-to-end with
``ProfileRequest(faults=...)`` and the ``--chaos`` CLI flag.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import List, Optional

from repro.sim.clock import MS

#: mixes the plan seed and run seed into the injector's RNG stream,
#: keeping it disjoint from the profiler (seed) and delay (seed^0x5EED) RNGs
_FAULT_SALT = 0xFA17


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and from which seed.

    Probabilities are per run (``sample_loss``/``sample_dup`` per delivered
    batch, ``jitter_spike`` per inserted pause, once armed for the run).
    The plan is a frozen, picklable value: it crosses process boundaries
    with the task and participates in session fingerprints, so a resumed
    chaos session re-injects the exact same faults.
    """

    #: RNG stream seed; combined with each run's seed, see FaultInjector
    seed: int = 0
    #: probability a run's thread aborts mid-activity (ThreadCrashFault)
    thread_crash: float = 0.0
    #: probability a run gets a stuck on-CPU lock-holder (StuckLockError)
    stuck_lock: float = 0.0
    #: per-batch probability of dropping one delivered sample
    sample_loss: float = 0.0
    #: per-batch probability of duplicating one delivered sample
    sample_dup: float = 0.0
    #: per-pause probability of an extreme nanosleep overshoot
    jitter_spike: float = 0.0
    #: probability the pool worker executing the run SIGKILLs itself
    worker_kill: float = 0.0
    #: probability the pool worker executing the run hangs
    worker_hang: float = 0.0

    # --- magnitudes ---------------------------------------------------------
    #: window of virtual time in which timed faults arm, [lo, hi)
    fault_window_ns: tuple = (MS(2), MS(120))
    #: how long an injected stall grinds (must exceed stall_detect_ns)
    stall_ns: int = MS(10_000)
    #: in-sim stall detector deadline after the stall begins
    stall_detect_ns: int = MS(50)
    #: pause inflation factor for a jitter spike
    spike_factor: int = 50
    #: wall seconds a hung worker sleeps (bounded by the harness watchdog)
    worker_hang_s: float = 30.0

    def validate(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, float) and f.name.endswith(
                ("crash", "lock", "loss", "dup", "spike", "kill", "hang")
            ):
                if not 0.0 <= v <= 1.0:
                    raise ValueError(f"{f.name} must be a probability in [0, 1]")
        if self.stall_ns <= self.stall_detect_ns:
            raise ValueError("stall_ns must exceed stall_detect_ns")
        if self.spike_factor < 1:
            raise ValueError("spike_factor must be >= 1")

    @property
    def any_sim_faults(self) -> bool:
        """Does the plan inject anything inside the simulation?"""
        return any((
            self.thread_crash, self.stuck_lock, self.sample_loss,
            self.sample_dup, self.jitter_spike,
        ))

    @classmethod
    def chaos(cls, seed: int = 0, intensity: float = 0.25) -> "FaultPlan":
        """The ``--chaos`` preset: every fault class at ``intensity``."""
        return cls(
            seed=seed,
            thread_crash=intensity,
            stuck_lock=intensity,
            sample_loss=intensity,
            sample_dup=intensity,
            jitter_spike=intensity,
            worker_kill=intensity,
            worker_hang=intensity,
        )


class FaultInjector:
    """One run's fault schedule, drawn deterministically at construction.

    All randomness is consumed up front from a private
    ``Random((plan.seed << 32) ^ run_seed ^ salt)`` stream, so injection
    decisions never perturb the profiler's or the engine's RNGs, and two
    executions of the same (plan, seed) pair fault identically.  Worker-
    level faults additionally fold in the attempt number so they fire only
    on a task's first try — retries are meant to succeed.
    """

    def __init__(self, plan: FaultPlan, run_seed: int, attempt: int = 0) -> None:
        plan.validate()
        self.plan = plan
        self.run_seed = run_seed
        rng = random.Random((plan.seed << 32) ^ run_seed ^ _FAULT_SALT)
        lo, hi = plan.fault_window_ns

        #: virtual time at which a thread aborts (None = no crash this run)
        self.crash_at_ns: Optional[int] = (
            rng.randrange(lo, hi) if rng.random() < plan.thread_crash else None
        )
        #: virtual time at which a running thread stalls (None = no stall)
        self.stall_at_ns: Optional[int] = (
            rng.randrange(lo, hi) if rng.random() < plan.stuck_lock else None
        )
        #: virtual time from which pause spikes are armed (None = never)
        self.spike_from_ns: Optional[int] = (
            rng.randrange(lo, hi) if plan.jitter_spike > 0 else None
        )
        # worker faults are drawn per (seed, attempt): first attempt only
        wrng = random.Random((plan.seed << 32) ^ run_seed ^ (attempt << 16) ^ 0xB0B0)
        self.worker_kill = attempt == 0 and wrng.random() < plan.worker_kill
        self.worker_hang = (
            not self.worker_kill
            and attempt == 0
            and wrng.random() < plan.worker_hang
        )
        #: private stream for per-batch / per-pause draws during the run
        self._rng = rng
        self._spiked = False

    # -- sim-level faults (consumed by the engine) -----------------------------

    def perturb_batch(self, batch: List) -> List:
        """Maybe drop and/or duplicate one sample of a delivered batch."""
        plan = self.plan
        rng = self._rng
        if not batch:
            return batch
        if plan.sample_loss and rng.random() < plan.sample_loss:
            batch = list(batch)
            del batch[rng.randrange(len(batch))]
        if batch and plan.sample_dup and rng.random() < plan.sample_dup:
            batch = list(batch)
            batch.insert(rng.randrange(len(batch)), batch[rng.randrange(len(batch))])
        return batch

    def maybe_spike(self, pause_ns: int, now_ns: int) -> int:
        """Inflate one inserted pause once the spike window opens.

        At most one spike per run: a single extreme overshoot is the
        scenario (a descheduled profiler thread), and it keeps the injected
        timeline damage bounded.
        """
        if (
            self._spiked
            or pause_ns <= 0
            or self.spike_from_ns is None
            or now_ns < self.spike_from_ns
        ):
            return pause_ns
        if self._rng.random() < self.plan.jitter_spike:
            self._spiked = True
            return pause_ns * self.plan.spike_factor
        return pause_ns
