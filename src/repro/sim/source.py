"""Source locations and profiling scope.

In the real Coz, DWARF debug information maps sampled instruction pointers to
``file:line`` pairs, and the user restricts experiments to a *scope* (a set of
source files or binaries).  In the simulator every unit of work is tagged with
a :class:`SourceLine` directly, so this module only has to provide the line
abstraction, a parser for ``"file.c:123"`` strings, and scope filtering with
the same semantics as Coz §3.1 (default scope: the main executable's files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True, order=True)
class SourceLine:
    """A single source line: the unit Coz selects for virtual speedup."""

    file: str
    lineno: int

    def __post_init__(self) -> None:
        # lines are interned in counters, scope caches, and callchain tuples
        # on the sampling hot path; precompute the hash once
        object.__setattr__(self, "_hash", hash((self.file, self.lineno)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __reduce__(self):
        # rebuild via __init__ so the cached hash is recomputed in the
        # receiving process (str hashes are per-process randomized)
        return (SourceLine, (self.file, self.lineno))

    def __str__(self) -> str:
        return f"{self.file}:{self.lineno}"

    def __repr__(self) -> str:  # keep test failure output compact
        return f"SourceLine({self})"


#: bound on the process-wide intern table; a pathological stream of distinct
#: locations resets the table instead of growing it without limit
_INTERN_CAP = 65536

_intern_cache: dict = {}

#: entries that survive a cap reset: canonical pseudo-lines are referenced
#: by long-lived engine state (pool workers intern across many sessions),
#: so evicting them would fork their identity from freshly decoded profiles
_pinned: dict = {}


def _pin(src: SourceLine) -> SourceLine:
    key = (src.file, src.lineno)
    _pinned[key] = src
    _intern_cache[key] = src
    return src


def intern_line(file: str, lineno: int) -> SourceLine:
    """Canonical :class:`SourceLine` for ``(file, lineno)``.

    Wire-format decoding rebuilds the same few hundred source locations
    thousands of times across experiments and per-run sample counters.
    Sharing one object per location keeps decoded profiles compact and
    makes equality checks on the merge path mostly identity hits.

    The table is process-global and bounded (``_INTERN_CAP``): a
    pathological stream of distinct locations resets it to the pinned
    entries rather than growing without limit.  Interning is an identity
    optimization only — the wire formats carry ``(file, lineno)`` values
    and build their line tables per document, so nothing about a decoded
    or encoded profile depends on what this table happens to hold.
    """
    key = (file, lineno)
    src = _intern_cache.get(key)
    if src is None:
        if len(_intern_cache) >= _INTERN_CAP:
            _intern_cache.clear()
            _intern_cache.update(_pinned)
        src = SourceLine(file, lineno)
        _intern_cache[key] = src
    return src


def intern_cache_size() -> int:
    """Current entry count of the process-global intern table (tests)."""
    return len(_intern_cache)


def clear_intern_cache() -> None:
    """Reset the intern table to its pinned entries (tests)."""
    _intern_cache.clear()
    _intern_cache.update(_pinned)


# The pseudo-line used for simulator-internal time (scheduler bookkeeping,
# profiler processing cost, ...).  It is never in scope.  Pinned into the
# intern table so decoded profiles share its identity across cap resets.
RUNTIME_LINE = _pin(SourceLine("<runtime>", 0))

# Pseudo-file used for "library" code (libc-style helpers in app models);
# out of scope by default, exercising Coz's callchain-walking attribution.
LIBC_FILE = "<libc>"


def line(spec: str) -> SourceLine:
    """Parse ``"file.c:123"`` into a :class:`SourceLine`.

    >>> line("hashtable.c:217")
    SourceLine(hashtable.c:217)
    """
    file, sep, num = spec.rpartition(":")
    if not sep or not num.isdigit():
        raise ValueError(f"not a file:line spec: {spec!r}")
    return SourceLine(file, int(num))


@dataclass
class Scope:
    """Which source files are eligible for virtual speedup experiments.

    ``files=None`` means "the main executable" — in the simulator, every file
    that is not a pseudo-file (``<libc>``, ``<runtime>``).  An explicit file
    set mirrors Coz's ``--source-scope``.
    """

    files: Optional[frozenset] = None
    exclude: frozenset = field(default_factory=frozenset)
    #: memoized first_in_scope results keyed by callchain tuple; scopes are
    #: configured once and then queried per sample, so the cache is write-once
    _chain_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def all_main(cls) -> "Scope":
        """Default scope: every main-executable source file."""
        return cls()

    @classmethod
    def only(cls, *files: str) -> "Scope":
        """Restrict experiments to the given source files."""
        return cls(files=frozenset(files))

    @classmethod
    def excluding(cls, *files: str) -> "Scope":
        """Main-executable scope minus the given files."""
        return cls(exclude=frozenset(files))

    def contains(self, src: SourceLine) -> bool:
        """Is this line eligible for selection / direct attribution?"""
        if src.file.startswith("<"):
            return False
        if src.file in self.exclude:
            return False
        if self.files is None:
            return True
        return src.file in self.files

    def first_in_scope(self, callchain: Iterable[SourceLine]) -> Optional[SourceLine]:
        """Walk a callchain (innermost first) to the first in-scope line.

        This is Coz §3.4.2: a sample landing in out-of-scope code (e.g. libc)
        is attributed to the last in-scope callsite responsible for it.
        Returns ``None`` when the entire chain is out of scope.

        Sample callchains are memoized tuples (see ``VThread.callchain``),
        so results are cached per distinct chain; non-tuple iterables are
        resolved directly.
        """
        if type(callchain) is tuple:
            cache = self._chain_cache
            try:
                return cache[callchain]
            except KeyError:
                pass
            result = None
            for src in callchain:
                if self.contains(src):
                    result = src
                    break
            cache[callchain] = result
            return result
        for src in callchain:
            if self.contains(src):
                return src
        return None
