"""Virtual threads.

A :class:`VThread` wraps a generator coroutine plus all scheduler state the
engine needs: run state, the operation currently being executed, per-thread
CPU-time clock, the call stack used for sample attribution, and a scratch
namespace (`prof`) that the active profiler hook owns (Coz stores its local
delay counter and excess-pause bookkeeping there).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim.source import RUNTIME_LINE, SourceLine


class ThreadState(enum.Enum):
    """Scheduler state of a virtual thread."""

    READY = "ready"        # runnable, waiting for a core
    RUNNING = "running"    # executing a chunk on a core
    BLOCKED = "blocked"    # suspended on a sync primitive or join
    SLEEPING = "sleeping"  # timed suspension (sleep, I/O, inserted pause)
    FINISHED = "finished"  # generator exhausted


class Frame:
    """One entry of a thread's call stack."""

    __slots__ = ("func", "callsite")

    def __init__(self, func: str, callsite: Optional[SourceLine]) -> None:
        self.func = func
        self.callsite = callsite

    def __repr__(self) -> str:
        return f"Frame({self.func} @ {self.callsite})"


class VThread:
    """A simulated thread of execution."""

    # thread attributes are read and written on the engine's innermost loop;
    # __slots__ makes those accesses index-based and keeps instances compact
    __slots__ = (
        "tid", "name", "parent", "state", "gen",
        "send_value", "current_op", "activity_remaining", "activity_line",
        "activity_memory_bound", "chunk_start", "chunk_nominal", "chunk_rate",
        "chunk_token", "chain_key", "continuation", "woken_by", "spinning",
        "blocked_on",
        "cpu_ns", "profiler_cpu_ns", "pause_ns", "sample_accum",
        "sample_buffer", "pending_pause_ns", "pending_cpu_ns",
        "stack", "chain_cache", "prof", "joiners", "exit_value",
    )

    #: fallback tid source for threads constructed outside an engine (tests);
    #: the engine always passes an explicit per-engine ``tid`` so that thread
    #: ids — and everything downstream of them, like the iteration order of
    #: the running set — do not depend on how many runs this process already
    #: executed
    _COUNTER = 0

    def __init__(
        self,
        body,
        name: Optional[str] = None,
        parent: Optional["VThread"] = None,
        tid: Optional[int] = None,
    ) -> None:
        if tid is None:
            tid = VThread._COUNTER
            VThread._COUNTER += 1
        self.tid = tid
        self.name = name or f"thread-{self.tid}"
        self.parent = parent
        self.state = ThreadState.READY
        self.gen: Generator = body(self)

        # --- scheduler state -------------------------------------------------
        #: value to send into the generator on next advance
        self.send_value: Any = None
        #: the op currently being executed (cost/work in progress)
        self.current_op: Any = None
        #: remaining *nominal* ns of the current activity
        self.activity_remaining: int = 0
        #: source line the current activity is attributed to
        self.activity_line: SourceLine = RUNTIME_LINE
        #: is the current activity subject to interference scaling?
        self.activity_memory_bound: bool = False
        #: chunk bookkeeping: (start_time, nominal_ns, rate) of in-flight chunk
        self.chunk_start: int = 0
        self.chunk_nominal: int = 0
        self.chunk_rate: float = 1.0
        #: token to invalidate stale completion events after a rescale
        self.chunk_token: int = 0
        #: heap tie-break key of the thread's current chunk *chain* (run of
        #: back-to-back chunks since the last dispatch from the ready queue);
        #: 0 = no chain established.  See Engine._push_event.
        self.chain_key: int = 0
        #: what to do when the current activity's time elapses
        self.continuation: Any = None
        #: thread that woke us from the last blocking op (None = timer/IO)
        self.woken_by: Optional["VThread"] = None
        #: is this thread marked as busy-spinning (interference source)?
        self.spinning: bool = False
        #: what the thread is blocked on, for deadlock diagnostics
        self.blocked_on: Optional[str] = None

        # --- accounting -------------------------------------------------------
        #: total nominal on-CPU nanoseconds executed
        self.cpu_ns: int = 0
        #: nominal CPU ns charged by the profiler (sample processing cost)
        self.profiler_cpu_ns: int = 0
        #: total pause ns inserted by the profiler (virtual-speedup delays)
        self.pause_ns: int = 0
        #: per-thread sample accumulator (ns of CPU since last sample)
        self.sample_accum: int = 0
        #: buffered samples awaiting batch processing
        self.sample_buffer: List = []
        #: profiler-requested pause to insert before the thread continues
        self.pending_pause_ns: int = 0
        #: profiler-requested CPU cost to charge before the thread continues
        self.pending_cpu_ns: int = 0

        # --- attribution -------------------------------------------------------
        self.stack: List[Frame] = []
        #: memoized callchain() tuple; invalidated by the engine whenever the
        #: activity line or the frame stack changes
        self.chain_cache: Optional[Tuple[SourceLine, ...]] = None

        # --- profiler scratch space -------------------------------------------
        #: owned by the installed ProfilerHook (e.g. Coz's local delay count)
        self.prof: Dict[str, Any] = {}

        # --- lifecycle ---------------------------------------------------------
        self.joiners: List["VThread"] = []
        self.exit_value: Any = None

    # -- callchain -------------------------------------------------------------

    def callchain(self) -> Tuple[SourceLine, ...]:
        """Current callchain, innermost line first (like a perf callstack).

        The innermost entry is the line of the activity in flight; outer
        entries are the callsites recorded by :class:`~repro.sim.ops.
        PushFrame` markers.  The tuple is memoized (``chain_cache``); the
        engine clears the cache on PushFrame/PopFrame and whenever the
        activity line changes, so repeated sampling of one activity reuses
        the same tuple object.
        """
        cached = self.chain_cache
        if cached is not None:
            return cached
        chain = [self.activity_line]
        for frame in reversed(self.stack):
            if frame.callsite is not None:
                chain.append(frame.callsite)
        result = tuple(chain)
        self.chain_cache = result
        return result

    def current_func(self) -> str:
        """Name of the innermost function frame ('' at top level)."""
        return self.stack[-1].func if self.stack else ""

    # -- predicates --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state is ThreadState.FINISHED

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.FINISHED

    def __repr__(self) -> str:
        return f"VThread({self.name}, {self.state.value})"

    def __hash__(self) -> int:
        return self.tid

    def __eq__(self, other: object) -> bool:
        return self is other
