"""Synchronization primitives for virtual threads.

:class:`Mutex`, :class:`CondVar`, :class:`Barrier` and :class:`Semaphore` are
plain state containers; the engine performs their transitions when it
interprets the corresponding ops, so that every blocking and waking edge is
visible to the installed profiler hook (paper Tables 1 and 2).

:class:`Channel` and :class:`SpinBarrier` are *composites* built from the
primitives — a bounded producer/consumer queue (the pipes between pipeline
stages in dedup/ferret) and a PARSEC-style busy-wait barrier whose spin loop
repeatedly calls ``pthread_mutex_trylock``, the pathology behind the
fluidanimate and streamcluster case studies (§4.2.4-4.2.5).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.clock import US
from repro.sim.ops import (
    CondWait,
    Lock,
    SetSpinning,
    Signal,
    TryLock,
    Unlock,
    Work,
)
from repro.sim.source import SourceLine

_ANON = 0


def _anon(prefix: str) -> str:
    global _ANON
    _ANON += 1
    return f"{prefix}-{_ANON}"


class Mutex:
    """A pthread-style mutex (state only; the engine runs the protocol)."""

    __slots__ = ("name", "owner", "waiters", "acquires", "contended_acquires")

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or _anon("mutex")
        self.owner = None
        self.waiters: Deque = deque()
        # statistics, for tests and contention reports
        self.acquires = 0
        self.contended_acquires = 0

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def __repr__(self) -> str:
        return f"Mutex({self.name}, owner={getattr(self.owner, 'name', None)})"


class CondVar:
    """A pthread-style condition variable."""

    __slots__ = ("name", "waiters", "signals", "broadcasts")

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or _anon("cond")
        self.waiters: Deque = deque()
        self.signals = 0
        self.broadcasts = 0

    def __repr__(self) -> str:
        return f"CondVar({self.name}, waiters={len(self.waiters)})"


class Barrier:
    """A blocking barrier (pthread_barrier): the last arrival wakes all."""

    __slots__ = ("name", "n", "arrived", "cycles")

    def __init__(self, n: int, name: Optional[str] = None) -> None:
        if n < 1:
            raise ValueError("barrier needs n >= 1")
        self.name = name or _anon("barrier")
        self.n = n
        self.arrived: List = []
        self.cycles = 0

    def __repr__(self) -> str:
        return f"Barrier({self.name}, {len(self.arrived)}/{self.n})"


class Semaphore:
    """A counting semaphore (sem_t)."""

    __slots__ = ("name", "value", "waiters")

    def __init__(self, value: int = 0, name: Optional[str] = None) -> None:
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.name = name or _anon("sem")
        self.value = value
        self.waiters: Deque = deque()

    def __repr__(self) -> str:
        return f"Semaphore({self.name}, value={self.value})"


class Channel:
    """A bounded FIFO queue built from a mutex and two condition variables.

    Producers block when full, consumers block when empty — the classic
    pipeline pipe.  ``None`` is a valid item; use :meth:`close` plus the
    ``CLOSED`` sentinel to signal end-of-stream to consumers.
    """

    #: sentinel returned by :meth:`get` once the channel is closed and empty
    CLOSED = object()

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.name = name or _anon("chan")
        self.capacity = capacity
        self.items: Deque = deque()
        self.mutex = Mutex(f"{self.name}.mutex")
        self.not_empty = CondVar(f"{self.name}.not_empty")
        self.not_full = CondVar(f"{self.name}.not_full")
        self.closed = False
        self.total_put = 0
        self.total_got = 0

    def put(self, item: Any, line: Optional[SourceLine] = None) -> Generator:
        """``yield from chan.put(x)`` — block while the channel is full."""
        yield Lock(self.mutex, line)
        while len(self.items) >= self.capacity and not self.closed:
            yield CondWait(self.not_full, self.mutex, line)
        if self.closed:
            yield Unlock(self.mutex, line)
            raise RuntimeError(f"put() on closed channel {self.name}")
        self.items.append(item)
        self.total_put += 1
        yield Signal(self.not_empty, line)
        yield Unlock(self.mutex, line)

    def get(self, line: Optional[SourceLine] = None) -> Generator:
        """``yield from chan.get()`` — returns an item or ``Channel.CLOSED``."""
        yield Lock(self.mutex, line)
        while not self.items and not self.closed:
            yield CondWait(self.not_empty, self.mutex, line)
        if self.items:
            item = self.items.popleft()
            self.total_got += 1
            yield Signal(self.not_full, line)
        else:  # closed and drained
            item = Channel.CLOSED
            # let any other blocked consumer observe the close too
            yield Signal(self.not_empty, line)
        yield Unlock(self.mutex, line)
        return item

    def close(self, line: Optional[SourceLine] = None) -> Generator:
        """Mark end-of-stream and wake all blocked consumers/producers."""
        yield Lock(self.mutex, line)
        self.closed = True
        # Broadcast via the engine op would be natural; signal chains also
        # work because get() re-signals on observing the close.
        yield Signal(self.not_empty, line)
        yield Signal(self.not_full, line)
        yield Unlock(self.mutex, line)

    def __len__(self) -> int:
        return len(self.items)


class SpinBarrier:
    """A busy-wait barrier modelled on PARSEC's ``parsec_barrier.cpp``.

    Threads that arrive early spin in a loop that calls
    ``pthread_mutex_trylock`` on the barrier's mutex to poll the generation
    counter.  The spin loop:

    * burns CPU on ``spin_line`` (so a causal profiler sees a *hot* line and
      inserts many delays in other threads when it is selected — producing
      the downward-sloping profile of Figure 8), and
    * marks the thread as spinning, raising the engine's interference level,
      which slows memory-bound work elsewhere (the cache-coherence traffic
      that makes the real barrier so costly).
    """

    def __init__(
        self,
        n: int,
        spin_line: SourceLine,
        lock_line: Optional[SourceLine] = None,
        spin_iter_ns: int = US(2),
        trylock_spin: bool = True,
        name: Optional[str] = None,
    ) -> None:
        if n < 1:
            raise ValueError("barrier needs n >= 1")
        self.name = name or _anon("spinbarrier")
        self.n = n
        self.spin_line = spin_line
        self.lock_line = lock_line or spin_line
        self.spin_iter_ns = spin_iter_ns
        #: poll with pthread_mutex_trylock (parsec_barrier style) or with a
        #: plain flag read (ad-hoc synchronization, invisible to a profiler)
        self.trylock_spin = trylock_spin
        self.mutex = Mutex(f"{self.name}.mutex")
        self.generation = 0
        self.arrived = 0
        self.total_spin_iters = 0

    def wait(self) -> Generator:
        """``yield from spin_barrier.wait()`` — returns True for the last arrival."""
        yield Lock(self.mutex, self.lock_line)
        my_gen = self.generation
        self.arrived += 1
        if self.arrived == self.n:
            self.arrived = 0
            self.generation += 1
            yield Unlock(self.mutex, self.lock_line)
            return True
        yield Unlock(self.mutex, self.lock_line)

        # Busy-wait for the generation to advance.  Like parsec_barrier.cpp,
        # the flag check happens while *holding* the trylock'd mutex, so the
        # barrier's own bookkeeping (the last arrival's Lock above) must
        # queue behind spinners — the contention Coz exposes in Figure 8.
        yield SetSpinning(True)
        try:
            while self.generation == my_gen:
                self.total_spin_iters += 1
                if self.trylock_spin:
                    got = yield TryLock(self.mutex, self.spin_line)
                    if got:
                        yield Work(self.spin_line, self.spin_iter_ns)
                        yield Unlock(self.mutex, self.spin_line)
                    else:
                        yield Work(self.spin_line, self.spin_iter_ns)
                else:
                    yield Work(self.spin_line, self.spin_iter_ns)
        finally:
            yield SetSpinning(False)
        return False


class SpinMutex:
    """A busy-wait mutex: trylock in a loop instead of blocking.

    Used by the memcached model for its striped item locks: waiters burn CPU
    on ``spin_line`` and raise the interference level, so a causal profiler
    sees a hot line whose virtual speedup *hurts* — the contention signature
    of §4.2.6.
    """

    def __init__(
        self,
        spin_line: SourceLine,
        spin_iter_ns: int = US(1),
        name: Optional[str] = None,
    ) -> None:
        self.name = name or _anon("spinmutex")
        self.mutex = Mutex(f"{self.name}.inner")
        self.spin_line = spin_line
        self.spin_iter_ns = spin_iter_ns
        self.total_spin_iters = 0

    def lock(self, line: Optional[SourceLine] = None) -> Generator:
        got = yield TryLock(self.mutex, line or self.spin_line)
        if got:
            return
        yield SetSpinning(True)
        try:
            while True:
                self.total_spin_iters += 1
                yield Work(self.spin_line, self.spin_iter_ns)
                got = yield TryLock(self.mutex, self.spin_line)
                if got:
                    return
        finally:
            yield SetSpinning(False)

    def unlock(self, line: Optional[SourceLine] = None) -> Generator:
        yield Unlock(self.mutex, line)
