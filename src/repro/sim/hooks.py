"""Profiler hook and observer interfaces.

The engine exposes two integration surfaces:

* :class:`ProfilerHook` — the single *active* profiler (Coz).  It may inject
  behaviour: pauses before/after scheduling edges and extra CPU cost for
  sample processing.  This is the moral equivalent of Coz's LD_PRELOAD
  runtime: it sees every sample batch, every blocking/waking call, thread
  creation/exit, and progress-point visits.

* :class:`Observer` — passive listeners (gprof/perf baselines, metrics
  collectors).  They receive events but cannot perturb execution, except for
  a fixed per-call instrumentation cost the engine charges on their behalf
  (``call_overhead_ns``), which is how the gprof baseline models its probe
  effect.

* :class:`AuditHook` — the invariant-audit callback surface.  The delay
  engine and the profiler narrate every delay-accounting event (hits
  credited, pauses paid, credits granted, experiment boundaries) to an
  attached audit hook, which cross-checks the bookkeeping algebra
  (:mod:`repro.core.audit`).  Audit hooks are strictly observational: they
  must not draw randomness, charge cost, or touch scheduling, so attaching
  one can never change a profiling result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.sampler import Sample
    from repro.sim.source import SourceLine
    from repro.sim.thread import VThread


@dataclass
class HookAction:
    """What a profiler asks the engine to do after a sample batch.

    ``pause_ns``  — take the thread off-CPU for this long (delay insertion).
    ``cpu_ns``    — charge this much on-CPU time (sample-processing cost;
                    this is profiler-induced *overhead*, visible in wall
                    time but attributed to the runtime pseudo-line).
    """

    pause_ns: int = 0
    cpu_ns: int = 0


NO_ACTION = HookAction()


class ProfilerHook:
    """Base class for the active profiler. Every method is optional."""

    #: opt-in to columnar sample delivery: when the engine's sample
    #: pipeline is columnar and this is True, :meth:`on_samples` receives
    #: the :class:`~repro.sim.sampler.ColumnarBuf` itself (run-length
    #: segments, timestamps never expanded) instead of a materialized
    #: ``Sample`` list.  Hooks that leave this False always see lists.
    accepts_columnar = False

    def attach(self, engine) -> None:
        """Called when installed on an engine, before the run starts."""

    def on_run_start(self, engine) -> None:
        """Called at virtual time zero, before the main thread runs."""

    def on_run_end(self, engine) -> None:
        """Called when the simulation finishes."""

    def on_thread_created(self, thread: "VThread", parent: Optional["VThread"]) -> None:
        """A thread was spawned (parent is None for the main thread)."""

    def on_thread_exit(self, thread: "VThread") -> None:
        """A thread's generator finished (after its pre-exit delays ran)."""

    def on_samples(self, thread: "VThread", samples: List["Sample"]) -> HookAction:
        """A batch of IP samples from ``thread`` is ready for processing.

        Called in the context of the sampled thread at a chunk boundary,
        exactly like Coz processing its perf_event ring buffer.  The returned
        action is applied to the thread before it continues.
        """
        return NO_ACTION

    def before_block(self, thread: "VThread") -> int:
        """Thread is about to execute a potentially blocking call (Table 2).

        Return pause ns to insert *before* the call (pending delays).
        """
        return 0

    def before_wake_op(self, thread: "VThread") -> int:
        """Thread is about to execute a potentially waking call (Table 1).

        Return pause ns to insert *before* the call (pending delays).
        """
        return 0

    def on_unblock(self, thread: "VThread", waker: Optional["VThread"]) -> int:
        """Thread resumed from a blocking op.

        ``waker`` is the thread responsible (credit its delays — return 0 and
        skip), or ``None`` for timed wakeups (sleep/IO) where accumulated
        delays must be paid: return the pause ns to insert now.
        """
        return 0

    def on_progress(self, thread: "VThread", name: str) -> None:
        """Thread visited a source-level progress point."""

    def on_line_visit(self, thread: "VThread", line: "SourceLine") -> None:
        """Thread began executing a Work op on a registered breakpoint line.

        Only fired for lines previously registered via
        ``engine.watch_line(line)`` (breakpoint progress points).
        """


class AuditHook:
    """Callback surface for the delay-accounting invariant audit.

    The :class:`~repro.core.speedup.DelayEngine` reports every counter
    mutation; the :class:`~repro.core.profiler.CausalProfiler` reports run
    boundaries.  Implementations (see
    :class:`repro.core.audit.DelayAuditor`) rebuild the accounting from
    these events alone and compare against what the profiler booked, so a
    leak in either place shows up as a disagreement.

    Every method is optional, and none may perturb the run.
    """

    def on_delay_begin(self, delays, delay_ns: int, threads: List["VThread"]) -> None:
        """An experiment's delay protocol started (``begin``)."""

    def on_delay_hits(self, thread: "VThread", hits: int) -> None:
        """``hits`` self-credited samples were added to a thread's local count."""

    def on_delay_pause(
        self, thread: "VThread", count_delta: int, required_ns: int, inserted_ns: int
    ) -> None:
        """A thread caught up with the global count by pausing.

        ``count_delta`` delays were owed; ``required_ns`` is the nominal
        pause (count x delay) and ``inserted_ns`` the pause actually taken
        after nanosleep excess/jitter adjustment.
        """

    def on_delay_credit(self, thread: "VThread", count_delta: int) -> None:
        """A thread was credited ``count_delta`` delays without pausing."""

    def on_delay_inherit(self, thread: "VThread", local_count: int) -> None:
        """A new thread started with an inherited local count (§3.4)."""

    def on_delay_end(self, count: int, delay_ns: int) -> None:
        """The delay protocol stopped (``end``) with this final global count.

        Fires for *every* ``end`` — completed and partial experiments alike —
        so the audit's per-run expected delay total is independent of the
        profiler's own bookkeeping.
        """

    def on_profiler_run_end(self, profiler, engine) -> None:
        """The profiler finished recording a run's :class:`RunInfo`."""


class Observer:
    """Base class for passive listeners. Every method is optional."""

    #: CPU ns the engine charges to a thread on every PushFrame while this
    #: observer is installed (gprof's per-call instrumentation overhead).
    call_overhead_ns: int = 0

    #: opt-in to whole-batch sample delivery: observers that set this get
    #: :meth:`on_sample_batch` (with the columnar segment buffer when the
    #: engine's pipeline is columnar) instead of per-sample
    #: :meth:`on_sample` calls.  Only consulted for observers that also
    #: set ``wants_samples``.
    accepts_columnar = False

    def on_run_start(self, engine) -> None: ...

    def on_run_end(self, engine) -> None: ...

    def on_thread_created(self, thread: "VThread", parent: Optional["VThread"]) -> None: ...

    def on_thread_exit(self, thread: "VThread") -> None: ...

    def on_sample(self, sample: "Sample") -> None:
        """One IP sample was taken (before batch processing)."""

    def on_sample_batch(self, batch) -> None:
        """A flushed sample batch (``accepts_columnar`` observers only).

        ``batch`` is a :class:`~repro.sim.sampler.ColumnarBuf` under the
        columnar pipeline and a ``Sample`` list under the scalar one; the
        default implementation falls back to per-sample delivery either
        way (iterating a ColumnarBuf materializes it).
        """
        for s in batch:
            self.on_sample(s)

    def on_call(self, thread: "VThread", func: str, caller: str) -> None:
        """Thread entered ``func`` from ``caller`` (PushFrame)."""

    def on_work(self, thread: "VThread", line: "SourceLine", func: str, nominal_ns: int) -> None:
        """Exact accounting: ``nominal_ns`` of CPU ran on ``line``/``func``."""

    def on_progress(self, thread: "VThread", name: str) -> None: ...

    def on_block(self, thread: "VThread", obj: object) -> None:
        """``thread`` suspended on a synchronization object.

        ``obj`` is the primitive it blocked on — a :class:`~repro.sim.sync.
        Mutex`, :class:`~repro.sim.sync.CondVar`, :class:`~repro.sim.sync.
        Barrier`, :class:`~repro.sim.sync.Semaphore`, or the joined
        :class:`~repro.sim.thread.VThread`.  Timed suspensions (sleep, I/O,
        profiler-inserted pauses) are *not* blocking edges and never fire
        this.  Only observers that override :meth:`on_block` or
        :meth:`on_unblock` pay the (purely observational) notification cost;
        the engine's scheduling is unchanged either way.
        """

    def on_unblock(
        self, thread: "VThread", waker: Optional["VThread"], blocked_ns: int
    ) -> None:
        """``thread`` resumed from a blocking edge after ``blocked_ns``.

        ``waker`` is the thread whose waking op (Table 1) released it — the
        unlocker, signaller, last barrier arrival, semaphore poster, or
        exiting joinee.  Every :meth:`on_block` is matched by exactly one
        :meth:`on_unblock` (threads never finish blocked; deadlocks abort
        the run), and at notification time the waker's callchain still
        points at its waking call site — which is how the GAPP baseline
        attributes serialization to lock-holder code.
        """
