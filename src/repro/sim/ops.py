"""The simulated instruction set.

A virtual thread body is a Python generator that *yields* operation objects;
the engine interprets each one, advances virtual time, and ``send()``s the
operation's result back into the generator.  A thread body therefore reads
like ordinary threaded code::

    def worker(rt):
        yield Work(line("worker.c:10"), US(50))       # on-CPU computation
        yield Lock(table_mutex)                        # may block
        yield Work(line("worker.c:12"), US(5))
        yield Unlock(table_mutex)
        yield Progress("request-done")                 # progress point

Operations are split into the categories Coz cares about (paper Tables 1-2):

* **blocking** ops can suspend the thread waiting on another thread
  (``Lock``, ``CondWait``, ``BarrierWait``, ``Join``, ``SemWait``) — a
  profiler must execute pending delays *before* these, and credit delays
  after being woken by another thread;
* **waking** ops can resume a suspended thread (``Unlock``, ``Signal``,
  ``Broadcast``, ``BarrierWait``, ``SemPost``, thread exit) — a profiler
  must execute pending delays *before* these;
* **timed** suspensions (``Sleep``, ``IO``) where the thread is *not* woken
  by a peer, so accumulated delays are paid after resuming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple

from repro.sim.source import SourceLine


class Op:
    """Base class for everything a thread generator may yield."""


    #: does this op potentially suspend the thread waiting on a peer?
    blocking = False
    #: does this op potentially wake a suspended peer?
    waking = False


@dataclass(slots=True)
class Work(Op):
    """Execute on a CPU for ``duration`` nominal nanoseconds.

    ``line`` is the source line the instruction pointer sits on for the whole
    duration (samples taken during this op attribute to it).

    ``memory_bound`` work is subject to the engine's interference model: its
    real duration is scaled by ``1 + coeff * interference_level``, modelling
    cache-coherence traffic caused by spinning threads.
    """


    line: SourceLine
    duration: int
    memory_bound: bool = False

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative work duration: {self.duration}")


@dataclass(slots=True)
class Lock(Op):
    """Acquire a mutex, blocking if held (pthread_mutex_lock)."""

    blocking = True

    mutex: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class TryLock(Op):
    """Try to acquire a mutex; never blocks; result is True/False."""


    mutex: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class Unlock(Op):
    """Release a mutex, waking one waiter (pthread_mutex_unlock)."""

    waking = True

    mutex: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class CondWait(Op):
    """Wait on a condition variable; atomically releases ``mutex``."""

    blocking = True
    waking = True  # releasing the mutex can wake a lock waiter

    cond: Any
    mutex: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class Signal(Op):
    """Wake one condition-variable waiter (pthread_cond_signal)."""

    waking = True

    cond: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class Broadcast(Op):
    """Wake all condition-variable waiters (pthread_cond_broadcast)."""

    waking = True

    cond: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class BarrierWait(Op):
    """Wait at a barrier; the last arrival wakes everyone.

    Result is ``True`` for the serial (last-arriving) thread, like
    ``PTHREAD_BARRIER_SERIAL_THREAD``.
    """

    blocking = True
    waking = True

    barrier: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class SemWait(Op):
    """Decrement a semaphore, blocking at zero (sem_wait)."""

    blocking = True

    sem: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class SemPost(Op):
    """Increment a semaphore, waking one waiter (sem_post)."""

    waking = True

    sem: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class Join(Op):
    """Wait for another thread to finish (pthread_join)."""

    blocking = True

    thread: Any
    line: Optional[SourceLine] = None


@dataclass(slots=True)
class Sleep(Op):
    """Leave the CPU for ``duration`` ns (timed suspension, nanosleep)."""


    duration: int


@dataclass(slots=True)
class IO(Op):
    """Block on I/O for ``duration`` ns.

    Like ``Sleep`` for scheduling purposes, but kept distinct so workloads
    and tests can distinguish device waits from voluntary sleeps.
    """


    duration: int


@dataclass(slots=True)
class Spawn(Op):
    """Create a new thread running ``body``; result is the new VThread.

    ``body`` is a callable taking the new thread's :class:`~repro.sim.thread.
    VThread` and returning a generator.
    """


    body: Callable[[Any], Generator]
    name: Optional[str] = None


@dataclass(slots=True)
class Progress(Op):
    """Visit a named progress point (the COZ_PROGRESS macro)."""


    name: str


@dataclass(slots=True)
class PushFrame(Op):
    """Enter a function: push (func, line-of-callsite) on the call stack.

    Used for callchain attribution (§3.4.2) and by the gprof baseline for
    call counting.  Zero virtual cost unless an observer charges
    instrumentation overhead.
    """


    func: str
    callsite: Optional[SourceLine] = None


@dataclass(slots=True)
class PopFrame(Op):
    """Leave the current function frame."""



@dataclass(slots=True)
class SetSpinning(Op):
    """Mark this thread as busy-spinning (or not).

    Spinning threads raise the engine's global interference level, which
    slows down ``memory_bound`` work in other threads — the cache-coherence
    pathology behind the fluidanimate/streamcluster barrier case studies.
    """


    spinning: bool


def call(func: str, gen: Generator, callsite: Optional[SourceLine] = None) -> Generator:
    """Run ``gen`` inside a named call frame.

    Use as ``result = yield from call("hashtable_search", search(...))`` so
    samples taken inside ``gen`` carry the enclosing function on their
    callchain and the gprof baseline can count the call.
    """
    yield PushFrame(func, callsite)
    try:
        result = yield from gen
    except GeneratorExit:
        # the run was abandoned mid-call (errored or faulted engine);
        # yielding the frame pop here would be illegal, and the frame
        # bookkeeping is moot
        raise
    except BaseException:
        yield PopFrame()
        raise
    yield PopFrame()
    return result


#: Op classes a profiler must intercept before they may block (paper Table 2).
BLOCKING_OPS: Tuple[type, ...] = (Lock, CondWait, BarrierWait, SemWait, Join)

#: Op classes a profiler must intercept before they may wake a peer (Table 1).
WAKING_OPS: Tuple[type, ...] = (Unlock, Signal, Broadcast, BarrierWait, SemPost, CondWait)
