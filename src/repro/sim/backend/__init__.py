"""Engine execution backends: pure-Python reference and optional compiled core.

The engine's event loop — the per-op-class dispatch inner loop and the
heap-event hot path — has two interchangeable implementations:

* :mod:`repro.sim.backend.pure` — the reference loop, plain Python.  Always
  available, always the semantic ground truth.
* :mod:`repro.sim.backend.accel` — a thin eligibility wrapper around the
  ahead-of-time compiled ``repro.sim.backend._core`` CPython extension
  (built by ``python setup.py build_ext --inplace`` or a
  ``pip install 'repro[accel]'`` with a C toolchain present).  Runs whose
  configuration the compiled core does not cover fall back to the pure loop
  mid-flight; either way every observable result is bit-identical
  (``tests/sim/test_golden_trace.py`` is the referee, ``repro doctor``'s
  ``backend-identity`` invariant re-checks full sessions).

Selection happens at engine construction: ``SimConfig.backend`` if set,
else the ``REPRO_ENGINE_BACKEND`` environment variable (``pure`` or
``accel``), else ``accel`` whenever the compiled core imports.  Requesting
``accel`` without the extension built is an error only via the env var /
config (an explicit ask); automatic selection silently uses ``pure``.

The sample pipeline flavour (``SimConfig.columnar_samples`` /
``REPRO_SAMPLE_PIPELINE=columnar|scalar``, default columnar) is resolved
here too, so one module answers "how will this engine run?".
"""

from __future__ import annotations

import os
from typing import Optional

BACKEND_ENV = "REPRO_ENGINE_BACKEND"
PIPELINE_ENV = "REPRO_SAMPLE_PIPELINE"

_accel_module = None
_accel_checked = False


def accel_module():
    """The compiled core module, or ``None`` when it is not built."""
    global _accel_module, _accel_checked
    if not _accel_checked:
        _accel_checked = True
        try:
            from repro.sim.backend import _core  # type: ignore[attr-defined]
        except ImportError:
            _core = None
        _accel_module = _core
    return _accel_module


def accel_available() -> bool:
    return accel_module() is not None


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to ``'pure'`` or ``'accel'``.

    ``name`` (from ``SimConfig.backend``) wins over the environment; both
    must name a known backend.  An explicit ``accel`` request fails loudly
    when the extension is missing — silent degradation is reserved for the
    availability default, so a benchmark run can never *think* it measured
    the compiled core.
    """
    requested = name or os.environ.get(BACKEND_ENV, "").strip().lower() or None
    if requested is None:
        return "accel" if accel_available() else "pure"
    if requested not in ("pure", "accel"):
        raise ValueError(
            f"unknown engine backend {requested!r} (expected 'pure' or 'accel')"
        )
    if requested == "accel" and not accel_available():
        raise RuntimeError(
            "engine backend 'accel' was requested but the compiled core is "
            "not built; run `python setup.py build_ext --inplace` (or "
            "`pip install 'repro[accel]'`), or use REPRO_ENGINE_BACKEND=pure"
        )
    return requested


def default_columnar() -> bool:
    """Sample-pipeline default: columnar unless the env opts into scalar."""
    mode = os.environ.get(PIPELINE_ENV, "").strip().lower() or "columnar"
    if mode not in ("columnar", "scalar"):
        raise ValueError(
            f"unknown sample pipeline {mode!r} (expected 'columnar' or 'scalar')"
        )
    return mode == "columnar"


def event_loop_for(backend: str):
    """The event-loop callable (taking the engine) for a resolved backend."""
    if backend == "accel":
        from repro.sim.backend import accel

        return accel.event_loop
    from repro.sim.backend import pure

    return pure.event_loop
