"""The pure-Python engine event loop (reference backend).

This is the engine's inner loop verbatim — it lived on
:class:`repro.sim.engine.Engine` before the backend split and is the
semantic ground truth the compiled core must reproduce bit for bit.  It
operates on the engine's public/underscore state exactly as the methods it
cooperates with (``_drive``, ``_dispatch``, ``_deliver_batch``, …) expect.
"""

from __future__ import annotations

import heapq

from repro.sim.engine import (
    _EV_CHUNK,
    _EV_OVERHEAD,
    _EV_PAUSE,
    _EV_SLEEP,
    BLOCKED,
    READY,
    RUNNING,
    SLEEPING,
)


def event_loop(engine) -> None:
    """Run the event loop to completion (or error) on ``engine``."""
    self = engine
    max_ns = self.cfg.max_virtual_ns
    heap = self._heap
    pop = heapq.heappop
    # Loop-invariant hoists: sampling/observer wiring is fixed once the
    # run has started (on_run_start is the last chance to change it), and
    # the ready/running containers are mutated in place.
    ready = self.ready
    running = self.running
    observers = self.observers
    sampler = self.sampler
    period_ns = sampler.period_ns
    batch_size = sampler.batch_size
    sampling_live = self._sampling_live
    coalesce = self._coalesce
    snap_next = self._snap_next
    events = 0
    while self._alive:
        if not heap:
            self.events_processed += events
            events = 0
            self._raise_deadlock()
        if snap_next is not None and heap[0][0] >= snap_next:
            # virtual time is about to cross a checkpoint-grid boundary
            # and the engine is quiescent (between events): capture.
            # The early events_processed flush keeps the final total
            # identical whether or not this run is ever resumed.
            self.events_processed += events
            events = 0
            snap_next = self._take_checkpoint()
        when, _lp, _sub, _seq, kind, obj, arg = pop(heap)
        if when > self.now:
            self.now = when
        events += 1
        if kind == _EV_CHUNK:
            if obj.chunk_token == arg and obj.state is RUNNING:
                # inlined chunk completion — the most frequent event by
                # far: account the chunk's CPU (the _account_cpu fast
                # path, kept in sync), then requeue for round-robin
                # fairness or keep driving the thread
                nominal = obj.chunk_nominal
                if nominal > 0:
                    obj.activity_remaining -= nominal
                    obj.cpu_ns += nominal
                    self.total_cpu_ns += nominal
                    if observers:
                        func = obj.current_func()
                        for obs in observers:
                            obs.on_work(
                                obj, obj.activity_line, func, nominal
                            )
                    if sampling_live:
                        accum = obj.sample_accum + nominal
                        if (
                            accum < period_ns
                            and len(obj.sample_buffer) < batch_size
                        ):
                            obj.sample_accum = accum
                        else:
                            batch = sampler.account(
                                obj, nominal, self.now, True,
                                rate=obj.chunk_rate,
                            )
                            if batch is not None:
                                self._deliver_batch(obj, batch)
                obj.chunk_nominal = 0
                if obj.activity_remaining > 0 and ready:
                    running.discard(obj)
                    obj.state = READY
                    ready.append(obj)
                else:
                    self._drive(obj)
        elif kind == _EV_SLEEP:
            if obj.chunk_token == arg and obj.state is SLEEPING:
                self._sleeping -= 1
                obj.state = BLOCKED  # transit state so _wake() is legal
                self._wake(obj, waker=None)
        elif kind == _EV_PAUSE:
            if obj.chunk_token == arg and obj.state is SLEEPING:
                self._make_ready(obj)
        elif kind == _EV_OVERHEAD:
            if obj.chunk_token == arg and obj.state is RUNNING:
                self._drive(obj)
        else:  # _EV_TIMER
            self._timer_count -= 1
            obj()
            if coalesce:
                # a timer (experiment boundary) may have handed running
                # threads a pending pause/CPU charge; the legacy engine
                # honours those at the next quantum boundary, so pull any
                # in-flight mega-chunk back to its grid
                self._truncate_pending()
        if ready:
            self._dispatch()
        if max_ns is not None and self.now > max_ns:
            self.events_processed += events
            self._raise_overrun()
        if self._alive and not running and not ready:
            if self._sleeping == 0 and self._timer_count == 0:
                self.events_processed += events
                events = 0
                self._raise_deadlock()
    self.events_processed += events
