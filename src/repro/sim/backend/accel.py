"""Eligibility wrapper around the compiled engine core (``_core``).

The compiled loop covers the configurations the benchmarks and profile
sessions actually run: no passive observers (their ``on_work``/``on_block``
fan-out lives in Python), no fault injection, and no interference model
(so every chunk's rate is exactly 1.0).  Anything else silently falls back
to the pure loop *for that run* — selection is per ``event_loop`` call, so
one parallel session can mix accel program runs with pure observed runs
and still be bit-identical throughout (the golden-trace matrix pins this).

``Engine.accel_loops`` counts the loops the compiled core actually ran, so
benchmarks and tests can assert the fast path engaged rather than trusting
the backend label.
"""

from __future__ import annotations

import heapq

from repro.sim.backend import accel_module, pure

_ctx = None


def _context():
    """The singleton tuple of interpreter objects the C core needs.

    Built lazily (engine/ops import this package during their own import);
    the C side compares ``ThreadState`` members and the ``Work`` class by
    pointer, so these must be the very objects the engine uses.
    """
    global _ctx
    if _ctx is None:
        from repro.sim import ops as O
        from repro.sim.engine import BLOCKED, READY, RUNNING, SLEEPING
        from repro.sim.source import RUNTIME_LINE
        from repro.sim.thread import Frame, VThread

        _ctx = (
            READY, RUNNING, BLOCKED, SLEEPING,
            O.Work, RUNTIME_LINE,
            heapq.heappush, heapq.heappop,
            VThread, Frame,
        )
    return _ctx


def eligible(engine) -> bool:
    """Can the compiled core run this engine's loop bit-identically?"""
    return (
        not engine.observers
        and engine._faults is None
        and engine.cfg.interference_coeff == 0.0
    )


def event_loop(engine) -> None:
    """Run the event loop: compiled when eligible, pure otherwise."""
    core = accel_module()
    if core is None or not eligible(engine):
        pure.event_loop(engine)
        return
    engine.accel_loops += 1
    core.event_loop(engine, _context())
