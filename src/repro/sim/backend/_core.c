/* Compiled twin of repro.sim.backend.pure.event_loop.
 *
 * One entry point: event_loop(engine, ctx).  The C loop implements the
 * engine's hot path -- the heap-event loop, the inlined chunk-completion
 * accounting, _dispatch, _drive, _begin_chunk, _advance and _setup_op --
 * and delegates everything cold or semantically rich (sync-op actions,
 * wakes, pauses, sample delivery, checkpoints, error raising) back to the
 * engine's own Python methods, so there is exactly one implementation of
 * each of those behaviours.
 *
 * Bit-identity contract (DESIGN.md section 5i):
 *   - all counters (_seq, _alive, _sleeping, _timer_count, total_cpu_ns)
 *     stay canonical on the engine object: the C loop reads-modifies-writes
 *     them through attributes, so Python callees always see current values;
 *   - `now` is kept in a C local and written through to engine.now the
 *     moment it advances, before any Python call can observe it;
 *   - events_processed accumulates in C and is flushed at exactly the same
 *     points the pure loop flushes (checkpoint, deadlock, overrun, normal
 *     exit) -- and, like the pure loop, NOT when an arbitrary exception
 *     unwinds;
 *   - heap pushes/pops go through heapq on the very list the engine owns,
 *     building the same 7-tuples, so a snapshot taken mid-run is
 *     indistinguishable from one taken under the pure loop.
 *
 * The wrapper (repro.sim.backend.accel) only routes engines here when
 * there are no observers, no fault plan, and interference is disabled;
 * this file re-checks those invariants at entry and refuses otherwise.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#if PY_VERSION_HEX < 0x030A0000
#error "repro.sim.backend._core requires CPython >= 3.10 (PyIter_Send)"
#endif

/* event kinds -- must match repro.sim.engine._EV_* */
#define EV_CHUNK 0
#define EV_PAUSE 1
#define EV_OVERHEAD 2
#define EV_SLEEP 3
#define EV_TIMER 4

#define SNAP_NONE LLONG_MIN

/* ------------------------------------------------------------------ strings */

#define STR_LIST(X)                                                         \
    X(now) X(_seq) X(total_cpu_ns) X(_alive) X(_sleeping) X(_timer_count)   \
    X(events_processed) X(hook) X(_oplog) X(_line_watchers) X(_op_table)    \
    X(ready) X(running) X(observers) X(sampler) X(cfg) X(_coalesce)         \
    X(_sampling_live) X(_snap_next) X(_heap) X(_faults)                     \
    X(quantum_ns) X(cores) X(max_virtual_ns) X(flush_samples_on_block)      \
    X(interference_coeff) X(period_ns) X(batch_size) X(account) X(drain)    \
    X(line) X(memory_bound) X(duration) X(append) X(popleft) X(add)         \
    X(discard) X(on_line_visit) X(before_block) X(before_wake_op)           \
    X(_deliver_batch) X(_take_checkpoint) X(_raise_deadlock)                \
    X(_raise_overrun) X(_truncate_pending) X(_truncate_for_fairness)        \
    X(_wake) X(_make_ready) X(_start_pause) X(_start_overhead_slice)        \
    X(_begin_exit) X(_resolve_op_plan) X(_setup_op_body)                    \
    X(mutex) X(func) X(callsite) X(owner) X(acquires) X(waiters)            \
    X(name) X(n) X(progress_counts) X(on_progress) X(total_delay_ns)        \
    X(_call_overhead_ns) X(_do_lock) X(_do_unlock) X(_do_push_frame)        \
    X(_do_pop_frame) X(_do_progress) X(contended_acquires) X(on_unblock)

#define DECL_STR(n) static PyObject *s_##n;
STR_LIST(DECL_STR)
#undef DECL_STR

static PyObject *float_one; /* 1.0, shared chunk_rate value */
static PyObject *str_inserted_pause; /* "inserted-pause" blocked_on marker */

/* ------------------------------------------------------------- thread slots */

enum {
    SL_STATE, SL_GEN, SL_SEND_VALUE, SL_CURRENT_OP, SL_ACTIVITY_REMAINING,
    SL_ACTIVITY_LINE, SL_ACTIVITY_MEMORY_BOUND, SL_CHUNK_START,
    SL_CHUNK_NOMINAL, SL_CHUNK_RATE, SL_CHUNK_TOKEN, SL_CHAIN_KEY,
    SL_CONTINUATION, SL_PENDING_PAUSE, SL_PENDING_CPU, SL_CPU_NS,
    SL_SAMPLE_ACCUM, SL_SAMPLE_BUFFER, SL_CHAIN_CACHE, SL_TID,
    SL_EXIT_VALUE, SL_STACK, SL_BLOCKED_ON, SL_PAUSE_NS, SL_PROFILER_CPU,
    SL_WOKEN_BY,
    SL_COUNT
};

static const char *slot_names[SL_COUNT] = {
    "state", "gen", "send_value", "current_op", "activity_remaining",
    "activity_line", "activity_memory_bound", "chunk_start",
    "chunk_nominal", "chunk_rate", "chunk_token", "chain_key",
    "continuation", "pending_pause_ns", "pending_cpu_ns", "cpu_ns",
    "sample_accum", "sample_buffer", "chain_cache", "tid",
    "exit_value", "stack", "blocked_on", "pause_ns", "profiler_cpu_ns",
    "woken_by",
};

static Py_ssize_t slot_off[SL_COUNT];
static PyTypeObject *slot_type = NULL;

/* Extract the VThread __slots__ member offsets once per process.  A
 * member_descriptor's offset is valid for subclass instances too, so the
 * per-thread check below is a subtype check, not an exact-type check. */
static int
resolve_slots(PyObject *vt_type)
{
    if ((PyTypeObject *)vt_type == slot_type)
        return 0;
    if (!PyType_Check(vt_type)) {
        PyErr_SetString(PyExc_TypeError, "accel ctx[8] must be the VThread type");
        return -1;
    }
    for (int i = 0; i < SL_COUNT; i++) {
        PyObject *descr = PyObject_GetAttrString(vt_type, slot_names[i]);
        if (descr == NULL)
            return -1;
        if (Py_TYPE(descr) != &PyMemberDescr_Type) {
            Py_DECREF(descr);
            PyErr_Format(PyExc_TypeError,
                         "VThread.%s is not a __slots__ member descriptor",
                         slot_names[i]);
            return -1;
        }
        PyMemberDef *m = ((PyMemberDescrObject *)descr)->d_member;
        if (m->type != T_OBJECT_EX) {
            Py_DECREF(descr);
            PyErr_Format(PyExc_TypeError,
                         "VThread.%s slot has unexpected member type",
                         slot_names[i]);
            return -1;
        }
        slot_off[i] = m->offset;
        Py_DECREF(descr);
    }
    slot_type = (PyTypeObject *)vt_type;
    return 0;
}

/* borrowed reference (slots are always initialized by VThread.__init__) */
static inline PyObject *
t_get(PyObject *t, int idx)
{
    PyObject *v = *(PyObject **)((char *)t + slot_off[idx]);
    if (v == NULL)
        PyErr_Format(PyExc_AttributeError, "unset thread slot '%s'",
                     slot_names[idx]);
    return v;
}

/* store a borrowed reference (increfs) */
static inline void
t_set(PyObject *t, int idx, PyObject *v)
{
    PyObject **p = (PyObject **)((char *)t + slot_off[idx]);
    Py_INCREF(v);
    PyObject *old = *p;
    *p = v;
    Py_XDECREF(old);
}

static inline int
t_get_ll(PyObject *t, int idx, long long *out)
{
    PyObject *v = t_get(t, idx);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static inline int
t_set_ll(PyObject *t, int idx, long long val)
{
    PyObject *n = PyLong_FromLongLong(val);
    if (n == NULL)
        return -1;
    PyObject **p = (PyObject **)((char *)t + slot_off[idx]);
    PyObject *old = *p;
    *p = n;
    Py_XDECREF(old);
    return 0;
}

/* ------------------------------------------------------------ engine attrs */

static int
e_get_ll(PyObject *eng, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(eng, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
e_set_ll(PyObject *eng, PyObject *name, long long val)
{
    PyObject *n = PyLong_FromLongLong(val);
    if (n == NULL)
        return -1;
    int r = PyObject_SetAttr(eng, name, n);
    Py_DECREF(n);
    return r;
}

static int
e_add_ll(PyObject *eng, PyObject *name, long long delta)
{
    long long v;
    if (e_get_ll(eng, name, &v) < 0)
        return -1;
    return e_set_ll(eng, name, v + delta);
}

/* ------------------------------------------------------------------- maths */

static inline int
add_ll(long long a, long long b, long long *out)
{
    if (__builtin_add_overflow(a, b, out)) {
        PyErr_SetString(PyExc_OverflowError,
                        "virtual-time overflow in the accel engine core");
        return -1;
    }
    return 0;
}

/* Python floor division for int64 (divisor > 0) */
static inline long long
fdiv_ll(long long a, long long b)
{
    long long q = a / b;
    if (a % b != 0 && (a < 0) != (b < 0))
        q--;
    return q;
}

/* --------------------------------------------------------------- loop ctx */

typedef struct {
    PyObject *eng;
    /* borrowed singletons from the ctx tuple (tuple outlives the call) */
    PyObject *READY, *RUNNING, *BLOCKED, *SLEEPING;
    PyObject *work_cls, *runtime_line;
    PyObject *heappush, *heappop;
    /* owned hoists */
    PyObject *heap, *ready, *running;
    PyObject *ready_append, *ready_popleft, *run_add, *run_discard;
    PyObject *sampler, *acct, *drain, *deliver;
    PyObject *op_table, *line_watchers;
    /* hook and action hoists: the hook and the per-op-class action table
     * are fixed for the duration of a run, so the underlying functions of
     * the hottest op actions are captured once and pattern-matched at the
     * action call sites (c_try_action) to run inline in C */
    PyObject *hook, *progress_counts;
    /* bound hook methods, hoisted once per loop (NULL when hook is None):
     * skips a per-edge attribute lookup on the hottest callback sites */
    PyObject *h_before_block, *h_before_wake, *h_unblock, *h_progress;
    PyObject *fn_lock, *fn_unlock, *fn_push, *fn_pop, *fn_progress;
    PyObject *frame_cls; /* borrowed from the ctx tuple */
    long long call_overhead;
    long long quantum, cores, max_ns, period, batch_size;
    int has_max, sampling_live, coalesce, flush_on_block;
    long long now, snap_next, events;
} Ctx;

static void
ctx_clear(Ctx *c)
{
    Py_XDECREF(c->heap);
    Py_XDECREF(c->ready);
    Py_XDECREF(c->running);
    Py_XDECREF(c->ready_append);
    Py_XDECREF(c->ready_popleft);
    Py_XDECREF(c->run_add);
    Py_XDECREF(c->run_discard);
    Py_XDECREF(c->sampler);
    Py_XDECREF(c->acct);
    Py_XDECREF(c->drain);
    Py_XDECREF(c->deliver);
    Py_XDECREF(c->op_table);
    Py_XDECREF(c->line_watchers);
    Py_XDECREF(c->hook);
    Py_XDECREF(c->progress_counts);
    Py_XDECREF(c->h_before_block);
    Py_XDECREF(c->h_before_wake);
    Py_XDECREF(c->h_unblock);
    Py_XDECREF(c->h_progress);
    Py_XDECREF(c->fn_lock);
    Py_XDECREF(c->fn_unlock);
    Py_XDECREF(c->fn_push);
    Py_XDECREF(c->fn_pop);
    Py_XDECREF(c->fn_progress);
}

static int
flush_events(Ctx *c)
{
    if (c->events == 0)
        return 0;
    int r = e_add_ll(c->eng, s_events_processed, c->events);
    c->events = 0;
    return r;
}

/* push (when, lp, sub, seq, kind, obj, arg) via heapq.heappush */
static int
c_push(Ctx *c, long long when, long long lp, long long sub, long long seq,
       long kind, PyObject *obj, long long arg)
{
    PyObject *tup = PyTuple_New(7);
    if (tup == NULL)
        return -1;
    PyObject *v;
    if ((v = PyLong_FromLongLong(when)) == NULL) goto fail;
    PyTuple_SET_ITEM(tup, 0, v);
    if ((v = PyLong_FromLongLong(lp)) == NULL) goto fail;
    PyTuple_SET_ITEM(tup, 1, v);
    if ((v = PyLong_FromLongLong(sub)) == NULL) goto fail;
    PyTuple_SET_ITEM(tup, 2, v);
    if ((v = PyLong_FromLongLong(seq)) == NULL) goto fail;
    PyTuple_SET_ITEM(tup, 3, v);
    if ((v = PyLong_FromLong(kind)) == NULL) goto fail;
    PyTuple_SET_ITEM(tup, 4, v);
    Py_INCREF(obj);
    PyTuple_SET_ITEM(tup, 5, obj);
    if ((v = PyLong_FromLongLong(arg)) == NULL) goto fail;
    PyTuple_SET_ITEM(tup, 6, v);
    {
        PyObject *argv[2] = {c->heap, tup};
        PyObject *r = PyObject_Vectorcall(c->heappush, argv, 2, NULL);
        Py_DECREF(tup);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    return 0;
fail:
    Py_DECREF(tup);
    return -1;
}

static Py_ssize_t
buf_len(PyObject *buf)
{
    if (PyList_Check(buf))
        return PyList_GET_SIZE(buf);
    /* ColumnarBuf keeps a running count in its `n` slot; reading it as an
     * attribute skips the Python-level __len__ call on the hottest check */
    PyObject *n = PyObject_GetAttr(buf, s_n);
    if (n == NULL) {
        PyErr_Clear();
        return PyObject_Size(buf);
    }
    Py_ssize_t v = PyLong_AsSsize_t(n);
    Py_DECREF(n);
    return v;
}

/* forward decls */
static int c_drive(Ctx *c, PyObject *t);
static int c_advance(Ctx *c, PyObject *t);
static int c_setup_op(Ctx *c, PyObject *t, PyObject *op, PyObject *plan);
static int c_call_action(Ctx *c, PyObject *fnobj, PyObject *t, PyObject *arg);

/* ------------------------------------------------------------ _begin_chunk */

static int
c_begin_chunk(Ctx *c, PyObject *t)
{
    /* interference is disabled under accel eligibility, so the rate is
     * always exactly 1.0 and real time == nominal time */
    long long q = c->quantum;
    long long nominal, tok, ck, seq, when;
    if (t_get_ll(t, SL_ACTIVITY_REMAINING, &nominal) < 0)
        return -1;
    if (c->coalesce && nominal > q) {
        Py_ssize_t rn = PyObject_Size(c->ready);
        if (rn < 0)
            return -1;
        if (rn == 0) {
            if (c->sampling_live) {
                PyObject *sb = t_get(t, SL_SAMPLE_BUFFER);
                if (sb == NULL)
                    return -1;
                Py_ssize_t blen = buf_len(sb);
                if (blen < 0)
                    return -1;
                long long accum;
                if (t_get_ll(t, SL_SAMPLE_ACCUM, &accum) < 0)
                    return -1;
                long long x0 =
                    (c->batch_size - (long long)blen) * c->period - accum;
                long long bound = (x0 <= q) ? q : ((x0 + q - 1) / q) * q;
                if (bound < nominal)
                    nominal = bound;
            }
            if (c->has_max && nominal > q) {
                long long cap = (fdiv_ll(c->max_ns - c->now, q) + 1) * q;
                if (cap < q)
                    cap = q;
                if (cap < nominal)
                    nominal = cap;
            }
            if (t_get_ll(t, SL_CHAIN_KEY, &ck) < 0)
                return -1;
            long long seq_cur;
            if (e_get_ll(c->eng, s__seq, &seq_cur) < 0)
                return -1;
            if (ck == 0) {
                ck = seq_cur + 1;
                if (t_set_ll(t, SL_CHAIN_KEY, ck) < 0)
                    return -1;
            }
            if (t_set_ll(t, SL_CHUNK_START, c->now) < 0 ||
                t_set_ll(t, SL_CHUNK_NOMINAL, nominal) < 0)
                return -1;
            if (t_get_ll(t, SL_CHUNK_TOKEN, &tok) < 0)
                return -1;
            tok += 1;
            if (t_set_ll(t, SL_CHUNK_TOKEN, tok) < 0)
                return -1;
            t_set(t, SL_CHUNK_RATE, float_one);
            if (add_ll(c->now, nominal, &when) < 0)
                return -1;
            long long rem = (nominal - 1) % q + 1;
            seq = seq_cur + 1;
            if (e_set_ll(c->eng, s__seq, seq) < 0)
                return -1;
            return c_push(c, when, when - rem, ck, seq, EV_CHUNK, t, tok);
        }
    }
    /* legacy quantum path */
    if (nominal > q)
        nominal = q;
    if (t_set_ll(t, SL_CHUNK_START, c->now) < 0 ||
        t_set_ll(t, SL_CHUNK_NOMINAL, nominal) < 0)
        return -1;
    t_set(t, SL_CHUNK_RATE, float_one);
    if (t_get_ll(t, SL_CHUNK_TOKEN, &tok) < 0)
        return -1;
    tok += 1;
    if (t_set_ll(t, SL_CHUNK_TOKEN, tok) < 0)
        return -1;
    if (t_get_ll(t, SL_CHAIN_KEY, &ck) < 0)
        return -1;
    long long seq_cur;
    if (e_get_ll(c->eng, s__seq, &seq_cur) < 0)
        return -1;
    if (ck == 0 && t_set_ll(t, SL_CHAIN_KEY, seq_cur + 1) < 0)
        return -1;
    seq = seq_cur + 1;
    if (e_set_ll(c->eng, s__seq, seq) < 0)
        return -1;
    if (add_ll(c->now, nominal, &when) < 0)
        return -1;
    return c_push(c, when, c->now, seq, seq, EV_CHUNK, t, tok);
}

/* --------------------------------------------------------------- _setup_op */

/* Mirror of Engine._setup_op's inlined body for a Work subclass or a
 * cost/action op (shared by the pre-pause-free path). */
static int
c_setup_op_body(Ctx *c, PyObject *t, PyObject *op, long long cost,
                PyObject *action)
{
    if (action == Py_None) {
        /* Work subclass: activity fields set directly, no cost op */
        PyObject *line = PyObject_GetAttr(op, s_line);
        if (line == NULL)
            return -1;
        int wl = PySet_Contains(c->line_watchers, line);
        if (wl < 0) {
            Py_DECREF(line);
            return -1;
        }
        if (wl && c->hook != Py_None) {
            PyObject *r = PyObject_CallMethodObjArgs(
                c->hook, s_on_line_visit, t, line, NULL);
            if (r == NULL) {
                Py_DECREF(line);
                return -1;
            }
            Py_DECREF(r);
        }
        PyObject *cur = t_get(t, SL_ACTIVITY_LINE);
        if (cur == NULL) {
            Py_DECREF(line);
            return -1;
        }
        if (line != cur) {
            t_set(t, SL_ACTIVITY_LINE, line);
            t_set(t, SL_CHAIN_CACHE, Py_None);
        }
        Py_DECREF(line);
        PyObject *mb = PyObject_GetAttr(op, s_memory_bound);
        if (mb == NULL)
            return -1;
        t_set(t, SL_ACTIVITY_MEMORY_BOUND, mb);
        Py_DECREF(mb);
        PyObject *dur = PyObject_GetAttr(op, s_duration);
        if (dur == NULL)
            return -1;
        t_set(t, SL_ACTIVITY_REMAINING, dur);
        Py_DECREF(dur);
        return 0;
    }
    if (cost > 0) {
        PyObject *line = PyObject_GetAttr(op, s_line);
        if (line == NULL) {
            if (!PyErr_ExceptionMatches(PyExc_AttributeError))
                return -1;
            PyErr_Clear();
            line = c->runtime_line;
            Py_INCREF(line);
        } else if (line == Py_None) {
            Py_DECREF(line);
            line = c->runtime_line;
            Py_INCREF(line);
        }
        if (t_set_ll(t, SL_ACTIVITY_REMAINING, cost) < 0) {
            Py_DECREF(line);
            return -1;
        }
        PyObject *cur = t_get(t, SL_ACTIVITY_LINE);
        if (cur == NULL) {
            Py_DECREF(line);
            return -1;
        }
        if (line != cur) {
            t_set(t, SL_ACTIVITY_LINE, line);
            t_set(t, SL_CHAIN_CACHE, Py_None);
        }
        Py_DECREF(line);
        t_set(t, SL_ACTIVITY_MEMORY_BOUND, Py_False);
        PyObject *cont = PyTuple_Pack(2, action, op);
        if (cont == NULL)
            return -1;
        t_set(t, SL_CONTINUATION, cont);
        Py_DECREF(cont);
        return 0;
    }
    return c_call_action(c, action, t, op);
}

static int
c_setup_op(Ctx *c, PyObject *t, PyObject *op, PyObject *plan /* borrowed */)
{
    PyObject *owned_plan = NULL;
    int rv = -1;
    if (plan == NULL) {
        plan = PyDict_GetItemWithError(c->op_table, (PyObject *)Py_TYPE(op));
        if (plan == NULL) {
            if (PyErr_Occurred())
                return -1;
            owned_plan = PyObject_CallMethodObjArgs(
                c->eng, s__resolve_op_plan, t, op, NULL);
            if (owned_plan == NULL)
                return -1;
            plan = owned_plan;
        }
    }
    if (!PyTuple_Check(plan) || PyTuple_GET_SIZE(plan) != 4) {
        PyErr_SetString(PyExc_TypeError, "malformed op plan");
        goto done;
    }
    {
        long long cost = PyLong_AsLongLong(PyTuple_GET_ITEM(plan, 0));
        if (cost == -1 && PyErr_Occurred())
            goto done;
        PyObject *action = PyTuple_GET_ITEM(plan, 1);
        int blocking = PyObject_IsTrue(PyTuple_GET_ITEM(plan, 2));
        int waking = PyObject_IsTrue(PyTuple_GET_ITEM(plan, 3));
        if (blocking < 0 || waking < 0)
            goto done;
        if (blocking || waking) {
            if (c->flush_on_block && c->sampling_live) {
                PyObject *sb = t_get(t, SL_SAMPLE_BUFFER);
                if (sb == NULL)
                    goto done;
                Py_ssize_t blen = buf_len(sb);
                if (blen < 0)
                    goto done;
                if (blen > 0) {
                    PyObject *argv1[1] = {t};
                    PyObject *batch =
                        PyObject_Vectorcall(c->drain, argv1, 1, NULL);
                    if (batch == NULL)
                        goto done;
                    PyObject *argv2[2] = {t, batch};
                    PyObject *r =
                        PyObject_Vectorcall(c->deliver, argv2, 2, NULL);
                    Py_DECREF(batch);
                    if (r == NULL)
                        goto done;
                    Py_DECREF(r);
                }
            }
            if (c->hook != Py_None) {
                long long pre = 0;
                if (blocking) {
                    PyObject *r = PyObject_CallOneArg(c->h_before_block, t);
                    if (r == NULL)
                        goto done;
                    long long p = PyLong_AsLongLong(r);
                    Py_DECREF(r);
                    if (p == -1 && PyErr_Occurred())
                        goto done;
                    pre += p;
                }
                if (waking) {
                    PyObject *r = PyObject_CallOneArg(c->h_before_wake, t);
                    if (r == NULL)
                        goto done;
                    long long p = PyLong_AsLongLong(r);
                    Py_DECREF(r);
                    if (p == -1 && PyErr_Occurred())
                        goto done;
                    pre += p;
                }
                if (pre > 0) {
                    long long pp;
                    if (t_get_ll(t, SL_PENDING_PAUSE, &pp) < 0 ||
                        t_set_ll(t, SL_PENDING_PAUSE, pp + pre) < 0)
                        goto done;
                    PyObject *body =
                        PyObject_GetAttr(c->eng, s__setup_op_body);
                    if (body == NULL)
                        goto done;
                    PyObject *cont = PyTuple_Pack(2, body, op);
                    Py_DECREF(body);
                    if (cont == NULL)
                        goto done;
                    t_set(t, SL_CONTINUATION, cont);
                    Py_DECREF(cont);
                    rv = 0;
                    goto done;
                }
            }
        }
        rv = c_setup_op_body(c, t, op, cost, action);
    }
done:
    Py_XDECREF(owned_plan);
    return rv;
}

/* ---------------------------------------------------------------- _advance */

static int
c_advance(Ctx *c, PyObject *t)
{
    int rv = -1;
    PyObject *oplog = PyObject_GetAttr(c->eng, s__oplog);
    if (oplog == NULL)
        return -1;
    PyObject *gen = t_get(t, SL_GEN);
    if (gen == NULL) {
        Py_DECREF(oplog);
        return -1;
    }
    Py_INCREF(gen);
    for (;;) {
        PyObject *sv = t_get(t, SL_SEND_VALUE);
        if (sv == NULL)
            goto done;
        Py_INCREF(sv);
        PyObject *op = NULL;
        PySendResult sr = PyIter_Send(gen, sv, &op);
        if (sr == PYGEN_ERROR) {
            Py_DECREF(sv);
            goto done;
        }
        if (sr == PYGEN_RETURN) {
            if (oplog != Py_None) {
                PyObject *tid = t_get(t, SL_TID);
                PyObject *rec =
                    tid ? PyTuple_Pack(3, tid, sv, Py_None) : NULL;
                int ap = rec ? PyList_Append(oplog, rec) : -1;
                Py_XDECREF(rec);
                if (ap < 0) {
                    Py_DECREF(sv);
                    Py_DECREF(op);
                    goto done;
                }
            }
            Py_DECREF(sv);
            t_set(t, SL_EXIT_VALUE, op);
            Py_DECREF(op);
            PyObject *r =
                PyObject_CallMethodOneArg(c->eng, s__begin_exit, t);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
            rv = 0;
            goto done;
        }
        /* PYGEN_NEXT: op is the yielded value (new ref) */
        if (oplog != Py_None) {
            PyObject *tid = t_get(t, SL_TID);
            PyObject *rec = tid ? PyTuple_Pack(3, tid, sv, op) : NULL;
            int ap = rec ? PyList_Append(oplog, rec) : -1;
            Py_XDECREF(rec);
            if (ap < 0) {
                Py_DECREF(sv);
                Py_DECREF(op);
                goto done;
            }
        }
        Py_DECREF(sv);
        t_set(t, SL_SEND_VALUE, Py_None);
        t_set(t, SL_CURRENT_OP, op);
        if ((PyObject *)Py_TYPE(op) == c->work_cls) {
            /* Work fast path: neither blocking nor waking, no cost */
            int r = c_setup_op_body(c, t, op, 0, Py_None);
            Py_DECREF(op);
            if (r < 0)
                goto done;
            rv = 0;
            goto done;
        }
        PyObject *plan =
            PyDict_GetItemWithError(c->op_table, (PyObject *)Py_TYPE(op));
        PyObject *owned_plan = NULL;
        if (plan == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(op);
                goto done;
            }
            owned_plan = PyObject_CallMethodObjArgs(
                c->eng, s__resolve_op_plan, t, op, NULL);
            if (owned_plan == NULL) {
                Py_DECREF(op);
                goto done;
            }
            plan = owned_plan;
        }
        if (!PyTuple_Check(plan) || PyTuple_GET_SIZE(plan) != 4) {
            PyErr_SetString(PyExc_TypeError, "malformed op plan");
            Py_XDECREF(owned_plan);
            Py_DECREF(op);
            goto done;
        }
        long long cost = PyLong_AsLongLong(PyTuple_GET_ITEM(plan, 0));
        if (cost == -1 && PyErr_Occurred()) {
            Py_XDECREF(owned_plan);
            Py_DECREF(op);
            goto done;
        }
        PyObject *action = PyTuple_GET_ITEM(plan, 1);
        int blocking = PyObject_IsTrue(PyTuple_GET_ITEM(plan, 2));
        int waking = PyObject_IsTrue(PyTuple_GET_ITEM(plan, 3));
        if (blocking < 0 || waking < 0) {
            Py_XDECREF(owned_plan);
            Py_DECREF(op);
            goto done;
        }
        if (blocking || waking || cost > 0 || action == Py_None) {
            int r = c_setup_op(c, t, op, plan);
            Py_XDECREF(owned_plan);
            Py_DECREF(op);
            if (r < 0)
                goto done;
            rv = 0;
            goto done;
        }
        /* instant op: run its action, keep pulling unless it rescheduled */
        {
            Py_INCREF(action);
            int cr = c_call_action(c, action, t, op);
            Py_DECREF(action);
            Py_XDECREF(owned_plan);
            if (cr < 0) {
                Py_DECREF(op);
                goto done;
            }
        }
        Py_DECREF(op);
        {
            PyObject *st = t_get(t, SL_STATE);
            if (st == NULL)
                goto done;
            long long pp, pc, ar;
            if (t_get_ll(t, SL_PENDING_PAUSE, &pp) < 0 ||
                t_get_ll(t, SL_PENDING_CPU, &pc) < 0 ||
                t_get_ll(t, SL_ACTIVITY_REMAINING, &ar) < 0)
                goto done;
            PyObject *cont = t_get(t, SL_CONTINUATION);
            if (cont == NULL)
                goto done;
            if (st != c->RUNNING || pp > 0 || pc > 0 || ar > 0 ||
                cont != Py_None) {
                rv = 0;
                goto done;
            }
        }
    }
done:
    Py_DECREF(gen);
    Py_DECREF(oplog);
    return rv;
}

/* ----------------------------------------------------- inlined hot actions */

/* _start_overhead_slice: charge pending profiler CPU cost */
static int
c_start_overhead(Ctx *c, PyObject *t)
{
    long long dur, v;
    if (t_get_ll(t, SL_PENDING_CPU, &dur) < 0 ||
        t_set_ll(t, SL_PENDING_CPU, 0) < 0 ||
        t_get_ll(t, SL_PROFILER_CPU, &v) < 0 ||
        t_set_ll(t, SL_PROFILER_CPU, v + dur) < 0 ||
        t_get_ll(t, SL_CPU_NS, &v) < 0 ||
        t_set_ll(t, SL_CPU_NS, v + dur) < 0 ||
        e_add_ll(c->eng, s_total_cpu_ns, dur) < 0)
        return -1;
    long long tok, seq, when;
    if (t_get_ll(t, SL_CHUNK_TOKEN, &tok) < 0 ||
        t_set_ll(t, SL_CHUNK_TOKEN, tok + 1) < 0 ||
        e_get_ll(c->eng, s__seq, &seq) < 0 ||
        e_set_ll(c->eng, s__seq, seq + 1) < 0)
        return -1;
    seq += 1;
    if (add_ll(c->now, dur, &when) < 0)
        return -1;
    return c_push(c, when, c->now, seq, seq, EV_OVERHEAD, t, tok + 1);
}

/* _start_pause: take the thread off-CPU for a profiler-inserted pause.
 * The fault injector's maybe_spike branch does not exist here: accel
 * eligibility guarantees engine._faults is None. */
static int
c_start_pause(Ctx *c, PyObject *t)
{
    long long pause, v;
    if (t_get_ll(t, SL_PENDING_PAUSE, &pause) < 0 ||
        t_set_ll(t, SL_PENDING_PAUSE, 0) < 0 ||
        t_get_ll(t, SL_PAUSE_NS, &v) < 0 ||
        t_set_ll(t, SL_PAUSE_NS, v + pause) < 0 ||
        e_add_ll(c->eng, s_total_delay_ns, pause) < 0)
        return -1;
    /* _go_offcpu(t, SLEEPING, "inserted-pause") */
    {
        PyObject *argv[1] = {t};
        PyObject *r = PyObject_Vectorcall(c->run_discard, argv, 1, NULL);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    t_set(t, SL_STATE, c->SLEEPING);
    t_set(t, SL_BLOCKED_ON, str_inserted_pause);
    if (e_add_ll(c->eng, s__sleeping, 1) < 0)
        return -1;
    long long tok, seq, when;
    if (t_get_ll(t, SL_CHUNK_TOKEN, &tok) < 0 ||
        t_set_ll(t, SL_CHUNK_TOKEN, tok + 1) < 0 ||
        e_get_ll(c->eng, s__seq, &seq) < 0 ||
        e_set_ll(c->eng, s__seq, seq + 1) < 0)
        return -1;
    seq += 1;
    if (add_ll(c->now, pause, &when) < 0)
        return -1;
    return c_push(c, when, c->now, seq, seq, EV_PAUSE, t, tok + 1);
}

/* The hottest op actions, replicated in C and selected by comparing the
 * bound method's underlying function against the engine class's own
 * (captured at loop entry, so subclass overrides never match and fall
 * back to Python).  Observer fan-out is omitted throughout: accel
 * eligibility guarantees there are none.
 *
 * Returns 0 = handled, 1 = not inlined (caller runs the Python action),
 * -1 = error.  A path that cannot complete without Python (contended
 * lock, waking unlock, error cases) bails out BEFORE mutating anything,
 * so the Python action re-runs from an untouched state. */
static int
c_try_action(Ctx *c, PyObject *bound, PyObject *t, PyObject *op)
{
    if (!PyMethod_Check(bound) || PyMethod_GET_SELF(bound) != c->eng)
        return 1;
    PyObject *fn = PyMethod_GET_FUNCTION(bound);
    if (fn == c->fn_push) {
        /* _do_push_frame: t.current_func() is only consumed by observer
         * fan-out, so it is skipped here */
        PyObject *stack = t_get(t, SL_STACK);
        if (stack == NULL)
            return -1;
        if (!PyList_Check(stack))
            return 1;
        PyObject *func = PyObject_GetAttr(op, s_func);
        if (func == NULL)
            return -1;
        PyObject *cs = PyObject_GetAttr(op, s_callsite);
        if (cs == NULL) {
            Py_DECREF(func);
            return -1;
        }
        PyObject *argv[2] = {func, cs};
        PyObject *fr = PyObject_Vectorcall(c->frame_cls, argv, 2, NULL);
        Py_DECREF(func);
        Py_DECREF(cs);
        if (fr == NULL)
            return -1;
        int ap = PyList_Append(stack, fr);
        Py_DECREF(fr);
        if (ap < 0)
            return -1;
        t_set(t, SL_CHAIN_CACHE, Py_None);
        if (c->call_overhead) {
            long long pc;
            if (t_get_ll(t, SL_PENDING_CPU, &pc) < 0 ||
                t_set_ll(t, SL_PENDING_CPU, pc + c->call_overhead) < 0)
                return -1;
        }
        return 0;
    }
    if (fn == c->fn_pop) {
        PyObject *stack = t_get(t, SL_STACK);
        if (stack == NULL)
            return -1;
        Py_ssize_t n;
        if (!PyList_Check(stack) || (n = PyList_GET_SIZE(stack)) == 0)
            return 1; /* empty stack: the Python action raises the error */
        if (PyList_SetSlice(stack, n - 1, n, NULL) < 0)
            return -1;
        t_set(t, SL_CHAIN_CACHE, Py_None);
        return 0;
    }
    if (fn == c->fn_progress) {
        if (!PyDict_Check(c->progress_counts))
            return 1;
        PyObject *name = PyObject_GetAttr(op, s_name);
        if (name == NULL)
            return -1;
        /* progress_counts[name] += 1: Counter.__missing__ yields 0 for an
         * absent key without inserting it, which the NULL branch mirrors */
        PyObject *cur = PyDict_GetItemWithError(c->progress_counts, name);
        long long v = 0;
        if (cur == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(name);
                return -1;
            }
        } else if (PyLong_CheckExact(cur)) {
            v = PyLong_AsLongLong(cur);
            if (v == -1 && PyErr_Occurred()) {
                Py_DECREF(name);
                return -1;
            }
        } else {
            Py_DECREF(name);
            return 1;
        }
        PyObject *nv = PyLong_FromLongLong(v + 1);
        if (nv == NULL) {
            Py_DECREF(name);
            return -1;
        }
        int sr = PyDict_SetItem(c->progress_counts, name, nv);
        Py_DECREF(nv);
        if (sr < 0) {
            Py_DECREF(name);
            return -1;
        }
        if (c->h_progress != NULL) {
            PyObject *argv[2] = {t, name};
            PyObject *r = PyObject_Vectorcall(c->h_progress, argv, 2, NULL);
            if (r == NULL) {
                Py_DECREF(name);
                return -1;
            }
            Py_DECREF(r);
        }
        Py_DECREF(name);
        return 0;
    }
    if (fn == c->fn_lock) {
        /* _do_lock, uncontended path only */
        PyObject *m = PyObject_GetAttr(op, s_mutex);
        if (m == NULL)
            return -1;
        PyObject *owner = PyObject_GetAttr(m, s_owner);
        if (owner == NULL) {
            Py_DECREF(m);
            return -1;
        }
        int uncontended = (owner == Py_None);
        Py_DECREF(owner);
        if (!uncontended) {
            /* contended: waiters.append(t); contended_acquires += 1;
             * _block(t, f"mutex:{name}", m).  With no observers attached
             * (the accel precondition) _block reduces to _go_offcpu.  All
             * guards run before the first mutation so a fallback re-runs
             * the Python action cleanly. */
            PyObject *ca = PyObject_GetAttr(m, s_contended_acquires);
            if (ca == NULL) {
                Py_DECREF(m);
                return -1;
            }
            if (!PyLong_CheckExact(ca)) {
                Py_DECREF(ca);
                Py_DECREF(m);
                return 1;
            }
            long long cav = PyLong_AsLongLong(ca);
            Py_DECREF(ca);
            if (cav == -1 && PyErr_Occurred()) {
                Py_DECREF(m);
                return -1;
            }
            PyObject *nm = PyObject_GetAttr(m, s_name);
            if (nm == NULL) {
                Py_DECREF(m);
                return -1;
            }
            if (!PyUnicode_Check(nm)) {
                Py_DECREF(nm);
                Py_DECREF(m);
                return 1;
            }
            PyObject *why = PyUnicode_FromFormat("mutex:%U", nm);
            Py_DECREF(nm);
            if (why == NULL) {
                Py_DECREF(m);
                return -1;
            }
            PyObject *waiters = PyObject_GetAttr(m, s_waiters);
            if (waiters == NULL) {
                Py_DECREF(why);
                Py_DECREF(m);
                return -1;
            }
            PyObject *r = PyObject_CallMethodOneArg(waiters, s_append, t);
            Py_DECREF(waiters);
            if (r == NULL) {
                Py_DECREF(why);
                Py_DECREF(m);
                return -1;
            }
            Py_DECREF(r);
            PyObject *nca = PyLong_FromLongLong(cav + 1);
            if (nca == NULL ||
                PyObject_SetAttr(m, s_contended_acquires, nca) < 0) {
                Py_XDECREF(nca);
                Py_DECREF(why);
                Py_DECREF(m);
                return -1;
            }
            Py_DECREF(nca);
            Py_DECREF(m);
            /* _go_offcpu(t, BLOCKED, why) */
            r = PyObject_CallOneArg(c->run_discard, t);
            if (r == NULL) {
                Py_DECREF(why);
                return -1;
            }
            Py_DECREF(r);
            t_set(t, SL_STATE, c->BLOCKED);
            t_set(t, SL_BLOCKED_ON, why);
            Py_DECREF(why);
            return 0;
        }
        PyObject *acq = PyObject_GetAttr(m, s_acquires);
        if (acq == NULL) {
            Py_DECREF(m);
            return -1;
        }
        if (!PyLong_CheckExact(acq)) {
            Py_DECREF(acq);
            Py_DECREF(m);
            return 1;
        }
        long long a = PyLong_AsLongLong(acq);
        Py_DECREF(acq);
        if (a == -1 && PyErr_Occurred()) {
            Py_DECREF(m);
            return -1;
        }
        PyObject *na = PyLong_FromLongLong(a + 1);
        if (na == NULL) {
            Py_DECREF(m);
            return -1;
        }
        int ok = (PyObject_SetAttr(m, s_owner, t) == 0 &&
                  PyObject_SetAttr(m, s_acquires, na) == 0);
        Py_DECREF(na);
        Py_DECREF(m);
        return ok ? 0 : -1;
    }
    if (fn == c->fn_unlock) {
        /* _do_unlock with no waiters; owner mismatch (error) and the
         * waiter-wake path fall back */
        PyObject *m = PyObject_GetAttr(op, s_mutex);
        if (m == NULL)
            return -1;
        PyObject *owner = PyObject_GetAttr(m, s_owner);
        if (owner == NULL) {
            Py_DECREF(m);
            return -1;
        }
        int is_owner = (owner == t);
        Py_DECREF(owner);
        if (!is_owner) {
            Py_DECREF(m);
            return 1;
        }
        PyObject *waiters = PyObject_GetAttr(m, s_waiters);
        if (waiters == NULL) {
            Py_DECREF(m);
            return -1;
        }
        Py_ssize_t wn = PyObject_Size(waiters);
        if (wn < 0) {
            Py_DECREF(waiters);
            Py_DECREF(m);
            return -1;
        }
        if (wn == 0) {
            Py_DECREF(waiters);
            int ok = (PyObject_SetAttr(m, s_owner, Py_None) == 0);
            Py_DECREF(m);
            return ok ? 0 : -1;
        }
        /* waiter handoff: w = waiters.popleft(); owner = w; acquires += 1;
         * _wake(w, waker=t).  Peek the head waiter and run every guard —
         * thread type, BLOCKED state, counter shape — before the first
         * mutation so fallbacks re-run the Python action cleanly (the
         * non-BLOCKED error path falls back and raises from Python). */
        PyObject *w = PySequence_GetItem(waiters, 0);
        if (w == NULL) {
            Py_DECREF(waiters);
            Py_DECREF(m);
            return -1;
        }
        if (!PyObject_TypeCheck(w, slot_type)) {
            Py_DECREF(w);
            Py_DECREF(waiters);
            Py_DECREF(m);
            return 1;
        }
        PyObject *ws = t_get(w, SL_STATE);
        if (ws == NULL || ws != c->BLOCKED) {
            Py_DECREF(w);
            Py_DECREF(waiters);
            Py_DECREF(m);
            return ws == NULL ? -1 : 1;
        }
        PyObject *acq = PyObject_GetAttr(m, s_acquires);
        if (acq == NULL) {
            Py_DECREF(w);
            Py_DECREF(waiters);
            Py_DECREF(m);
            return -1;
        }
        if (!PyLong_CheckExact(acq)) {
            Py_DECREF(acq);
            Py_DECREF(w);
            Py_DECREF(waiters);
            Py_DECREF(m);
            return 1;
        }
        long long a = PyLong_AsLongLong(acq);
        Py_DECREF(acq);
        if (a == -1 && PyErr_Occurred()) {
            Py_DECREF(w);
            Py_DECREF(waiters);
            Py_DECREF(m);
            return -1;
        }
        PyObject *popped = PyObject_CallMethodNoArgs(waiters, s_popleft);
        Py_DECREF(waiters);
        if (popped == NULL) {
            Py_DECREF(w);
            Py_DECREF(m);
            return -1;
        }
        Py_DECREF(w);
        w = popped; /* the deque head cannot change between peek and pop */
        PyObject *na = PyLong_FromLongLong(a + 1);
        if (na == NULL ||
            PyObject_SetAttr(m, s_owner, w) < 0 ||
            PyObject_SetAttr(m, s_acquires, na) < 0) {
            Py_XDECREF(na);
            Py_DECREF(w);
            Py_DECREF(m);
            return -1;
        }
        Py_DECREF(na);
        Py_DECREF(m);
        /* _wake(w, waker=t): state already checked BLOCKED above */
        t_set(w, SL_WOKEN_BY, t);
        t_set(w, SL_SEND_VALUE, Py_None);
        if (c->h_unblock != NULL) {
            PyObject *argv[2] = {w, t};
            PyObject *pr = PyObject_Vectorcall(c->h_unblock, argv, 2, NULL);
            if (pr == NULL) {
                Py_DECREF(w);
                return -1;
            }
            long long pause = PyLong_AsLongLong(pr);
            Py_DECREF(pr);
            if (pause == -1 && PyErr_Occurred()) {
                Py_DECREF(w);
                return -1;
            }
            if (pause > 0) {
                long long pp;
                if (t_get_ll(w, SL_PENDING_PAUSE, &pp) < 0 ||
                    t_set_ll(w, SL_PENDING_PAUSE, pp + pause) < 0) {
                    Py_DECREF(w);
                    return -1;
                }
            }
        }
        t_set(w, SL_BLOCKED_ON, Py_None);
        t_set(w, SL_STATE, c->READY);
        {
            PyObject *r = PyObject_CallOneArg(c->ready_append, w);
            Py_DECREF(w);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        }
        return 0;
    }
    return 1;
}

/* call an op action / continuation fn as fn(t, arg), inlining when known */
static int
c_call_action(Ctx *c, PyObject *fnobj, PyObject *t, PyObject *arg)
{
    int h = c_try_action(c, fnobj, t, arg);
    if (h <= 0)
        return h;
    PyObject *argv[2] = {t, arg};
    PyObject *r = PyObject_Vectorcall(fnobj, argv, 2, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* ------------------------------------------------------------------ _drive */

static int
c_drive(Ctx *c, PyObject *t)
{
    for (;;) {
        PyObject *st = t_get(t, SL_STATE);
        if (st == NULL)
            return -1;
        if (st != c->RUNNING)
            return 0;
        long long pend;
        if (t_get_ll(t, SL_PENDING_CPU, &pend) < 0)
            return -1;
        if (pend > 0)
            return c_start_overhead(c, t) < 0 ? -1 : 0;
        if (t_get_ll(t, SL_PENDING_PAUSE, &pend) < 0)
            return -1;
        if (pend > 0)
            return c_start_pause(c, t) < 0 ? -1 : 0;
        long long nominal;
        if (t_get_ll(t, SL_ACTIVITY_REMAINING, &nominal) < 0)
            return -1;
        if (nominal > 0) {
            if (nominal <= c->quantum) {
                /* inlined sub-quantum chunk start (dominant case) */
                if (t_set_ll(t, SL_CHUNK_START, c->now) < 0 ||
                    t_set_ll(t, SL_CHUNK_NOMINAL, nominal) < 0)
                    return -1;
                t_set(t, SL_CHUNK_RATE, float_one);
                long long tok;
                if (t_get_ll(t, SL_CHUNK_TOKEN, &tok) < 0)
                    return -1;
                tok += 1;
                if (t_set_ll(t, SL_CHUNK_TOKEN, tok) < 0)
                    return -1;
                long long ck, seq_cur;
                if (t_get_ll(t, SL_CHAIN_KEY, &ck) < 0 ||
                    e_get_ll(c->eng, s__seq, &seq_cur) < 0)
                    return -1;
                if (ck == 0 &&
                    t_set_ll(t, SL_CHAIN_KEY, seq_cur + 1) < 0)
                    return -1;
                long long seq = seq_cur + 1;
                if (e_set_ll(c->eng, s__seq, seq) < 0)
                    return -1;
                long long when;
                if (add_ll(c->now, nominal, &when) < 0)
                    return -1;
                return c_push(c, when, c->now, seq, seq, EV_CHUNK, t, tok);
            }
            return c_begin_chunk(c, t);
        }
        PyObject *cont = t_get(t, SL_CONTINUATION);
        if (cont == NULL)
            return -1;
        if (cont != Py_None) {
            Py_INCREF(cont);
            t_set(t, SL_CONTINUATION, Py_None);
            if (!PyTuple_Check(cont) || PyTuple_GET_SIZE(cont) != 2) {
                Py_DECREF(cont);
                PyErr_SetString(PyExc_TypeError,
                                "malformed thread continuation");
                return -1;
            }
            PyObject *fn = PyTuple_GET_ITEM(cont, 0);
            PyObject *arg = PyTuple_GET_ITEM(cont, 1);
            int cr = c_call_action(c, fn, t, arg);
            Py_DECREF(cont);
            if (cr < 0)
                return -1;
            continue;
        }
        if (c_advance(c, t) < 0)
            return -1;
    }
}

/* --------------------------------------------------------------- _dispatch */

static int
c_dispatch(Ctx *c)
{
    Py_ssize_t rn = PyObject_Size(c->ready);
    if (rn < 0)
        return -1;
    if (rn == 0)
        return 0;
    while (rn > 0 && PySet_GET_SIZE(c->running) < c->cores) {
        PyObject *t = PyObject_CallNoArgs(c->ready_popleft);
        if (t == NULL)
            return -1;
        if (!PyObject_TypeCheck(t, slot_type)) {
            Py_DECREF(t);
            PyErr_SetString(PyExc_TypeError,
                            "non-VThread object in ready queue");
            return -1;
        }
        PyObject *st = t_get(t, SL_STATE);
        if (st == NULL) {
            Py_DECREF(t);
            return -1;
        }
        if (st != c->READY) { /* defensive; should not happen */
            Py_DECREF(t);
            rn = PyObject_Size(c->ready);
            if (rn < 0)
                return -1;
            continue;
        }
        t_set(t, SL_STATE, c->RUNNING);
        /* leaving the ready queue starts a new chunk chain */
        if (t_set_ll(t, SL_CHAIN_KEY, 0) < 0) {
            Py_DECREF(t);
            return -1;
        }
        {
            PyObject *argv[1] = {t};
            PyObject *r = PyObject_Vectorcall(c->run_add, argv, 1, NULL);
            if (r == NULL) {
                Py_DECREF(t);
                return -1;
            }
            Py_DECREF(r);
        }
        int dr = c_drive(c, t);
        Py_DECREF(t);
        if (dr < 0)
            return -1;
        rn = PyObject_Size(c->ready);
        if (rn < 0)
            return -1;
    }
    if (rn > 0 && c->coalesce) {
        PyObject *r =
            PyObject_CallMethodNoArgs(c->eng, s__truncate_for_fairness);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    return 0;
}

/* -------------------------------------------------- chunk completion event */

static int
c_chunk_event(Ctx *c, PyObject *obj, long long tok_ev)
{
    long long tok;
    if (t_get_ll(obj, SL_CHUNK_TOKEN, &tok) < 0)
        return -1;
    PyObject *st = t_get(obj, SL_STATE);
    if (st == NULL)
        return -1;
    if (tok != tok_ev || st != c->RUNNING)
        return 0;
    long long nominal;
    if (t_get_ll(obj, SL_CHUNK_NOMINAL, &nominal) < 0)
        return -1;
    if (nominal > 0) {
        long long ar, cpu;
        if (t_get_ll(obj, SL_ACTIVITY_REMAINING, &ar) < 0 ||
            t_set_ll(obj, SL_ACTIVITY_REMAINING, ar - nominal) < 0 ||
            t_get_ll(obj, SL_CPU_NS, &cpu) < 0 ||
            t_set_ll(obj, SL_CPU_NS, cpu + nominal) < 0 ||
            e_add_ll(c->eng, s_total_cpu_ns, nominal) < 0)
            return -1;
        /* no observers under accel eligibility (checked at entry), so the
         * pure loop's on_work fan-out has nothing to do here */
        if (c->sampling_live) {
            long long accum;
            if (t_get_ll(obj, SL_SAMPLE_ACCUM, &accum) < 0)
                return -1;
            accum += nominal;
            int short_span = 0;
            if (accum < c->period) {
                PyObject *sb = t_get(obj, SL_SAMPLE_BUFFER);
                if (sb == NULL)
                    return -1;
                Py_ssize_t blen = buf_len(sb);
                if (blen < 0)
                    return -1;
                short_span = (long long)blen < c->batch_size;
            }
            if (short_span) {
                if (t_set_ll(obj, SL_SAMPLE_ACCUM, accum) < 0)
                    return -1;
            } else {
                PyObject *nom_o = PyLong_FromLongLong(nominal);
                PyObject *now_o = PyLong_FromLongLong(c->now);
                PyObject *rate_o = t_get(obj, SL_CHUNK_RATE);
                if (nom_o == NULL || now_o == NULL || rate_o == NULL) {
                    Py_XDECREF(nom_o);
                    Py_XDECREF(now_o);
                    return -1;
                }
                PyObject *argv[5] = {obj, nom_o, now_o, Py_True, rate_o};
                PyObject *batch =
                    PyObject_Vectorcall(c->acct, argv, 5, NULL);
                Py_DECREF(nom_o);
                Py_DECREF(now_o);
                if (batch == NULL)
                    return -1;
                if (batch != Py_None) {
                    PyObject *argv2[2] = {obj, batch};
                    PyObject *r =
                        PyObject_Vectorcall(c->deliver, argv2, 2, NULL);
                    Py_DECREF(batch);
                    if (r == NULL)
                        return -1;
                    Py_DECREF(r);
                } else {
                    Py_DECREF(batch);
                }
            }
        }
    }
    if (t_set_ll(obj, SL_CHUNK_NOMINAL, 0) < 0)
        return -1;
    long long ar2;
    if (t_get_ll(obj, SL_ACTIVITY_REMAINING, &ar2) < 0)
        return -1;
    if (ar2 > 0) {
        Py_ssize_t rn = PyObject_Size(c->ready);
        if (rn < 0)
            return -1;
        if (rn > 0) {
            /* round-robin fairness: requeue behind the waiters */
            PyObject *argv[1] = {obj};
            PyObject *r = PyObject_Vectorcall(c->run_discard, argv, 1, NULL);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            t_set(obj, SL_STATE, c->READY);
            r = PyObject_Vectorcall(c->ready_append, argv, 1, NULL);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return 0;
        }
    }
    return c_drive(c, obj);
}

/* --------------------------------------------------------------- main loop */

static PyObject *
core_event_loop(PyObject *mod, PyObject *args)
{
    PyObject *eng, *ctxt;
    if (!PyArg_ParseTuple(args, "OO:event_loop", &eng, &ctxt))
        return NULL;
    if (!PyTuple_Check(ctxt) || PyTuple_GET_SIZE(ctxt) != 10) {
        PyErr_SetString(PyExc_TypeError, "accel ctx must be a 10-tuple");
        return NULL;
    }
    if (resolve_slots(PyTuple_GET_ITEM(ctxt, 8)) < 0)
        return NULL;

    Ctx c;
    memset(&c, 0, sizeof(c));
    c.eng = eng;
    c.READY = PyTuple_GET_ITEM(ctxt, 0);
    c.RUNNING = PyTuple_GET_ITEM(ctxt, 1);
    c.BLOCKED = PyTuple_GET_ITEM(ctxt, 2);
    c.SLEEPING = PyTuple_GET_ITEM(ctxt, 3);
    c.work_cls = PyTuple_GET_ITEM(ctxt, 4);
    c.runtime_line = PyTuple_GET_ITEM(ctxt, 5);
    c.heappush = PyTuple_GET_ITEM(ctxt, 6);
    c.heappop = PyTuple_GET_ITEM(ctxt, 7);
    c.frame_cls = PyTuple_GET_ITEM(ctxt, 9);
    c.snap_next = SNAP_NONE;

    /* --- eligibility re-check (the accel wrapper should have filtered) --- */
    {
        PyObject *obs = PyObject_GetAttr(eng, s_observers);
        if (obs == NULL)
            return NULL;
        int has = PyObject_IsTrue(obs);
        Py_DECREF(obs);
        if (has < 0)
            return NULL;
        if (has) {
            PyErr_SetString(PyExc_RuntimeError,
                            "accel core: engine has observers attached");
            return NULL;
        }
        PyObject *faults = PyObject_GetAttr(eng, s__faults);
        if (faults == NULL)
            return NULL;
        int faulty = (faults != Py_None);
        Py_DECREF(faults);
        if (faulty) {
            PyErr_SetString(PyExc_RuntimeError,
                            "accel core: engine has a fault plan");
            return NULL;
        }
    }

    /* --- hoists ---------------------------------------------------------- */
    {
        PyObject *cfg = PyObject_GetAttr(eng, s_cfg);
        if (cfg == NULL)
            return NULL;
        PyObject *v;
        int bad = 0;
        if (e_get_ll(cfg, s_quantum_ns, &c.quantum) < 0 ||
            e_get_ll(cfg, s_cores, &c.cores) < 0)
            bad = 1;
        if (!bad) {
            v = PyObject_GetAttr(cfg, s_max_virtual_ns);
            if (v == NULL)
                bad = 1;
            else {
                c.has_max = (v != Py_None);
                if (c.has_max) {
                    c.max_ns = PyLong_AsLongLong(v);
                    if (c.max_ns == -1 && PyErr_Occurred())
                        bad = 1;
                }
                Py_DECREF(v);
            }
        }
        if (!bad) {
            v = PyObject_GetAttr(cfg, s_flush_samples_on_block);
            if (v == NULL)
                bad = 1;
            else {
                c.flush_on_block = PyObject_IsTrue(v);
                Py_DECREF(v);
                if (c.flush_on_block < 0)
                    bad = 1;
            }
        }
        if (!bad) {
            v = PyObject_GetAttr(cfg, s_interference_coeff);
            if (v == NULL)
                bad = 1;
            else {
                double coeff = PyFloat_AsDouble(v);
                Py_DECREF(v);
                if (coeff == -1.0 && PyErr_Occurred())
                    bad = 1;
                else if (coeff != 0.0) {
                    PyErr_SetString(
                        PyExc_RuntimeError,
                        "accel core: interference model is enabled");
                    bad = 1;
                }
            }
        }
        Py_DECREF(cfg);
        if (bad)
            return NULL;
    }

#define HOIST(dst, obj, name)                                               \
    do {                                                                    \
        c.dst = PyObject_GetAttr((obj), (name));                            \
        if (c.dst == NULL)                                                  \
            goto fail;                                                      \
    } while (0)

    HOIST(heap, eng, s__heap);
    if (!PyList_Check(c.heap)) {
        PyErr_SetString(PyExc_TypeError, "engine._heap is not a list");
        goto fail;
    }
    HOIST(ready, eng, s_ready);
    HOIST(running, eng, s_running);
    if (!PySet_Check(c.running)) {
        PyErr_SetString(PyExc_TypeError, "engine.running is not a set");
        goto fail;
    }
    HOIST(ready_append, c.ready, s_append);
    HOIST(ready_popleft, c.ready, s_popleft);
    HOIST(run_add, c.running, s_add);
    HOIST(run_discard, c.running, s_discard);
    HOIST(sampler, eng, s_sampler);
    HOIST(acct, c.sampler, s_account);
    HOIST(drain, c.sampler, s_drain);
    HOIST(deliver, eng, s__deliver_batch);
    HOIST(op_table, eng, s__op_table);
    if (!PyDict_Check(c.op_table)) {
        PyErr_SetString(PyExc_TypeError, "engine._op_table is not a dict");
        goto fail;
    }
    HOIST(line_watchers, eng, s__line_watchers);
    if (!PyAnySet_Check(c.line_watchers)) {
        PyErr_SetString(PyExc_TypeError,
                        "engine._line_watchers is not a set");
        goto fail;
    }
    HOIST(hook, eng, s_hook);
    HOIST(progress_counts, eng, s_progress_counts);
    if (c.hook != Py_None) {
        HOIST(h_before_block, c.hook, s_before_block);
        HOIST(h_before_wake, c.hook, s_before_wake_op);
        HOIST(h_unblock, c.hook, s_on_unblock);
        HOIST(h_progress, c.hook, s_on_progress);
    }
    /* underlying functions of the inlinable actions, from the engine's own
     * class: a subclass override produces a different function object, so
     * c_try_action never matches it and falls back to Python */
    {
        PyObject *etype = (PyObject *)Py_TYPE(eng);
        HOIST(fn_lock, etype, s__do_lock);
        HOIST(fn_unlock, etype, s__do_unlock);
        HOIST(fn_push, etype, s__do_push_frame);
        HOIST(fn_pop, etype, s__do_pop_frame);
        HOIST(fn_progress, etype, s__do_progress);
    }
#undef HOIST
    if (e_get_ll(c.sampler, s_period_ns, &c.period) < 0 ||
        e_get_ll(c.sampler, s_batch_size, &c.batch_size) < 0 ||
        e_get_ll(eng, s__call_overhead_ns, &c.call_overhead) < 0 ||
        e_get_ll(eng, s_now, &c.now) < 0)
        goto fail;
    {
        PyObject *v = PyObject_GetAttr(eng, s__sampling_live);
        if (v == NULL)
            goto fail;
        c.sampling_live = PyObject_IsTrue(v);
        Py_DECREF(v);
        if (c.sampling_live < 0)
            goto fail;
        v = PyObject_GetAttr(eng, s__coalesce);
        if (v == NULL)
            goto fail;
        c.coalesce = PyObject_IsTrue(v);
        Py_DECREF(v);
        if (c.coalesce < 0)
            goto fail;
        v = PyObject_GetAttr(eng, s__snap_next);
        if (v == NULL)
            goto fail;
        if (v != Py_None) {
            c.snap_next = PyLong_AsLongLong(v);
            if (c.snap_next == -1 && PyErr_Occurred()) {
                Py_DECREF(v);
                goto fail;
            }
        }
        Py_DECREF(v);
    }

    /* --- the loop -------------------------------------------------------- */
    for (;;) {
        long long alive;
        if (e_get_ll(eng, s__alive, &alive) < 0)
            goto fail;
        if (alive == 0)
            break;
        if (PyList_GET_SIZE(c.heap) == 0) {
            if (flush_events(&c) < 0)
                goto fail;
            PyObject *r =
                PyObject_CallMethodNoArgs(eng, s__raise_deadlock);
            if (r == NULL)
                goto fail;
            Py_DECREF(r); /* unreachable in practice: it always raises */
            continue;
        }
        if (c.snap_next != SNAP_NONE) {
            PyObject *ev0 = PyList_GET_ITEM(c.heap, 0);
            if (!PyTuple_Check(ev0) || PyTuple_GET_SIZE(ev0) != 7) {
                PyErr_SetString(PyExc_TypeError,
                                "malformed event in engine heap");
                goto fail;
            }
            long long when0 =
                PyLong_AsLongLong(PyTuple_GET_ITEM(ev0, 0));
            if (when0 == -1 && PyErr_Occurred())
                goto fail;
            if (when0 >= c.snap_next) {
                /* quiescent instant on the checkpoint grid: capture */
                if (flush_events(&c) < 0)
                    goto fail;
                PyObject *r =
                    PyObject_CallMethodNoArgs(eng, s__take_checkpoint);
                if (r == NULL)
                    goto fail;
                if (r == Py_None)
                    c.snap_next = SNAP_NONE;
                else {
                    c.snap_next = PyLong_AsLongLong(r);
                    if (c.snap_next == -1 && PyErr_Occurred()) {
                        Py_DECREF(r);
                        goto fail;
                    }
                }
                Py_DECREF(r);
            }
        }
        PyObject *ev;
        {
            PyObject *argv[1] = {c.heap};
            ev = PyObject_Vectorcall(c.heappop, argv, 1, NULL);
            if (ev == NULL)
                goto fail;
        }
        if (!PyTuple_Check(ev) || PyTuple_GET_SIZE(ev) != 7) {
            Py_DECREF(ev);
            PyErr_SetString(PyExc_TypeError,
                            "malformed event in engine heap");
            goto fail;
        }
        long long when = PyLong_AsLongLong(PyTuple_GET_ITEM(ev, 0));
        if (when == -1 && PyErr_Occurred()) {
            Py_DECREF(ev);
            goto fail;
        }
        long kind = PyLong_AsLong(PyTuple_GET_ITEM(ev, 4));
        if (kind == -1 && PyErr_Occurred()) {
            Py_DECREF(ev);
            goto fail;
        }
        PyObject *obj = PyTuple_GET_ITEM(ev, 5);
        PyObject *argo = PyTuple_GET_ITEM(ev, 6);
        if (when > c.now) {
            c.now = when;
            if (PyObject_SetAttr(eng, s_now,
                                 PyTuple_GET_ITEM(ev, 0)) < 0) {
                Py_DECREF(ev);
                goto fail;
            }
        }
        c.events++;
        int hr = 0;
        if (kind == EV_TIMER) {
            if (e_add_ll(eng, s__timer_count, -1) < 0)
                hr = -1;
            else {
                PyObject *r = PyObject_CallNoArgs(obj);
                if (r == NULL)
                    hr = -1;
                else {
                    Py_DECREF(r);
                    if (c.coalesce) {
                        /* an experiment boundary may have handed running
                         * threads pending pauses: pull mega-chunks back
                         * to the quantum grid, like the legacy engine */
                        r = PyObject_CallMethodNoArgs(
                            eng, s__truncate_pending);
                        if (r == NULL)
                            hr = -1;
                        else
                            Py_DECREF(r);
                    }
                }
            }
        } else {
            if (!PyObject_TypeCheck(obj, slot_type)) {
                PyErr_SetString(PyExc_TypeError,
                                "thread event on non-VThread object");
                hr = -1;
            } else {
                long long tok_ev = PyLong_AsLongLong(argo);
                if (tok_ev == -1 && PyErr_Occurred())
                    hr = -1;
                else if (kind == EV_CHUNK)
                    hr = c_chunk_event(&c, obj, tok_ev);
                else {
                    long long tok;
                    PyObject *st;
                    if (t_get_ll(obj, SL_CHUNK_TOKEN, &tok) < 0 ||
                        (st = t_get(obj, SL_STATE)) == NULL)
                        hr = -1;
                    else if (tok == tok_ev) {
                        if (kind == EV_SLEEP && st == c.SLEEPING) {
                            if (e_add_ll(eng, s__sleeping, -1) < 0)
                                hr = -1;
                            else {
                                /* transit state so _wake() is legal */
                                t_set(obj, SL_STATE, c.BLOCKED);
                                PyObject *r = PyObject_CallMethodObjArgs(
                                    eng, s__wake, obj, Py_None, NULL);
                                if (r == NULL)
                                    hr = -1;
                                else
                                    Py_DECREF(r);
                            }
                        } else if (kind == EV_PAUSE && st == c.SLEEPING) {
                            PyObject *r = PyObject_CallMethodOneArg(
                                eng, s__make_ready, obj);
                            if (r == NULL)
                                hr = -1;
                            else
                                Py_DECREF(r);
                        } else if (kind == EV_OVERHEAD &&
                                   st == c.RUNNING) {
                            hr = c_drive(&c, obj);
                        }
                    }
                }
            }
        }
        Py_DECREF(ev);
        if (hr < 0)
            goto fail;
        {
            Py_ssize_t rn = PyObject_Size(c.ready);
            if (rn < 0)
                goto fail;
            if (rn > 0 && c_dispatch(&c) < 0)
                goto fail;
        }
        if (c.has_max && c.now > c.max_ns) {
            if (flush_events(&c) < 0)
                goto fail;
            PyObject *r =
                PyObject_CallMethodNoArgs(eng, s__raise_overrun);
            if (r == NULL)
                goto fail;
            Py_DECREF(r); /* unreachable: it always raises */
        }
        if (e_get_ll(eng, s__alive, &alive) < 0)
            goto fail;
        if (alive && PySet_GET_SIZE(c.running) == 0) {
            Py_ssize_t rn = PyObject_Size(c.ready);
            if (rn < 0)
                goto fail;
            if (rn == 0) {
                long long sleeping, timers;
                if (e_get_ll(eng, s__sleeping, &sleeping) < 0 ||
                    e_get_ll(eng, s__timer_count, &timers) < 0)
                    goto fail;
                if (sleeping == 0 && timers == 0) {
                    if (flush_events(&c) < 0)
                        goto fail;
                    PyObject *r = PyObject_CallMethodNoArgs(
                        eng, s__raise_deadlock);
                    if (r == NULL)
                        goto fail;
                    Py_DECREF(r); /* unreachable: it always raises */
                }
            }
        }
    }
    if (flush_events(&c) < 0)
        goto fail;
    ctx_clear(&c);
    Py_RETURN_NONE;
fail:
    /* like the pure loop, an unwinding exception does NOT flush the
     * in-flight events counter */
    ctx_clear(&c);
    return NULL;
}

/* ------------------------------------------------------------------ module */

static PyMethodDef core_methods[] = {
    {"event_loop", core_event_loop, METH_VARARGS,
     "event_loop(engine, ctx) -> None\n\n"
     "Run the engine's event loop to completion in compiled code.\n"
     "Bit-identical to repro.sim.backend.pure.event_loop for eligible\n"
     "engines (no observers, no fault plan, interference disabled)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    "repro.sim.backend._core",
    "Compiled engine event-loop core (see repro.sim.backend).",
    -1,
    core_methods,
};

PyMODINIT_FUNC
PyInit__core(void)
{
#define INTERN(n)                                                           \
    do {                                                                    \
        s_##n = PyUnicode_InternFromString(#n);                             \
        if (s_##n == NULL)                                                  \
            return NULL;                                                    \
    } while (0);
#define INTERN_ONE(n) INTERN(n)
    STR_LIST(INTERN_ONE)
#undef INTERN_ONE
#undef INTERN
    str_inserted_pause = PyUnicode_InternFromString("inserted-pause");
    if (str_inserted_pause == NULL)
        return NULL;
    float_one = PyFloat_FromDouble(1.0);
    if (float_one == NULL)
        return NULL;
    return PyModule_Create(&core_module);
}
