"""Exception hierarchy for the execution simulator and the run harness.

Two families share the :class:`SimulationError` root:

* **sim-level** errors describe what went wrong *inside* a virtual
  execution: sync-primitive misuse (:class:`SyncError`), a wedged schedule
  (:class:`DeadlockError`, :class:`StuckLockError`), or an injected fault
  (:class:`ThreadCrashFault`, see :mod:`repro.sim.faults`).  These are
  deterministic — the same program and seed reproduce them exactly — so the
  harness records them as failed-run entries instead of retrying.

* **harness-level** errors (:class:`RunFaultedError` and its
  :class:`WorkerCrashError` / :class:`WorkerHungError` subclasses) describe
  what went wrong with the *process* executing a run: a worker died, hung
  past its watchdog deadline, or a run ended in a recorded fault.  Worker
  failures are environmental and therefore retryable (backoff + circuit
  breaker, :mod:`repro.harness.parallel`).

Sim-level errors carry ``virtual_ns`` — the virtual timestamp at which the
run stopped making progress — so failure records can say how far a run got.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class SimulationError(Exception):
    """Base class for all simulator errors.

    ``virtual_ns`` is the virtual time at which the error was raised (0
    when unknown or not applicable).
    """

    def __init__(self, message: str, virtual_ns: int = 0) -> None:
        super().__init__(message)
        self.virtual_ns = virtual_ns


class SyncError(SimulationError):
    """Misuse of a synchronization primitive.

    Raised for, e.g., unlocking a mutex the thread does not own or waiting on
    a condition variable without holding its mutex.
    """


#: one blocked thread's diagnostics: (name, what it is blocked on, callchain)
BlockedThread = Tuple[str, Optional[str], Tuple]


def _format_blocked(blocked: Sequence[BlockedThread]) -> str:
    if not blocked:
        return "none"
    rows = []
    for name, what, chain in blocked:
        chain_s = " <- ".join(str(line) for line in chain) if chain else "?"
        rows.append(f"{name} on {what} at {chain_s}")
    return "; ".join(rows)


class DeadlockError(SimulationError):
    """The simulation cannot make progress.

    Raised when no thread is runnable, no timer is pending, and at least one
    thread is still blocked.  Carries the virtual timestamp (``virtual_ns``)
    and each blocked thread's full callchain (``blocked``), so test failures
    and recorded failure entries are self-diagnosing.
    """

    def __init__(
        self,
        message: Optional[str] = None,
        virtual_ns: int = 0,
        blocked: Sequence[BlockedThread] = (),
    ) -> None:
        self.blocked: List[BlockedThread] = list(blocked)
        if message is None:
            message = (
                f"no runnable threads at t={virtual_ns}; "
                f"blocked: {_format_blocked(self.blocked)}"
            )
        super().__init__(message, virtual_ns=virtual_ns)


class ThreadCrashFault(SimulationError):
    """An injected fault aborted a thread mid-activity.

    Only raised by the fault-injection layer (:mod:`repro.sim.faults`);
    deterministic for a given :class:`~repro.sim.faults.FaultPlan` and run
    seed, so it is recorded as a failed run rather than retried.
    """

    def __init__(self, thread_name: str, virtual_ns: int) -> None:
        super().__init__(
            f"injected crash of thread {thread_name!r} at t={virtual_ns}",
            virtual_ns=virtual_ns,
        )
        self.thread_name = thread_name


class StuckLockError(SimulationError):
    """A stalled lock-holder wedged the schedule (livelock).

    Raised by the fault layer's in-sim stall detector when an injected
    stuck thread is still grinding ``detect_ns`` after the stall began,
    with every blocked peer's callchain attached — the diagnostics GAPP
    produces for serialization stalls, on the simulator.
    """

    def __init__(
        self,
        holder: str,
        virtual_ns: int,
        blocked: Sequence[BlockedThread] = (),
    ) -> None:
        self.holder = holder
        self.blocked: List[BlockedThread] = list(blocked)
        super().__init__(
            f"thread {holder!r} stuck on-CPU at t={virtual_ns} "
            f"(injected stall); blocked: {_format_blocked(self.blocked)}",
            virtual_ns=virtual_ns,
        )


class RunFaultedError(SimulationError):
    """A profiling run could not produce a result.

    Base of the harness-level taxonomy; ``error_type`` names the concrete
    failure class for failure records and reports.
    """

    @property
    def error_type(self) -> str:
        return type(self).__name__


class WorkerCrashError(RunFaultedError):
    """A worker process died or raised while executing a run.

    Environmental (pool breakage, a ``SIGKILL``-ed worker, an exception
    that only reproduces worker-side), hence retryable: the executor backs
    off and retries, in a fresh pool first and in the parent last.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause


class WorkerHungError(RunFaultedError):
    """A worker exceeded its watchdog deadline.

    The deadline is either the caller's explicit per-run timeout or the
    executor's running-median-derived watchdog bound.  Hung workers cannot
    be cancelled, so raising this also terminates the pool's processes.
    """

    def __init__(self, message: str, deadline_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s


class ServiceError(RunFaultedError):
    """Base of the profiling-service taxonomy (:mod:`repro.harness.service`).

    Service errors describe why the *daemon* could not (or would not) run a
    job: admission control shed it, its deadline passed, or the service is
    shutting down.  They are per-request outcomes, never session-fatal — a
    shed request degrades that tenant's request, not the daemon.
    """


class ServiceOverloadError(ServiceError):
    """A request was shed by admission control.

    ``reason`` names the control that fired — ``"queue-depth"`` (the
    tenant's pending-job quota is full), ``"rate-limit"`` (the tenant's
    token bucket is empty), or ``"circuit-breaker"`` (the tenant's recent
    jobs kept failing and the breaker is open).  Shedding is always
    per-tenant: one tenant's chaos never sheds another's requests.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


class DeadlineExceededError(ServiceError):
    """A job's deadline passed before it could finish.

    Raised when a queued job expires before a worker picks it up, and
    recorded when a running session is stopped at its deadline (the session
    journal keeps every completed run, so resubmitting the same request
    resumes where the deadline cut it off).
    """

    def __init__(self, message: str, deadline_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s
