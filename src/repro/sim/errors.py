"""Exception hierarchy for the execution simulator."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class SyncError(SimulationError):
    """Misuse of a synchronization primitive.

    Raised for, e.g., unlocking a mutex the thread does not own or waiting on
    a condition variable without holding its mutex.
    """


class DeadlockError(SimulationError):
    """The simulation cannot make progress.

    Raised when no thread is runnable, no timer is pending, and at least one
    thread is still blocked.  The message lists the blocked threads and what
    each is waiting on, which makes test failures self-diagnosing.
    """
