"""Per-thread CPU-time instruction-pointer sampling.

Coz samples each thread's program counter every 1 ms of *that thread's* CPU
time via perf_event, and processes samples in batches of ten (§3.1).  The
simulator reproduces those semantics analytically: while a thread executes a
work chunk, samples accrue every ``period_ns`` of nominal CPU time; they are
buffered on the thread and flushed to the profiler hook in batches at chunk
boundaries — the moral equivalent of draining the perf_event ring buffer.

Samples only accrue while a thread is on-CPU: blocked, sleeping, and paused
threads take no samples, exactly like the real system.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, NamedTuple, Optional, Tuple

from repro.sim.source import SourceLine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.thread import VThread


class Sample(NamedTuple):
    """One instruction-pointer sample.

    A NamedTuple rather than a dataclass: samples are allocated on the
    engine hot path (hundreds of thousands per profile session) and tuple
    construction is several times cheaper than frozen-dataclass ``__init__``.
    """

    time: int                      # virtual time when the batch point passed
    tid: int                       # sampled thread
    line: SourceLine               # innermost source line (the "IP")
    callchain: Tuple[SourceLine, ...]  # innermost-first, like a perf callstack
    func: str                      # innermost function name ('' at top level)


class Sampler:
    """Generates samples from CPU-time accounting.

    The engine calls :meth:`account` every time a thread finishes executing a
    chunk of on-CPU work.  Returns a batch of samples ready for processing
    (or ``None``), which the engine forwards to the profiler hook.
    """

    def __init__(self, period_ns: int, batch_size: int) -> None:
        if period_ns <= 0:
            raise ValueError("sample period must be positive")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.period_ns = period_ns
        self.batch_size = batch_size
        #: total samples generated, for overhead accounting and tests
        self.total_samples = 0

    def account(
        self,
        thread: "VThread",
        nominal_ns: int,
        now: int,
        allow_flush: bool = True,
        rate: float = 1.0,
    ) -> Optional[List[Sample]]:
        """Accrue ``nominal_ns`` of CPU time to ``thread``; maybe flush a batch.

        The thread's current activity line / callchain is captured for every
        sample that fires inside this span; sample timestamps are
        interpolated to the instant the thread's CPU clock crossed each
        period boundary (``rate`` = real ns per nominal ns for the chunk).
        With ``allow_flush=False`` (used during mid-chunk rescales) samples
        are buffered but no batch is returned, so the hook is only ever
        invoked at real chunk boundaries.
        """
        accum_before = thread.sample_accum
        thread.sample_accum += nominal_ns
        period = self.period_ns
        n = thread.sample_accum // period
        if n:
            thread.sample_accum -= n * period
            chain = thread.callchain()
            line0 = chain[0]
            func = thread.current_func()
            buf = thread.sample_buffer
            tid = thread.tid
            # tuple.__new__ bypasses NamedTuple's generated __new__; sample
            # construction is the single hottest allocation in a session
            new = tuple.__new__
            if rate == 1.0:
                # fast path: real time == nominal time, no rounding at all
                start_real = now - nominal_ns
                append = buf.append
                base = start_real - accum_before
                for k in range(1, n + 1):
                    append(new(Sample, (base + k * period, tid, line0, chain, func)))
            else:
                # The chunk-completion event was scheduled ceil(nominal*rate)
                # after the chunk started, so the span start must use the
                # same ceil rounding: with a floor here, start_real lands up
                # to 1 ns late and sample times can drift past the chunk
                # edge (`when > now` for the last sample).
                start_real = now - math.ceil(nominal_ns * rate)
                for k in range(1, n + 1):
                    cpu_offset = k * period - accum_before
                    when = start_real + int(cpu_offset * rate)
                    buf.append(new(Sample, (when, tid, line0, chain, func)))
            self.total_samples += n
        if allow_flush and len(thread.sample_buffer) >= self.batch_size:
            batch = thread.sample_buffer
            thread.sample_buffer = []
            return batch
        return None

    def drain(self, thread: "VThread") -> List[Sample]:
        """Flush whatever is buffered, regardless of batch size."""
        batch = thread.sample_buffer
        thread.sample_buffer = []
        return batch
