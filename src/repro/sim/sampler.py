"""Per-thread CPU-time instruction-pointer sampling.

Coz samples each thread's program counter every 1 ms of *that thread's* CPU
time via perf_event, and processes samples in batches of ten (§3.1).  The
simulator reproduces those semantics analytically: while a thread executes a
work chunk, samples accrue every ``period_ns`` of nominal CPU time; they are
buffered on the thread and flushed to the profiler hook in batches at chunk
boundaries — the moral equivalent of draining the perf_event ring buffer.

Samples only accrue while a thread is on-CPU: blocked, sleeping, and paused
threads take no samples, exactly like the real system.

Two pipelines produce bit-identical samples (DESIGN.md §5i):

* **scalar** — the original reference implementation: one
  :class:`Sample` NamedTuple allocated per sample, buffered in a plain
  list.  Retained both as the semantic reference (the property tests in
  ``tests/sim/test_sampler_columnar.py`` compare against it byte for byte)
  and as a fallback (``REPRO_SAMPLE_PIPELINE=scalar``).
* **columnar** — structure-of-arrays: each ``account`` call appends one
  *segment* descriptor to a :class:`ColumnarBuf` (the line/callchain/func
  are constant across a chunk, so a whole chunk's samples are one
  run-length-encoded record), and sample timestamps are computed lazily —
  with numpy int64 vector ops for large segments — only when a consumer
  actually needs :class:`Sample` tuples.  Hooks and observers that set
  ``accepts_columnar`` aggregate straight from the segments and never
  materialize at all.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator, List, NamedTuple, Optional, Tuple

from repro.sim.source import SourceLine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.thread import VThread


def _require_numpy():
    """Import numpy, failing fast with a clear message (see pyproject floor)."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is a hard dep
        raise ImportError(
            "repro's vectorized sample pipeline requires numpy >= 1.22 "
            "(pip install 'numpy>=1.22')"
        ) from exc
    version = getattr(numpy, "__version__", "0")
    try:
        parts = tuple(int(p) for p in version.split(".")[:2])
    except ValueError:  # pragma: no cover - exotic dev versions
        parts = (99, 99)
    if parts < (1, 22):  # pragma: no cover - exercised only on old numpy
        raise ImportError(
            f"repro's vectorized sample pipeline needs numpy >= 1.22 for "
            f"stable int64 casting semantics; found numpy {version}. "
            f"Upgrade numpy or run with REPRO_SAMPLE_PIPELINE=scalar."
        )
    return numpy


np = _require_numpy()


class Sample(NamedTuple):
    """One instruction-pointer sample.

    A NamedTuple rather than a dataclass: samples are allocated on the
    engine hot path (hundreds of thousands per profile session) and tuple
    construction is several times cheaper than frozen-dataclass ``__init__``.
    """

    time: int                      # virtual time when the batch point passed
    tid: int                       # sampled thread
    line: SourceLine               # innermost source line (the "IP")
    callchain: Tuple[SourceLine, ...]  # innermost-first, like a perf callstack
    func: str                      # innermost function name ('' at top level)


# --------------------------------------------------------------------- columnar

#: segment kinds (first tuple element of every ColumnarBuf segment)
SEG_AFFINE = 0    # rate == 1.0: times are base + k*period, k = 1..n
SEG_RESCALE = 1   # rate != 1.0: times are start_real + int((k*period - accum)*rate)
SEG_LITERAL = 2   # pre-materialized Samples (snapshot restore)

#: numpy engages only for segments at least this long; smaller segments use
#: the (byte-identical) scalar loop, whose fixed cost is lower than array
#: setup.  The property tests sweep sizes on both sides of this threshold.
VECTOR_MIN = 16

#: int64/float64 safety ceiling for the vector paths.  Beyond ~2^62 the
#: intermediate ``k*period - accum`` / ``base + k*period`` math can overflow
#: int64 under numpy, and ``cpu_offset * rate`` loses integer precision in
#: float64; segments whose values reach this range take the exact
#: arbitrary-precision scalar path instead (same bytes, no wraparound).
SAFE_TIME_MAX = 1 << 62

_new = tuple.__new__


def _affine_times(n: int, base: int, period: int) -> List[int]:
    """[base + k*period for k in 1..n], vectorized when it pays off."""
    if n >= VECTOR_MIN and 0 <= base + n * period < SAFE_TIME_MAX and base > -SAFE_TIME_MAX:
        return (base + period * np.arange(1, n + 1, dtype=np.int64)).tolist()
    return [base + k * period for k in range(1, n + 1)]


def _rescale_times(
    n: int, start_real: int, accum_before: int, rate: float, period: int, now: int
) -> List[int]:
    """Ceil-rounded rescale timestamps, clamped to the chunk edge ``now``.

    Mirrors the scalar reference exactly: float64 multiply then truncation
    toward zero.  numpy's int64->float64->int64 round trip performs the
    identical IEEE-754 double rounding and truncation, so the two paths are
    byte-identical below :data:`SAFE_TIME_MAX` (the property tests pin this).
    The clamp guards against float precision drift pushing a sample past the
    chunk edge at extreme virtual times (``when`` must never exceed ``now``).
    """
    if (
        n >= VECTOR_MIN
        and 0 <= now < SAFE_TIME_MAX
        and abs(start_real) < SAFE_TIME_MAX
        and n * period < SAFE_TIME_MAX
    ):
        k = np.arange(1, n + 1, dtype=np.int64)
        cpu = k * period - accum_before
        when = start_real + (cpu.astype(np.float64) * rate).astype(np.int64)
        np.minimum(when, now, out=when)
        return when.tolist()
    out = []
    append = out.append
    for k in range(1, n + 1):
        when = start_real + int((k * period - accum_before) * rate)
        append(when if when <= now else now)
    return out


class ColumnarBuf:
    """A thread's buffered samples as run-length-encoded segments.

    One segment per ``Sampler.account`` call that produced samples: the
    sampled line, callchain, and function are constant across a chunk, so
    only the per-sample *timestamps* vary — and those are affine (or
    ceil-rescaled) functions of the sample index, stored as parameters and
    expanded on demand.  ``__iter__``/``materialize`` produce the exact
    :class:`Sample` tuples the scalar pipeline would have buffered, so
    consumers that do not understand segments (snapshot capture, hooks
    without ``accepts_columnar``) see identical bytes.
    """

    __slots__ = ("segs", "n")

    def __init__(self) -> None:
        self.segs: List[tuple] = []
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def __bool__(self) -> bool:
        return self.n > 0

    def add_affine(self, n, tid, line, chain, func, base, period) -> None:
        self.segs.append((SEG_AFFINE, n, tid, line, chain, func, base, period))
        self.n += n

    def add_rescale(
        self, n, tid, line, chain, func, start_real, accum_before, rate, period, now
    ) -> None:
        self.segs.append(
            (SEG_RESCALE, n, tid, line, chain, func,
             start_real, accum_before, rate, period, now)
        )
        self.n += n

    def add_literal(self, samples) -> None:
        """Adopt pre-materialized Samples (snapshot restore)."""
        samples = list(samples)
        if samples:
            self.segs.append((SEG_LITERAL, len(samples), samples))
            self.n += len(samples)

    def seg_times(self, seg: tuple) -> List[int]:
        """The segment's sample timestamps, in sample order."""
        kind = seg[0]
        if kind == SEG_AFFINE:
            return _affine_times(seg[1], seg[6], seg[7])
        if kind == SEG_RESCALE:
            return _rescale_times(seg[1], seg[6], seg[7], seg[8], seg[9], seg[10])
        return [s.time for s in seg[2]]

    def materialize(self) -> List[Sample]:
        """Expand to the exact Sample list the scalar pipeline would hold."""
        out: List[Sample] = []
        for seg in self.segs:
            kind = seg[0]
            if kind == SEG_LITERAL:
                out.extend(seg[2])
                continue
            _, n, tid, line, chain, func = seg[:6]
            append = out.append
            for when in self.seg_times(seg):
                append(_new(Sample, (when, tid, line, chain, func)))
        return out

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.materialize())


class Sampler:
    """Generates samples from CPU-time accounting.

    The engine calls :meth:`account` every time a thread finishes executing a
    chunk of on-CPU work.  Returns a batch of samples ready for processing
    (or ``None``), which the engine forwards to the profiler hook.  With
    ``columnar=True`` the per-thread buffers are :class:`ColumnarBuf`
    segment buffers and returned batches are columnar; otherwise they are
    plain ``Sample`` lists (the scalar reference pipeline).
    """

    def __init__(self, period_ns: int, batch_size: int, columnar: bool = False) -> None:
        if period_ns <= 0:
            raise ValueError("sample period must be positive")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.period_ns = period_ns
        self.batch_size = batch_size
        self.columnar = bool(columnar)
        #: total samples generated, for overhead accounting and tests
        self.total_samples = 0

    def new_buffer(self, samples=None):
        """A fresh (or snapshot-rehydrated) per-thread sample buffer."""
        if not self.columnar:
            return list(samples) if samples else []
        buf = ColumnarBuf()
        if samples:
            buf.add_literal(samples)
        return buf

    def account(
        self,
        thread: "VThread",
        nominal_ns: int,
        now: int,
        allow_flush: bool = True,
        rate: float = 1.0,
    ):
        """Accrue ``nominal_ns`` of CPU time to ``thread``; maybe flush a batch.

        The thread's current activity line / callchain is captured for every
        sample that fires inside this span; sample timestamps are
        interpolated to the instant the thread's CPU clock crossed each
        period boundary (``rate`` = real ns per nominal ns for the chunk).
        With ``allow_flush=False`` (used during mid-chunk rescales) samples
        are buffered but no batch is returned, so the hook is only ever
        invoked at real chunk boundaries.
        """
        accum_before = thread.sample_accum
        thread.sample_accum += nominal_ns
        period = self.period_ns
        n = thread.sample_accum // period
        if n:
            thread.sample_accum -= n * period
            chain = thread.callchain()
            line0 = chain[0]
            func = thread.current_func()
            buf = thread.sample_buffer
            tid = thread.tid
            if self.columnar:
                if rate == 1.0:
                    # fast path: real time == nominal time, no rounding
                    buf.add_affine(
                        n, tid, line0, chain, func,
                        now - nominal_ns - accum_before, period,
                    )
                else:
                    # ceil start rounding: see the scalar path's comment
                    buf.add_rescale(
                        n, tid, line0, chain, func,
                        now - math.ceil(nominal_ns * rate),
                        accum_before, rate, period, now,
                    )
            elif rate == 1.0:
                # fast path: real time == nominal time, no rounding at all
                start_real = now - nominal_ns
                append = buf.append
                base = start_real - accum_before
                for k in range(1, n + 1):
                    append(_new(Sample, (base + k * period, tid, line0, chain, func)))
            else:
                # The chunk-completion event was scheduled ceil(nominal*rate)
                # after the chunk started, so the span start must use the
                # same ceil rounding: with a floor here, start_real lands up
                # to 1 ns late and sample times can drift past the chunk
                # edge (`when > now` for the last sample).  The clamp guards
                # the residual failure mode: at extreme virtual times (near
                # 2^62) the float64 product itself drifts by more than the
                # ceil start absorbs, and a sample must never postdate the
                # chunk edge it was delivered at.
                start_real = now - math.ceil(nominal_ns * rate)
                append = buf.append
                for k in range(1, n + 1):
                    cpu_offset = k * period - accum_before
                    when = start_real + int(cpu_offset * rate)
                    if when > now:
                        when = now
                    append(_new(Sample, (when, tid, line0, chain, func)))
            self.total_samples += n
        if allow_flush and len(thread.sample_buffer) >= self.batch_size:
            batch = thread.sample_buffer
            thread.sample_buffer = self.new_buffer()
            return batch
        return None

    def drain(self, thread: "VThread"):
        """Flush whatever is buffered, regardless of batch size."""
        batch = thread.sample_buffer
        thread.sample_buffer = self.new_buffer()
        return batch
