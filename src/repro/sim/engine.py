"""The discrete-event execution engine.

The engine schedules virtual threads (generator coroutines) onto a fixed
number of virtual cores, advancing an integer nanosecond clock from event to
event.  It is deliberately shaped like the slice of the system Coz lives in:

* threads execute on-CPU *chunks* bounded by a scheduling quantum, so the
  machine is fair under oversubscription (50 memcached clients on 8 cores)
  and the profiler gets control at a bounded latency;
* per-thread CPU-time sampling accrues during chunks and is delivered to the
  installed :class:`~repro.sim.hooks.ProfilerHook` in batches at chunk
  boundaries;
* every blocking and waking edge of every synchronization primitive passes
  through the hook, which may insert pauses before the edge or skip credited
  pauses after it — the exact interposition surface of paper Tables 1-2;
* an optional *interference model*: threads marked as spinning raise a global
  interference level that slows down memory-bound work elsewhere, modelling
  the cache-coherence traffic of busy-wait loops.

Determinism: given the same program and configuration, event ordering is a
pure function of (time, sequence-number), so runs are exactly repeatable.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Set

from repro.sim import ops as O
from repro.sim.clock import MS, US
from repro.sim.errors import DeadlockError, SimulationError, SyncError
from repro.sim.hooks import Observer, ProfilerHook
from repro.sim.sampler import Sampler
from repro.sim.source import RUNTIME_LINE, SourceLine
from repro.sim.sync import Barrier, CondVar, Mutex, Semaphore
from repro.sim.thread import Frame, ThreadState, VThread

BLOCKED = ThreadState.BLOCKED
FINISHED = ThreadState.FINISHED
READY = ThreadState.READY
RUNNING = ThreadState.RUNNING
SLEEPING = ThreadState.SLEEPING


@dataclass
class SimConfig:
    """Machine and runtime-cost model parameters."""

    #: number of virtual cores
    cores: int = 8
    #: maximum on-CPU chunk length (scheduling quantum / hook latency bound)
    quantum_ns: int = MS(2)
    #: per-thread CPU-time sampling period (Coz default: 1 ms)
    sample_period_ns: int = MS(1)
    #: samples per processing batch (Coz default: 10)
    sample_batch: int = 10
    #: slowdown of memory-bound work per spinning thread (cache coherence)
    interference_coeff: float = 0.0
    #: CPU cost of a mutex lock/unlock/trylock operation
    lock_cost_ns: int = 60
    #: CPU cost of condvar/barrier/semaphore operations
    sync_cost_ns: int = 150
    #: CPU cost of spawning a thread
    spawn_cost_ns: int = US(5)
    #: hard stop for runaway simulations (None = unlimited)
    max_virtual_ns: Optional[int] = None
    #: engine RNG seed: drives per-thread sampling phase jitter
    seed: int = 0
    #: process a thread's buffered samples before it blocks (Coz's runtime
    #: interposes on blocking calls and drains available samples there, so
    #: mostly-blocked threads do not sit on stale batches)
    flush_samples_on_block: bool = True
    #: randomize each thread's sampling phase (realistic perf_event behaviour;
    #: also prevents aliasing between aligned sampling clocks and periodic
    #: work, a bias source the paper warns about)
    sample_phase_jitter: bool = True


class Engine:
    """Event-driven scheduler for virtual threads."""

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.cfg = config or SimConfig()
        if self.cfg.cores < 1:
            raise ValueError("need at least one core")
        self.now: int = 0
        self.rng = random.Random(self.cfg.seed)
        self._seq: int = 0
        self._heap: List = []
        self._timer_count: int = 0  # pending non-thread (timer) events

        self.threads: List[VThread] = []
        self.ready: Deque[VThread] = deque()
        self.running: Set[VThread] = set()
        self._alive = 0
        self._sleeping = 0

        self.hook: Optional[ProfilerHook] = None
        self.observers: List[Observer] = []
        self.sampler = Sampler(self.cfg.sample_period_ns, self.cfg.sample_batch)
        self.sampling_enabled = False
        self._observer_sampling = False
        self._call_overhead_ns = 0

        #: number of threads currently marked as spinning
        self.interference = 0
        #: lines registered as breakpoint progress points
        self._line_watchers: Set[SourceLine] = set()
        #: raw visit counts of source-level progress points
        self.progress_counts: Counter = Counter()
        #: total profiler-inserted pause time across all threads
        self.total_delay_ns = 0
        #: total nominal CPU time executed across all threads
        self.total_cpu_ns = 0

        self.main_thread: Optional[VThread] = None
        self._started = False

    # ------------------------------------------------------------------ setup

    def install(self, hook: ProfilerHook) -> None:
        """Install the active profiler hook (at most one)."""
        if self.hook is not None:
            raise SimulationError("a profiler hook is already installed")
        self.hook = hook
        hook.attach(self)

    def add_observer(self, obs: Observer) -> None:
        self.observers.append(obs)
        self._call_overhead_ns = max(
            self._call_overhead_ns, getattr(obs, "call_overhead_ns", 0)
        )
        if getattr(obs, "wants_samples", False):
            self._observer_sampling = True

    def watch_line(self, line: SourceLine) -> None:
        """Register a breakpoint progress point on ``line``."""
        self._line_watchers.add(line)

    def enable_sampling(self) -> None:
        self.sampling_enabled = True

    # ------------------------------------------------------------------ timers

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at virtual time ``when`` (profiler-thread timers)."""
        if when < self.now:
            when = self.now
        self._timer_count += 1

        def wrapped() -> None:
            self._timer_count -= 1
            fn()

        self._push(when, wrapped)

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def _push(self, when: int, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn))

    # ------------------------------------------------------------------ threads

    def spawn(
        self,
        body: Callable,
        name: Optional[str] = None,
        parent: Optional[VThread] = None,
    ) -> VThread:
        """Create a thread and make it runnable."""
        t = VThread(body, name=name, parent=parent)
        if self.cfg.sample_phase_jitter:
            # desynchronize sampling clocks across threads, like real timers
            t.sample_accum = self.rng.randrange(self.cfg.sample_period_ns)
        self.threads.append(t)
        self._alive += 1
        if self.main_thread is None:
            self.main_thread = t
        if self.hook is not None:
            self.hook.on_thread_created(t, parent)
        for obs in self.observers:
            obs.on_thread_created(t, parent)
        t.state = READY
        self.ready.append(t)
        return t

    # ------------------------------------------------------------------ run loop

    def run(self) -> None:
        """Run until every thread has finished."""
        if self._started:
            raise SimulationError("engine.run() may only be called once")
        self._started = True
        if self.main_thread is None:
            raise SimulationError("no threads spawned before run()")
        if self.hook is not None:
            self.hook.on_run_start(self)
        for obs in self.observers:
            obs.on_run_start(self)

        max_ns = self.cfg.max_virtual_ns
        self._dispatch()
        while self._alive:
            if not self._heap:
                self._raise_deadlock()
            when, _seq, fn = heapq.heappop(self._heap)
            if when > self.now:
                self.now = when
            fn()
            self._dispatch()
            if max_ns is not None and self.now > max_ns:
                raise SimulationError(
                    f"virtual time exceeded max_virtual_ns ({self.now} > {max_ns})"
                )
            if self._alive and not self.running and not self.ready:
                if self._sleeping == 0 and self._timer_count == 0:
                    self._raise_deadlock()

        if self.hook is not None:
            self.hook.on_run_end(self)
        for obs in self.observers:
            obs.on_run_end(self)

    def _raise_deadlock(self) -> None:
        blocked = [
            f"{t.name} on {t.blocked_on}"
            for t in self.threads
            if t.state is BLOCKED
        ]
        raise DeadlockError(
            f"no runnable threads at t={self.now}; blocked: {blocked or 'none'}"
        )

    # ------------------------------------------------------------------ dispatch

    def _dispatch(self) -> None:
        """Assign ready threads to free cores and drive them."""
        while self.ready and len(self.running) < self.cfg.cores:
            t = self.ready.popleft()
            if t.state is not READY:  # defensive; should not happen
                continue
            t.state = RUNNING
            self.running.add(t)
            self._drive(t)

    def _drive(self, t: VThread) -> None:
        """Run ``t`` (RUNNING, on a core) until it needs time or leaves the CPU."""
        while t.state is RUNNING:
            if t.pending_cpu_ns > 0:
                self._start_overhead_slice(t)
                return
            if t.pending_pause_ns > 0:
                self._start_pause(t)
                return
            if t.activity_remaining > 0:
                self._begin_chunk(t)
                return
            cont = t.continuation
            if cont is not None:
                t.continuation = None
                cont()
                continue
            self._advance(t)

    # ------------------------------------------------------------------ chunks

    def _rate(self, t: VThread) -> float:
        """Real-ns per nominal-ns for t's current activity."""
        if not t.activity_memory_bound or self.cfg.interference_coeff == 0.0:
            return 1.0
        level = self.interference - (1 if t.spinning else 0)
        if level <= 0:
            return 1.0
        return 1.0 + self.cfg.interference_coeff * level

    def _begin_chunk(self, t: VThread) -> None:
        nominal = min(t.activity_remaining, self.cfg.quantum_ns)
        rate = self._rate(t)
        t.chunk_start = self.now
        t.chunk_nominal = nominal
        t.chunk_rate = rate
        t.chunk_token += 1
        token = t.chunk_token
        real = int(math.ceil(nominal * rate))
        self._push(self.now + real, lambda: self._chunk_done(t, token))

    def _chunk_done(self, t: VThread, token: int) -> None:
        if t.chunk_token != token or t.state is not RUNNING:
            return  # stale event after a rescale
        self._account_cpu(t, t.chunk_nominal, allow_flush=True)
        t.chunk_nominal = 0
        # Round-robin fairness: if others are waiting for a core and this
        # activity still has work, go to the back of the ready queue.
        if t.activity_remaining > 0 and self.ready:
            self.running.discard(t)
            t.state = READY
            self.ready.append(t)
            return
        self._drive(t)

    def _account_cpu(self, t: VThread, nominal: int, allow_flush: bool) -> None:
        """Book ``nominal`` executed CPU ns: accounting, observers, sampling."""
        if nominal <= 0:
            return
        t.activity_remaining -= nominal
        t.cpu_ns += nominal
        self.total_cpu_ns += nominal
        if self.observers:
            func = t.current_func()
            for obs in self.observers:
                obs.on_work(t, t.activity_line, func, nominal)
        if self.sampling_enabled or self._observer_sampling:
            batch = self.sampler.account(
                t, nominal, self.now, allow_flush, rate=t.chunk_rate
            )
            if batch is not None:
                self._deliver_batch(t, batch)

    def _deliver_batch(self, t: VThread, batch: List) -> None:
        for obs in self.observers:
            if getattr(obs, "wants_samples", False):
                for s in batch:
                    obs.on_sample(s)
        if self.hook is not None and self.sampling_enabled:
            action = self.hook.on_samples(t, batch)
            if action.pause_ns > 0:
                t.pending_pause_ns += action.pause_ns
            if action.cpu_ns > 0:
                t.pending_cpu_ns += action.cpu_ns

    def _start_pause(self, t: VThread) -> None:
        """Take the thread off-CPU for its pending profiler-inserted pause."""
        pause = t.pending_pause_ns
        t.pending_pause_ns = 0
        t.pause_ns += pause
        self.total_delay_ns += pause
        self._go_offcpu(t, SLEEPING, "inserted-pause")
        t.chunk_token += 1
        token = t.chunk_token
        self._push(self.now + pause, lambda: self._pause_done(t, token))

    def _pause_done(self, t: VThread, token: int) -> None:
        if t.chunk_token != token or t.state is not SLEEPING:
            return
        self._make_ready(t)

    def _start_overhead_slice(self, t: VThread) -> None:
        """Charge pending profiler CPU cost (sample processing, startup)."""
        dur = t.pending_cpu_ns
        t.pending_cpu_ns = 0
        t.profiler_cpu_ns += dur
        t.cpu_ns += dur
        self.total_cpu_ns += dur
        t.chunk_token += 1
        token = t.chunk_token

        def done() -> None:
            if t.chunk_token != token or t.state is not RUNNING:
                return
            self._drive(t)

        self._push(self.now + dur, done)

    # ------------------------------------------------------------------ interference

    def _set_spinning(self, t: VThread, spinning: bool) -> None:
        if t.spinning == spinning:
            return
        t.spinning = spinning
        self.interference += 1 if spinning else -1
        if self.cfg.interference_coeff:
            self._rescale_running()

    def _rescale_running(self) -> None:
        """Re-time in-flight memory-bound chunks after an interference change."""
        for t in list(self.running):
            if not t.activity_memory_bound or t.chunk_nominal <= 0:
                continue
            elapsed = self.now - t.chunk_start
            consumed = min(int(elapsed / t.chunk_rate), t.chunk_nominal)
            self._account_cpu(t, consumed, allow_flush=False)
            remaining_chunk = t.chunk_nominal - consumed
            rate = self._rate(t)
            t.chunk_start = self.now
            t.chunk_nominal = remaining_chunk
            t.chunk_rate = rate
            t.chunk_token += 1
            token = t.chunk_token
            real = int(math.ceil(remaining_chunk * rate))
            self._push(self.now + real, lambda t=t, token=token: self._chunk_done(t, token))

    # ------------------------------------------------------------------ state changes

    def _go_offcpu(self, t: VThread, state: ThreadState, why: Optional[str]) -> None:
        self.running.discard(t)
        t.state = state
        t.blocked_on = why
        if state is SLEEPING:
            self._sleeping += 1

    def _block(self, t: VThread, why: str) -> None:
        self._go_offcpu(t, BLOCKED, why)

    def _make_ready(self, t: VThread) -> None:
        if t.state is SLEEPING:
            self._sleeping -= 1
        t.state = READY
        t.blocked_on = None
        self.ready.append(t)

    def _wake(self, t: VThread, waker: Optional[VThread], result: Any = None) -> None:
        """Wake a BLOCKED thread; apply the profiler's credit/charge rule."""
        if t.state is not BLOCKED:
            raise SimulationError(f"waking non-blocked thread {t}")
        t.woken_by = waker
        t.send_value = result
        if self.hook is not None:
            pause = self.hook.on_unblock(t, waker)
            if pause > 0:
                t.pending_pause_ns += pause
        t.blocked_on = None
        t.state = READY
        self.ready.append(t)

    # ------------------------------------------------------------------ generator advance

    def _advance(self, t: VThread) -> None:
        """Pull the next op from the thread's generator and set it up."""
        try:
            op = t.gen.send(t.send_value)
        except StopIteration as stop:
            t.exit_value = stop.value
            self._begin_exit(t)
            return
        except Exception:
            # surface app bugs with thread context
            raise
        t.send_value = None
        t.current_op = op
        self._setup_op(t, op)

    def _setup_op(self, t: VThread, op: O.Op) -> None:
        """Decide pre-pause, CPU cost, and completion action for ``op``."""
        if not isinstance(op, O.Op):
            raise SimulationError(
                f"thread {t.name} yielded {op!r}, which is not a simulator op"
            )
        hook = self.hook
        if (
            self.cfg.flush_samples_on_block
            and (op.blocking or op.waking)
            and t.sample_buffer
            and (self.sampling_enabled or self._observer_sampling)
        ):
            self._deliver_batch(t, self.sampler.drain(t))
        pre = 0
        if hook is not None:
            if op.blocking:
                pre += hook.before_block(t)
            if op.waking:
                pre += hook.before_wake_op(t)
        if pre > 0:
            t.pending_pause_ns += pre
            # after the pause, run the op body (cost + action)
            t.continuation = lambda: self._setup_op_body(t, op)
            return
        self._setup_op_body(t, op)

    def _setup_op_body(self, t: VThread, op: O.Op) -> None:
        cost, line, action = self._op_plan(t, op)
        if cost > 0:
            t.activity_remaining = cost
            t.activity_line = line if line is not None else RUNTIME_LINE
            t.activity_memory_bound = False
            t.continuation = action
        elif action is not None:
            action()

    # The planner returns (cpu_cost, attribution_line, completion_action).
    def _op_plan(self, t: VThread, op: O.Op):
        cfg = self.cfg
        if isinstance(op, O.Work):
            if op.line in self._line_watchers and self.hook is not None:
                self.hook.on_line_visit(t, op.line)
            t.activity_line = op.line
            t.activity_memory_bound = op.memory_bound
            t.activity_remaining = op.duration
            return 0, None, None  # activity fields already set
        if isinstance(op, O.Lock):
            return cfg.lock_cost_ns, op.line, lambda: self._do_lock(t, op.mutex)
        if isinstance(op, O.TryLock):
            return cfg.lock_cost_ns, op.line, lambda: self._do_trylock(t, op.mutex)
        if isinstance(op, O.Unlock):
            return cfg.lock_cost_ns, op.line, lambda: self._do_unlock(t, op.mutex)
        if isinstance(op, O.CondWait):
            return cfg.sync_cost_ns, op.line, lambda: self._do_cond_wait(t, op.cond, op.mutex)
        if isinstance(op, O.Signal):
            return cfg.sync_cost_ns, op.line, lambda: self._do_signal(t, op.cond)
        if isinstance(op, O.Broadcast):
            return cfg.sync_cost_ns, op.line, lambda: self._do_broadcast(t, op.cond)
        if isinstance(op, O.BarrierWait):
            return cfg.sync_cost_ns, op.line, lambda: self._do_barrier_wait(t, op.barrier)
        if isinstance(op, O.SemWait):
            return cfg.sync_cost_ns, op.line, lambda: self._do_sem_wait(t, op.sem)
        if isinstance(op, O.SemPost):
            return cfg.sync_cost_ns, op.line, lambda: self._do_sem_post(t, op.sem)
        if isinstance(op, O.Join):
            return 0, None, lambda: self._do_join(t, op.thread)
        if isinstance(op, O.Sleep):
            return 0, None, lambda: self._do_sleep(t, op.duration, "sleep")
        if isinstance(op, O.IO):
            return 0, None, lambda: self._do_sleep(t, op.duration, "io")
        if isinstance(op, O.Spawn):
            return cfg.spawn_cost_ns, None, lambda: self._do_spawn(t, op)
        if isinstance(op, O.Progress):
            return 0, None, lambda: self._do_progress(t, op.name)
        if isinstance(op, O.PushFrame):
            return 0, None, lambda: self._do_push_frame(t, op)
        if isinstance(op, O.PopFrame):
            return 0, None, lambda: self._do_pop_frame(t)
        if isinstance(op, O.SetSpinning):
            return 0, None, lambda: self._set_spinning(t, op.spinning)
        raise SimulationError(f"thread {t.name} yielded unknown op {op!r}")

    # ------------------------------------------------------------------ op actions

    def _do_lock(self, t: VThread, m: Mutex) -> None:
        if m.owner is None:
            m.owner = t
            m.acquires += 1
        else:
            m.waiters.append(t)
            m.contended_acquires += 1
            self._block(t, f"mutex:{m.name}")

    def _do_trylock(self, t: VThread, m: Mutex) -> None:
        if m.owner is None:
            m.owner = t
            m.acquires += 1
            t.send_value = True
        else:
            t.send_value = False

    def _do_unlock(self, t: VThread, m: Mutex) -> None:
        if m.owner is not t:
            raise SyncError(
                f"{t.name} unlocking mutex {m.name} owned by "
                f"{getattr(m.owner, 'name', None)}"
            )
        if m.waiters:
            w = m.waiters.popleft()
            m.owner = w
            m.acquires += 1
            self._wake(w, waker=t)
        else:
            m.owner = None

    def _do_cond_wait(self, t: VThread, c: CondVar, m: Mutex) -> None:
        if m.owner is not t:
            raise SyncError(f"{t.name} waiting on {c.name} without holding {m.name}")
        # release the mutex (may wake a lock waiter)
        self._do_unlock(t, m)
        c.waiters.append((t, m))
        self._block(t, f"cond:{c.name}")

    def _transfer_cond_waiter(self, waker: VThread, w: VThread, m: Mutex) -> None:
        """A signalled waiter must re-acquire its mutex before resuming."""
        if m.owner is None:
            m.owner = w
            m.acquires += 1
            self._wake(w, waker=waker)
        else:
            m.waiters.append(w)
            m.contended_acquires += 1
            w.blocked_on = f"mutex:{m.name}"

    def _do_signal(self, t: VThread, c: CondVar) -> None:
        c.signals += 1
        if c.waiters:
            w, m = c.waiters.popleft()
            self._transfer_cond_waiter(t, w, m)

    def _do_broadcast(self, t: VThread, c: CondVar) -> None:
        c.broadcasts += 1
        while c.waiters:
            w, m = c.waiters.popleft()
            self._transfer_cond_waiter(t, w, m)

    def _do_barrier_wait(self, t: VThread, b: Barrier) -> None:
        b.arrived.append(t)
        if len(b.arrived) == b.n:
            b.cycles += 1
            for w in b.arrived[:-1]:
                self._wake(w, waker=t, result=False)
            b.arrived.clear()
            t.send_value = True  # serial thread
        else:
            self._block(t, f"barrier:{b.name}")

    def _do_sem_wait(self, t: VThread, s: Semaphore) -> None:
        if s.value > 0:
            s.value -= 1
        else:
            s.waiters.append(t)
            self._block(t, f"sem:{s.name}")

    def _do_sem_post(self, t: VThread, s: Semaphore) -> None:
        if s.waiters:
            w = s.waiters.popleft()
            self._wake(w, waker=t)
        else:
            s.value += 1

    def _do_join(self, t: VThread, target: VThread) -> None:
        if target.finished:
            t.send_value = target.exit_value
        else:
            target.joiners.append(t)
            self._block(t, f"join:{target.name}")

    def _do_sleep(self, t: VThread, duration: int, kind: str) -> None:
        self._go_offcpu(t, SLEEPING, kind)
        t.chunk_token += 1
        token = t.chunk_token

        def wake() -> None:
            if t.chunk_token != token or t.state is not SLEEPING:
                return
            self._sleeping -= 1
            t.state = BLOCKED  # transit state so _wake() is legal
            t.woken_by = None
            self._wake(t, waker=None)

        self._push(self.now + duration, wake)

    def _do_spawn(self, t: VThread, op: O.Spawn) -> None:
        child = self.spawn(op.body, name=op.name, parent=t)
        t.send_value = child

    def _do_progress(self, t: VThread, name: str) -> None:
        self.progress_counts[name] += 1
        if self.hook is not None:
            self.hook.on_progress(t, name)
        for obs in self.observers:
            obs.on_progress(t, name)

    def _do_push_frame(self, t: VThread, op: O.PushFrame) -> None:
        caller = t.current_func()
        t.stack.append(Frame(op.func, op.callsite))
        for obs in self.observers:
            obs.on_call(t, op.func, caller)
        if self._call_overhead_ns:
            t.pending_cpu_ns += self._call_overhead_ns

    def _do_pop_frame(self, t: VThread) -> None:
        if not t.stack:
            raise SimulationError(f"{t.name}: PopFrame with empty stack")
        t.stack.pop()

    # ------------------------------------------------------------------ exit

    def _begin_exit(self, t: VThread) -> None:
        """Thread generator exhausted; thread exit is a waking op (Table 1)."""
        if self.hook is not None:
            pre = self.hook.before_wake_op(t)
            if pre > 0:
                t.pending_pause_ns += pre
                t.continuation = lambda: self._finish_exit(t)
                return
        self._finish_exit(t)

    def _finish_exit(self, t: VThread) -> None:
        if t.spinning:
            self._set_spinning(t, False)
        if t.sample_buffer:
            self._deliver_batch(t, self.sampler.drain(t))
        self.running.discard(t)
        t.state = FINISHED
        self._alive -= 1
        for w in t.joiners:
            self._wake(w, waker=t, result=t.exit_value)
        t.joiners.clear()
        if self.hook is not None:
            self.hook.on_thread_exit(t)
        for obs in self.observers:
            obs.on_thread_exit(t)
