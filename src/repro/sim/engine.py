"""The discrete-event execution engine.

The engine schedules virtual threads (generator coroutines) onto a fixed
number of virtual cores, advancing an integer nanosecond clock from event to
event.  It is deliberately shaped like the slice of the system Coz lives in:

* threads execute on-CPU *chunks* bounded by a scheduling quantum, so the
  machine is fair under oversubscription (50 memcached clients on 8 cores)
  and the profiler gets control at a bounded latency;
* per-thread CPU-time sampling accrues during chunks and is delivered to the
  installed :class:`~repro.sim.hooks.ProfilerHook` in batches at chunk
  boundaries;
* every blocking and waking edge of every synchronization primitive passes
  through the hook, which may insert pauses before the edge or skip credited
  pauses after it — the exact interposition surface of paper Tables 1-2;
* an optional *interference model*: threads marked as spinning raise a global
  interference level that slows down memory-bound work elsewhere, modelling
  the cache-coherence traffic of busy-wait loops.

Determinism: given the same program and configuration, event ordering is a
pure function of (time, sequence-number), so runs are exactly repeatable.

Hot path
--------

The inner loop is built for throughput without changing any observable
result (see ``tests/sim/test_golden_trace.py`` for the bit-identity
referee):

* **Typed events.** Heap entries are plain tuples
  ``(when, seq, kind, obj, arg)`` where ``kind`` is a small integer code
  dispatched by an ``if`` ladder in :meth:`run`; completion events carry the
  thread and its ``chunk_token`` directly instead of closing over them, so
  the per-event closure allocation of the old ``(when, seq, lambda)`` scheme
  is gone.  Only :meth:`call_at` timers (profiler experiment boundaries —
  rare) still carry a callable.

* **Chunk coalescing.** A quantum exists for two reasons: round-robin
  fairness when threads wait for a core, and bounded latency for sample
  delivery.  When neither applies — the ready queue is empty, the activity
  is not subject to interference rescaling — the engine books one large
  chunk bounded by the next *interesting* point: the end of the activity,
  or the analytically-computed nominal-CPU boundary where the thread's
  sample buffer reaches ``sample_batch`` and the legacy engine would have
  flushed.  Because legacy flushes only ever happen on the quantum grid
  (multiples of ``quantum_ns`` of CPU from the activity start), the
  coalesced chunk ends at exactly the grid point where the legacy flush
  fired, and the sampler's timestamp interpolation reproduces every sample
  time bit-for-bit.  An in-flight mega-chunk is *truncated* back to its
  next grid boundary — via the existing ``chunk_token`` invalidation
  machinery — when fairness suddenly matters (a thread becomes ready on a
  saturated machine) or when a profiler timer hands the running thread a
  pending pause/CPU charge, which the legacy engine would have honoured at
  its next quantum boundary.  Set ``SimConfig.coalesce=False`` to force the
  legacy per-quantum path (the golden-trace tests run both and require
  identical output).

* **Op dispatch.** ``isinstance`` ladders are replaced by a per-op-class
  dispatch table built at engine construction, and op continuations are
  ``(method, op)`` pairs instead of fresh lambdas.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Set, Tuple

from repro.sim import ops as O
from repro.sim.clock import MS, US
from repro.sim.errors import (
    DeadlockError,
    SimulationError,
    StuckLockError,
    SyncError,
    ThreadCrashFault,
)
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.hooks import Observer, ProfilerHook
from repro.sim.sampler import Sampler
from repro.sim.source import RUNTIME_LINE, SourceLine
from repro.sim.sync import Barrier, CondVar, Mutex, Semaphore
from repro.sim.thread import Frame, ThreadState, VThread

BLOCKED = ThreadState.BLOCKED
FINISHED = ThreadState.FINISHED
READY = ThreadState.READY
RUNNING = ThreadState.RUNNING
SLEEPING = ThreadState.SLEEPING

# Typed heap-event kind codes: (when, seq, kind, obj, arg).
_EV_CHUNK = 0      # obj=thread, arg=chunk_token  -> chunk completed
_EV_PAUSE = 1      # obj=thread, arg=chunk_token  -> inserted pause elapsed
_EV_OVERHEAD = 2   # obj=thread, arg=chunk_token  -> profiler CPU slice done
_EV_SLEEP = 3      # obj=thread, arg=chunk_token  -> timed suspension over
_EV_TIMER = 4      # obj=callable                 -> profiler-thread timer

#: op-log sentinel marking a spawn *execution* (see ``_do_spawn``); the
#: generator-send entries use an Op (or None for StopIteration) in this slot
_SPAWN_EXEC = object()


@dataclass
class SimConfig:
    """Machine and runtime-cost model parameters."""

    #: number of virtual cores
    cores: int = 8
    #: maximum on-CPU chunk length (scheduling quantum / hook latency bound)
    quantum_ns: int = MS(2)
    #: per-thread CPU-time sampling period (Coz default: 1 ms)
    sample_period_ns: int = MS(1)
    #: samples per processing batch (Coz default: 10)
    sample_batch: int = 10
    #: slowdown of memory-bound work per spinning thread (cache coherence)
    interference_coeff: float = 0.0
    #: CPU cost of a mutex lock/unlock/trylock operation
    lock_cost_ns: int = 60
    #: CPU cost of condvar/barrier/semaphore operations
    sync_cost_ns: int = 150
    #: CPU cost of spawning a thread
    spawn_cost_ns: int = US(5)
    #: hard stop for runaway simulations (None = unlimited)
    max_virtual_ns: Optional[int] = None
    #: engine RNG seed: drives per-thread sampling phase jitter
    seed: int = 0
    #: process a thread's buffered samples before it blocks (Coz's runtime
    #: interposes on blocking calls and drains available samples there, so
    #: mostly-blocked threads do not sit on stale batches)
    flush_samples_on_block: bool = True
    #: randomize each thread's sampling phase (realistic perf_event behaviour;
    #: also prevents aliasing between aligned sampling clocks and periodic
    #: work, a bias source the paper warns about)
    sample_phase_jitter: bool = True
    #: coalesce on-CPU chunks past the quantum whenever fairness and sample
    #: delivery do not require quantum granularity (bit-identical results;
    #: False forces the legacy per-quantum inner loop)
    coalesce: bool = True
    #: deterministic fault injection (:mod:`repro.sim.faults`); ``None``
    #: disables every injection path at zero hot-loop cost
    faults: Optional[FaultPlan] = None
    #: engine execution backend: ``"pure"``, ``"accel"``, or ``None`` for
    #: the process default (``REPRO_ENGINE_BACKEND`` env, else accel when
    #: the compiled core is built).  Execution-only — results are
    #: bit-identical either way — so it is excluded from ``repr`` and
    #: thereby from every canonical session/checkpoint fingerprint.
    backend: Optional[str] = field(default=None, repr=False)
    #: sample-pipeline flavour: ``True`` columnar, ``False`` scalar, or
    #: ``None`` for the process default (``REPRO_SAMPLE_PIPELINE`` env,
    #: else columnar).  Execution-only, like ``backend``.
    columnar_samples: Optional[bool] = field(default=None, repr=False)


class Engine:
    """Event-driven scheduler for virtual threads."""

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.cfg = config or SimConfig()
        if self.cfg.cores < 1:
            raise ValueError("need at least one core")
        self.now: int = 0
        self.rng = random.Random(self.cfg.seed)
        self._seq: int = 0
        self._heap: List[Tuple] = []
        self._timer_count: int = 0  # pending non-thread (timer) events

        self.threads: List[VThread] = []
        self.ready: Deque[VThread] = deque()
        self.running: Set[VThread] = set()
        self._alive = 0
        self._sleeping = 0

        self.hook: Optional[ProfilerHook] = None
        self.observers: List[Observer] = []
        #: subset of observers that override on_block/on_unblock; block/wake
        #: notifications (and the per-thread block timestamps backing their
        #: ``blocked_ns``) are maintained only when this is non-empty, so
        #: ordinary runs pay nothing for the surface
        self._block_observers: List[Observer] = []
        self._blocked_at: dict = {}
        from repro.sim import backend as _backend

        #: resolved execution backend for this engine ('pure' or 'accel')
        self.backend: str = _backend.resolve_backend(self.cfg.backend)
        self._backend_loop = _backend.event_loop_for(self.backend)
        #: times the compiled core actually ran an event loop for this
        #: engine (0 under the pure backend or an accel fallback) — bench
        #: and tests use this to prove the accel path really engaged
        self.accel_loops = 0
        columnar = self.cfg.columnar_samples
        if columnar is None:
            columnar = _backend.default_columnar()
        self.sampler = Sampler(
            self.cfg.sample_period_ns, self.cfg.sample_batch, columnar=columnar
        )
        self.sampling_enabled = False
        self._observer_sampling = False
        self._sampling_live = False
        self._call_overhead_ns = 0
        self._coalesce = bool(self.cfg.coalesce)
        # fault injection: built once per run from (plan seed, run seed), so
        # the injector's RNG stream is disjoint from the engine's and a
        # faulted schedule reproduces exactly
        self._faults = (
            FaultInjector(self.cfg.faults, self.cfg.seed)
            if self.cfg.faults is not None and self.cfg.faults.any_sim_faults
            else None
        )
        self._stalled: Optional[VThread] = None

        #: number of threads currently marked as spinning
        self.interference = 0
        #: lines registered as breakpoint progress points
        self._line_watchers: Set[SourceLine] = set()
        #: raw visit counts of source-level progress points
        self.progress_counts: Counter = Counter()
        #: total profiler-inserted pause time across all threads
        self.total_delay_ns = 0
        #: total nominal CPU time executed across all threads
        self.total_cpu_ns = 0
        #: heap events processed (perf observability, see `repro bench`)
        self.events_processed = 0

        self.main_thread: Optional[VThread] = None
        self._started = False

        # checkpoint fast-forward plumbing (repro.sim.snapshot): when a
        # Recorder is attached, every generator send is appended to _oplog
        # and the run loop takes a state snapshot each time virtual time is
        # about to cross _snap_next.  All three stay None on ordinary runs,
        # so the hot path pays one local None-check per event.
        self._oplog: Optional[List] = None
        self._snap_next: Optional[int] = None
        self._recorder = None

        # per-op-class setup plans: type -> (cpu_cost_ns, completion_action,
        # blocking, waking); a None action marks Work, which is special-cased
        # in _setup_op_body.  The blocking/waking class flags are folded into
        # the plan so _setup_op resolves everything with one dict lookup.
        cfg = self.cfg
        base_table = {
            O.Work: (0, None),
            O.Lock: (cfg.lock_cost_ns, self._do_lock),
            O.TryLock: (cfg.lock_cost_ns, self._do_trylock),
            O.Unlock: (cfg.lock_cost_ns, self._do_unlock),
            O.CondWait: (cfg.sync_cost_ns, self._do_cond_wait),
            O.Signal: (cfg.sync_cost_ns, self._do_signal),
            O.Broadcast: (cfg.sync_cost_ns, self._do_broadcast),
            O.BarrierWait: (cfg.sync_cost_ns, self._do_barrier_wait),
            O.SemWait: (cfg.sync_cost_ns, self._do_sem_wait),
            O.SemPost: (cfg.sync_cost_ns, self._do_sem_post),
            O.Join: (0, self._do_join),
            O.Sleep: (0, self._do_sleep),
            O.IO: (0, self._do_io),
            O.Spawn: (cfg.spawn_cost_ns, self._do_spawn),
            O.Progress: (0, self._do_progress),
            O.PushFrame: (0, self._do_push_frame),
            O.PopFrame: (0, self._do_pop_frame),
            O.SetSpinning: (0, self._do_set_spinning),
        }
        self._op_table = {
            klass: (cost, action, klass.blocking, klass.waking)
            for klass, (cost, action) in base_table.items()
        }

    # ------------------------------------------------------------------ setup

    def install(self, hook: ProfilerHook) -> None:
        """Install the active profiler hook (at most one)."""
        if self.hook is not None:
            raise SimulationError("a profiler hook is already installed")
        self.hook = hook
        hook.attach(self)

    def add_observer(self, obs: Observer) -> None:
        self.observers.append(obs)
        self._call_overhead_ns = max(
            self._call_overhead_ns, getattr(obs, "call_overhead_ns", 0)
        )
        if getattr(obs, "wants_samples", False):
            self._observer_sampling = True
            self._sampling_live = True
        cls = type(obs)
        if (
            getattr(cls, "on_block", Observer.on_block) is not Observer.on_block
            or getattr(cls, "on_unblock", Observer.on_unblock)
            is not Observer.on_unblock
        ):
            self._block_observers.append(obs)

    def watch_line(self, line: SourceLine) -> None:
        """Register a breakpoint progress point on ``line``."""
        self._line_watchers.add(line)

    def enable_sampling(self) -> None:
        self.sampling_enabled = True
        self._sampling_live = True

    # ------------------------------------------------------------------ timers

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at virtual time ``when`` (profiler-thread timers)."""
        if when < self.now:
            when = self.now
        self._timer_count += 1
        self._push_event(when, _EV_TIMER, fn, 0)

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def _push_event(
        self,
        when: int,
        kind: int,
        obj,
        arg: int,
        lp: Optional[int] = None,
        sub: Optional[int] = None,
    ) -> None:
        """Schedule a heap event.

        Events are ordered by ``(when, lp, sub, seq)``.  With the defaults
        (``lp`` = push time, ``sub`` = seq) this is identical to plain
        ``(when, seq)`` order, since seq grows monotonically with time — the
        exact ordering of the pre-coalescing engine, and the only ordering
        used when ``coalesce=False``.

        Coalesced chunk-completion events supply both fields so that ties at
        the same virtual instant resolve exactly as the legacy per-quantum
        engine resolved them:

        * ``lp`` — the virtual time at which the legacy engine would have
          pushed its final partial chunk for the same span: the last
          quantum-grid boundary strictly before ``when``.  Legacy events
          pushed at different times are ordered by push time, and ``lp``
          reproduces that.
        * ``sub`` — the thread's *chain key*: the seq of the first chunk
          pushed after the thread was last dispatched from the ready queue.
          Legacy chunk events pushed at the same instant keep their relative
          order from boundary to boundary (each completion pushes the next
          chunk within its own processing step), so the order among
          lock-stepped chains is the order in which the chains were born;
          the chain key is exactly that birth order.
        """
        self._seq += 1
        heapq.heappush(
            self._heap,
            (
                when,
                self.now if lp is None else lp,
                self._seq if sub is None else sub,
                self._seq,
                kind,
                obj,
                arg,
            ),
        )

    # ------------------------------------------------------------------ threads

    def spawn(
        self,
        body: Callable,
        name: Optional[str] = None,
        parent: Optional[VThread] = None,
    ) -> VThread:
        """Create a thread and make it runnable."""
        t = VThread(body, name=name, parent=parent, tid=len(self.threads))
        if self.sampler.columnar:
            t.sample_buffer = self.sampler.new_buffer()
        if self.cfg.sample_phase_jitter:
            # desynchronize sampling clocks across threads, like real timers
            t.sample_accum = self.rng.randrange(self.cfg.sample_period_ns)
        self.threads.append(t)
        self._alive += 1
        if self.main_thread is None:
            self.main_thread = t
        if self.hook is not None:
            self.hook.on_thread_created(t, parent)
        for obs in self.observers:
            obs.on_thread_created(t, parent)
        t.state = READY
        self.ready.append(t)
        return t

    # ------------------------------------------------------------------ run loop

    def run(self) -> None:
        """Run until every thread has finished."""
        if self._started:
            raise SimulationError("engine.run() may only be called once")
        self._started = True
        if self.main_thread is None:
            raise SimulationError("no threads spawned before run()")
        if self.hook is not None:
            self.hook.on_run_start(self)
        for obs in self.observers:
            obs.on_run_start(self)
        if self._faults is not None:
            self._arm_faults()
        self._dispatch()
        self._event_loop()
        self._finish_run()

    def resume_run(self) -> None:
        """Continue a snapshot-restored engine to completion.

        The restore path (:mod:`repro.sim.snapshot`) rebuilds the exact
        state the cold run had at a top-of-loop instant, so resuming means
        re-entering the event loop directly: no ``on_run_start``, no fault
        arming (pending fault timers are already in the restored heap), and
        no initial dispatch (the capture point follows the previous
        iteration's dispatch).  ``on_run_end`` fires normally.
        """
        if not self._started:
            raise SimulationError("resume_run() needs a snapshot-restored engine")
        self._event_loop()
        self._finish_run()

    def _finish_run(self) -> None:
        if self.hook is not None:
            self.hook.on_run_end(self)
        for obs in self.observers:
            obs.on_run_end(self)

    def _event_loop(self) -> None:
        """Run the selected backend's event loop (see repro.sim.backend).

        The loop itself lives in :mod:`repro.sim.backend.pure` (reference)
        and ``repro.sim.backend._core`` (optional compiled twin); both
        drive this engine's state through the same methods and produce
        bit-identical results.
        """
        self._backend_loop(self)

    def _raise_overrun(self) -> None:
        raise SimulationError(
            f"virtual time exceeded max_virtual_ns "
            f"({self.now} > {self.cfg.max_virtual_ns})",
            virtual_ns=self.now,
        )

    def _take_checkpoint(self) -> Optional[int]:
        """Hand the attached recorder a capture opportunity.

        Returns the next grid boundary (or None to stop capturing).  A
        capture failure disables further snapshots but never perturbs or
        kills the run — the run simply stays cold.
        """
        recorder = self._recorder
        if recorder is None:
            self._snap_next = None
            return None
        self._snap_next = recorder.take(self)
        return self._snap_next

    def _raise_deadlock(self) -> None:
        raise DeadlockError(virtual_ns=self.now, blocked=self._blocked_diagnostics())

    def _blocked_diagnostics(self):
        """(name, blocked_on, full callchain) for every blocked thread."""
        return [
            (t.name, t.blocked_on, t.callchain())
            for t in self.threads
            if t.state is BLOCKED
        ]

    # ------------------------------------------------------------------ faults

    def _arm_faults(self) -> None:
        """Schedule this run's injected faults as ordinary engine timers."""
        inj = self._faults
        if inj.crash_at_ns is not None:
            self.call_at(inj.crash_at_ns, self._fault_crash)
        if inj.stall_at_ns is not None:
            self.call_at(inj.stall_at_ns, self._fault_stall)

    def _fault_victim(self, prefer_running: bool) -> Optional[VThread]:
        """Deterministic victim choice: first on-CPU thread in spawn order,
        else the first alive unblocked one."""
        if prefer_running:
            for t in self.threads:
                if t.state is RUNNING:
                    return t
        for t in self.threads:
            if t.alive and t.state is not BLOCKED:
                return t
        return None

    def _fault_crash(self) -> None:
        victim = self._fault_victim(prefer_running=True)
        if victim is None:
            return  # nothing left to crash; the run is ending anyway
        raise ThreadCrashFault(victim.name, self.now)

    def _fault_stall(self) -> None:
        """Wedge a running thread on-CPU (a stuck lock-holder, if it holds
        one) and arm the in-sim stall detector."""
        victim = self._fault_victim(prefer_running=True)
        if victim is None:
            return
        victim.activity_remaining += self._faults.plan.stall_ns
        self._stalled = victim
        self.call_after(self._faults.plan.stall_detect_ns, self._fault_stall_detect)

    def _fault_stall_detect(self) -> None:
        victim = self._stalled
        if victim is None or not victim.alive:
            return
        if victim.activity_remaining <= 0 and victim.state is not RUNNING:
            return  # the stall drained (plan with a short stall_ns)
        raise StuckLockError(victim.name, self.now, self._blocked_diagnostics())

    # ------------------------------------------------------------------ dispatch

    def _dispatch(self) -> None:
        """Assign ready threads to free cores and drive them."""
        ready = self.ready
        if not ready:
            return
        running = self.running
        cores = self.cfg.cores
        while ready and len(running) < cores:
            t = ready.popleft()
            if t.state is not READY:  # defensive; should not happen
                continue
            t.state = RUNNING
            t.chain_key = 0  # leaving the ready queue starts a new chunk chain
            running.add(t)
            self._drive(t)
        if ready and self._coalesce:
            # saturated machine with waiters: round-robin fairness is live
            # again, so no running thread may keep a chunk past its next
            # quantum-grid boundary
            self._truncate_for_fairness()

    def _drive(self, t: VThread) -> None:
        """Run ``t`` (RUNNING, on a core) until it needs time or leaves the CPU."""
        while t.state is RUNNING:
            if t.pending_cpu_ns > 0:
                self._start_overhead_slice(t)
                return
            if t.pending_pause_ns > 0:
                self._start_pause(t)
                return
            nominal = t.activity_remaining
            if nominal > 0:
                cfg = self.cfg
                if nominal <= cfg.quantum_ns and (
                    not t.activity_memory_bound
                    or cfg.interference_coeff == 0.0
                ):
                    # inlined sub-quantum chunk start (the dominant case for
                    # fine-grained workloads) — see _begin_chunk for the rest
                    t.chunk_start = now = self.now
                    t.chunk_nominal = nominal
                    t.chunk_rate = 1.0
                    t.chunk_token = tok = t.chunk_token + 1
                    if t.chain_key == 0:
                        t.chain_key = self._seq + 1
                    self._seq = seq = self._seq + 1
                    heapq.heappush(
                        self._heap,
                        (now + nominal, now, seq, seq, _EV_CHUNK, t, tok),
                    )
                    return
                self._begin_chunk(t)
                return
            cont = t.continuation
            if cont is not None:
                t.continuation = None
                cont[0](t, cont[1])
                continue
            self._advance(t)

    # ------------------------------------------------------------------ chunks

    def _rate(self, t: VThread) -> float:
        """Real-ns per nominal-ns for t's current activity."""
        if not t.activity_memory_bound or self.cfg.interference_coeff == 0.0:
            return 1.0
        level = self.interference - (1 if t.spinning else 0)
        if level <= 0:
            return 1.0
        return 1.0 + self.cfg.interference_coeff * level

    def _begin_chunk(self, t: VThread) -> None:
        cfg = self.cfg
        q = cfg.quantum_ns
        nominal = t.activity_remaining
        if (
            self._coalesce
            and nominal > q
            and not self.ready
            and not (t.activity_memory_bound and cfg.interference_coeff)
        ):
            # Coalesced fast path (rate is exactly 1.0 here: the activity is
            # either not memory-bound or interference is disabled).  Bound
            # the chunk by the next interesting point on the quantum grid.
            if self._sampling_live:
                sampler = self.sampler
                # nominal-CPU offset at which the sample buffer reaches the
                # batch size (the legacy engine flushes at the first quantum
                # boundary at/after that instant)
                x0 = (
                    (sampler.batch_size - len(t.sample_buffer))
                    * sampler.period_ns
                    - t.sample_accum
                )
                bound = q if x0 <= q else -(-x0 // q) * q
                if bound < nominal:
                    nominal = bound
            if cfg.max_virtual_ns is not None and nominal > q:
                # keep the runaway guard firing at (nearly) the same instant
                # as the quantum-chunked engine
                cap = ((cfg.max_virtual_ns - self.now) // q + 1) * q
                if cap < q:
                    cap = q
                if cap < nominal:
                    nominal = cap
            ck = t.chain_key
            if ck == 0:
                ck = t.chain_key = self._seq + 1
            t.chunk_start = self.now
            t.chunk_nominal = nominal
            t.chunk_token += 1
            t.chunk_rate = 1.0
            when = self.now + nominal
            rem = (nominal - 1) % q + 1  # legacy final partial-chunk length
            self._seq = seq = self._seq + 1
            heapq.heappush(
                self._heap,
                (when, when - rem, ck, seq, _EV_CHUNK, t, t.chunk_token),
            )
            return
        # legacy quantum path (also taken under fairness/interference)
        if nominal > q:
            nominal = q
        if not t.activity_memory_bound or cfg.interference_coeff == 0.0:
            rate = 1.0
            real = nominal
        else:
            rate = self._rate(t)
            real = nominal if rate == 1.0 else int(math.ceil(nominal * rate))
        t.chunk_start = self.now
        t.chunk_nominal = nominal
        t.chunk_rate = rate
        t.chunk_token += 1
        if t.chain_key == 0:
            # establish the chain's birth order even on the quantum path, so
            # a later coalesced chunk of this chain ties correctly; the
            # quantum push itself keeps the default (push-time, seq) key,
            # which reproduces legacy ordering exactly
            t.chain_key = self._seq + 1
        now = self.now
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._heap, (now + real, now, seq, seq, _EV_CHUNK, t, t.chunk_token)
        )

    def _truncate_chunk(self, t: VThread, q: int) -> None:
        """Pull an in-flight coalesced chunk back to its next grid boundary."""
        nominal = t.chunk_nominal
        elapsed = self.now - t.chunk_start  # == consumed CPU (rate is 1.0)
        bound = (elapsed // q + 1) * q
        if bound >= nominal:
            return  # already ends at/before the next boundary
        t.chunk_nominal = bound
        t.chunk_token += 1
        when = t.chunk_start + bound
        self._push_event(
            when, _EV_CHUNK, t, t.chunk_token, lp=when - q, sub=t.chain_key
        )

    def _mega_chunks(self, pending_only: bool) -> List[VThread]:
        q = self.cfg.quantum_ns
        cands = [
            t for t in self.running
            if t.chunk_nominal > q and t.chunk_rate == 1.0
            and (not pending_only or t.pending_pause_ns or t.pending_cpu_ns)
        ]
        if len(cands) > 1:
            cands.sort(key=lambda th: th.tid)
        return cands

    def _truncate_for_fairness(self) -> None:
        q = self.cfg.quantum_ns
        for t in self._mega_chunks(pending_only=False):
            self._truncate_chunk(t, q)

    def _truncate_pending(self) -> None:
        q = self.cfg.quantum_ns
        for t in self._mega_chunks(pending_only=True):
            self._truncate_chunk(t, q)

    def _account_cpu(self, t: VThread, nominal: int, allow_flush: bool) -> None:
        """Book ``nominal`` executed CPU ns: accounting, observers, sampling."""
        if nominal <= 0:
            return
        t.activity_remaining -= nominal
        t.cpu_ns += nominal
        self.total_cpu_ns += nominal
        if self.observers:
            func = t.current_func()
            for obs in self.observers:
                obs.on_work(t, t.activity_line, func, nominal)
        if self._sampling_live:
            sampler = self.sampler
            accum = t.sample_accum + nominal
            if accum < sampler.period_ns and len(t.sample_buffer) < sampler.batch_size:
                # no sample fires in this span and the buffer cannot flush:
                # skip the sampler call entirely (the common sub-period case)
                t.sample_accum = accum
                return
            batch = sampler.account(
                t, nominal, self.now, allow_flush, rate=t.chunk_rate
            )
            if batch is not None:
                self._deliver_batch(t, batch)

    def _deliver_batch(self, t: VThread, batch) -> None:
        """Deliver a flushed batch (Sample list, or ColumnarBuf) downstream.

        Columnar batches reach ``accepts_columnar`` consumers as segments;
        everyone else gets the materialized Sample list (computed at most
        once per batch) — byte-identical to the scalar pipeline's.
        """
        if self._faults is not None:
            # lossy ring buffer: the batch the profiler sees may have lost
            # or duplicated a sample (engine accounting is untouched)
            if type(batch) is not list:
                batch = batch.materialize()
            batch = self._faults.perturb_batch(batch)
            if not batch:
                return
        materialized = batch if type(batch) is list else None
        for obs in self.observers:
            if getattr(obs, "wants_samples", False):
                if getattr(obs, "accepts_columnar", False):
                    obs.on_sample_batch(batch)
                    continue
                if materialized is None:
                    materialized = batch.materialize()
                for s in materialized:
                    obs.on_sample(s)
        hook = self.hook
        if hook is not None and self.sampling_enabled:
            if type(batch) is not list and getattr(hook, "accepts_columnar", False):
                action = hook.on_samples(t, batch)
            else:
                if materialized is None:
                    materialized = batch.materialize()
                action = hook.on_samples(t, materialized)
            if action.pause_ns > 0:
                t.pending_pause_ns += action.pause_ns
            if action.cpu_ns > 0:
                t.pending_cpu_ns += action.cpu_ns

    def _start_pause(self, t: VThread) -> None:
        """Take the thread off-CPU for its pending profiler-inserted pause."""
        pause = t.pending_pause_ns
        t.pending_pause_ns = 0
        if self._faults is not None:
            # extreme nanosleep overshoot: the timeline pause stretches but
            # the delay engine's books do not — the drift the audit catches
            pause = self._faults.maybe_spike(pause, self.now)
        t.pause_ns += pause
        self.total_delay_ns += pause
        self._go_offcpu(t, SLEEPING, "inserted-pause")
        t.chunk_token += 1
        now = self.now
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._heap, (now + pause, now, seq, seq, _EV_PAUSE, t, t.chunk_token)
        )

    def _start_overhead_slice(self, t: VThread) -> None:
        """Charge pending profiler CPU cost (sample processing, startup)."""
        dur = t.pending_cpu_ns
        t.pending_cpu_ns = 0
        t.profiler_cpu_ns += dur
        t.cpu_ns += dur
        self.total_cpu_ns += dur
        t.chunk_token += 1
        now = self.now
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._heap, (now + dur, now, seq, seq, _EV_OVERHEAD, t, t.chunk_token)
        )

    # ------------------------------------------------------------------ interference

    def _set_spinning(self, t: VThread, spinning: bool) -> None:
        if t.spinning == spinning:
            return
        t.spinning = spinning
        self.interference += 1 if spinning else -1
        if self.cfg.interference_coeff:
            self._rescale_running()

    def _rescale_running(self) -> None:
        """Re-time in-flight memory-bound chunks after an interference change.

        Iterates in tid order: the running set's natural iteration order
        depends on hash-table layout, and rescale accounting emits observer
        events and heap pushes, so a deterministic order is required for
        engines to behave identically regardless of process history.
        """
        for t in sorted(self.running, key=lambda th: th.tid):
            if not t.activity_memory_bound or t.chunk_nominal <= 0:
                continue
            elapsed = self.now - t.chunk_start
            consumed = min(int(elapsed / t.chunk_rate), t.chunk_nominal)
            self._account_cpu(t, consumed, allow_flush=False)
            remaining_chunk = t.chunk_nominal - consumed
            rate = self._rate(t)
            t.chunk_start = self.now
            t.chunk_nominal = remaining_chunk
            t.chunk_rate = rate
            t.chunk_token += 1
            real = int(math.ceil(remaining_chunk * rate))
            # a rescale push happens inside a foreign processing step, which
            # re-establishes event order from this instant — restart the chain
            t.chain_key = self._seq + 1
            self._push_event(
                self.now + real, _EV_CHUNK, t, t.chunk_token, sub=t.chain_key
            )

    # ------------------------------------------------------------------ state changes

    def _go_offcpu(self, t: VThread, state: ThreadState, why: Optional[str]) -> None:
        self.running.discard(t)
        t.state = state
        t.blocked_on = why
        if state is SLEEPING:
            self._sleeping += 1

    def _block(self, t: VThread, why: str, obj: object = None) -> None:
        self._go_offcpu(t, BLOCKED, why)
        if self._block_observers:
            self._blocked_at[t] = self.now
            for obs in self._block_observers:
                obs.on_block(t, obj)

    def _make_ready(self, t: VThread) -> None:
        if t.state is SLEEPING:
            self._sleeping -= 1
        t.state = READY
        t.blocked_on = None
        self.ready.append(t)

    def _wake(self, t: VThread, waker: Optional[VThread], result: Any = None) -> None:
        """Wake a BLOCKED thread; apply the profiler's credit/charge rule."""
        if t.state is not BLOCKED:
            raise SimulationError(f"waking non-blocked thread {t}")
        t.woken_by = waker
        t.send_value = result
        if self.hook is not None:
            pause = self.hook.on_unblock(t, waker)
            if pause > 0:
                t.pending_pause_ns += pause
        t.blocked_on = None
        t.state = READY
        self.ready.append(t)
        if self._block_observers:
            # a timed wakeup (sleep/IO) transits through BLOCKED without an
            # on_block edge, so only threads with a recorded block instant
            # produce an unblock notification
            since = self._blocked_at.pop(t, None)
            if since is not None:
                blocked_ns = self.now - since
                for obs in self._block_observers:
                    obs.on_unblock(t, waker, blocked_ns)

    # ------------------------------------------------------------------ generator advance

    def _advance(self, t: VThread) -> None:
        """Pull ops from the thread's generator and set them up.

        Loops over *instant* ops (zero-cost, neither blocking nor waking:
        frame markers, progress visits, spin toggles) without bouncing
        through ``_drive``, and returns to the scheduler as soon as an op
        needs virtual time, a sync edge, or the thread left the CPU.
        """
        table = self._op_table
        oplog = self._oplog
        while True:
            sv = t.send_value
            try:
                op = t.gen.send(sv)
            except StopIteration as stop:
                if oplog is not None:
                    oplog.append((t.tid, sv, None))
                t.exit_value = stop.value
                self._begin_exit(t)
                return
            except Exception:
                # surface app bugs with thread context
                raise
            if oplog is not None:
                oplog.append((t.tid, sv, op))
            t.send_value = None
            t.current_op = op
            cls = op.__class__
            if cls is O.Work:
                # fast path for the by-far most common op: Work is neither
                # blocking nor waking, so the flush / pre-pause logic in
                # _setup_op can never apply
                line = op.line
                if line in self._line_watchers and self.hook is not None:
                    self.hook.on_line_visit(t, line)
                if line is not t.activity_line:
                    t.activity_line = line
                    t.chain_cache = None
                t.activity_memory_bound = op.memory_bound
                t.activity_remaining = op.duration
                return
            plan = table.get(cls)
            if plan is None:
                plan = self._resolve_op_plan(t, op)
            cost, action, blocking, waking = plan
            if blocking or waking or cost > 0 or action is None:
                self._setup_op(t, op, plan)
                return
            # instant op: run its action and keep pulling unless it changed
            # the thread's schedule (a hook or rescale may add pendings)
            action(t, op)
            if (
                t.state is not RUNNING
                or t.pending_pause_ns > 0
                or t.pending_cpu_ns > 0
                or t.activity_remaining > 0
                or t.continuation is not None
            ):
                return

    def _setup_op(self, t: VThread, op: O.Op, plan=None) -> None:
        """Decide pre-pause, CPU cost, and completion action for ``op``."""
        if plan is None:
            plan = self._op_table.get(op.__class__)
            if plan is None:
                plan = self._resolve_op_plan(t, op)
        cost, action, blocking, waking = plan
        if blocking or waking:
            if (
                self.cfg.flush_samples_on_block
                and t.sample_buffer
                and self._sampling_live
            ):
                self._deliver_batch(t, self.sampler.drain(t))
            hook = self.hook
            if hook is not None:
                pre = 0
                if blocking:
                    pre += hook.before_block(t)
                if waking:
                    pre += hook.before_wake_op(t)
                if pre > 0:
                    t.pending_pause_ns += pre
                    # after the pause, run the op body (cost + action)
                    t.continuation = (self._setup_op_body, op)
                    return
        # inlined _setup_op_body (hot path: one call per op) — keep in sync
        if action is None:  # Work: activity fields set directly, no cost op
            line = op.line
            if line in self._line_watchers and self.hook is not None:
                self.hook.on_line_visit(t, line)
            if line is not t.activity_line:
                t.activity_line = line
                t.chain_cache = None
            t.activity_memory_bound = op.memory_bound
            t.activity_remaining = op.duration
            return
        if cost > 0:
            line = getattr(op, "line", None)
            if line is None:
                line = RUNTIME_LINE
            t.activity_remaining = cost
            if line is not t.activity_line:
                t.activity_line = line
                t.chain_cache = None
            t.activity_memory_bound = False
            t.continuation = (action, op)
        else:
            action(t, op)

    def _setup_op_body(self, t: VThread, op: O.Op) -> None:
        plan = self._op_table.get(op.__class__)
        if plan is None:
            plan = self._resolve_op_plan(t, op)
        cost, action, _blocking, _waking = plan
        if action is None:  # Work: activity fields set directly, no cost op
            line = op.line
            if line in self._line_watchers and self.hook is not None:
                self.hook.on_line_visit(t, line)
            if line is not t.activity_line:
                t.activity_line = line
                t.chain_cache = None
            t.activity_memory_bound = op.memory_bound
            t.activity_remaining = op.duration
            return
        if cost > 0:
            line = getattr(op, "line", None)
            if line is None:
                line = RUNTIME_LINE
            t.activity_remaining = cost
            if line is not t.activity_line:
                t.activity_line = line
                t.chain_cache = None
            t.activity_memory_bound = False
            t.continuation = (action, op)
        else:
            action(t, op)

    def _resolve_op_plan(self, t: VThread, op: O.Op):
        """Slow path: resolve op subclasses through the MRO, then memoize."""
        if not isinstance(op, O.Op):
            raise SimulationError(
                f"thread {t.name} yielded {op!r}, which is not a simulator op"
            )
        for klass in op.__class__.__mro__:
            plan = self._op_table.get(klass)
            if plan is not None:
                self._op_table[op.__class__] = plan
                return plan
        raise SimulationError(f"thread {t.name} yielded unknown op {op!r}")

    # ------------------------------------------------------------------ op actions

    def _do_lock(self, t: VThread, op) -> None:
        m: Mutex = op.mutex
        if m.owner is None:
            m.owner = t
            m.acquires += 1
        else:
            m.waiters.append(t)
            m.contended_acquires += 1
            self._block(t, f"mutex:{m.name}", m)

    def _do_trylock(self, t: VThread, op) -> None:
        m: Mutex = op.mutex
        if m.owner is None:
            m.owner = t
            m.acquires += 1
            t.send_value = True
        else:
            t.send_value = False

    def _do_unlock(self, t: VThread, op) -> None:
        self._unlock(t, op.mutex)

    def _unlock(self, t: VThread, m: Mutex) -> None:
        if m.owner is not t:
            raise SyncError(
                f"{t.name} unlocking mutex {m.name} owned by "
                f"{getattr(m.owner, 'name', None)}"
            )
        if m.waiters:
            w = m.waiters.popleft()
            m.owner = w
            m.acquires += 1
            self._wake(w, waker=t)
        else:
            m.owner = None

    def _do_cond_wait(self, t: VThread, op) -> None:
        c: CondVar = op.cond
        m: Mutex = op.mutex
        if m.owner is not t:
            raise SyncError(f"{t.name} waiting on {c.name} without holding {m.name}")
        # release the mutex (may wake a lock waiter)
        self._unlock(t, m)
        c.waiters.append((t, m))
        self._block(t, f"cond:{c.name}", c)

    def _transfer_cond_waiter(self, waker: VThread, w: VThread, m: Mutex) -> None:
        """A signalled waiter must re-acquire its mutex before resuming."""
        if m.owner is None:
            m.owner = w
            m.acquires += 1
            self._wake(w, waker=waker)
        else:
            m.waiters.append(w)
            m.contended_acquires += 1
            w.blocked_on = f"mutex:{m.name}"

    def _do_signal(self, t: VThread, op) -> None:
        c: CondVar = op.cond
        c.signals += 1
        if c.waiters:
            w, m = c.waiters.popleft()
            self._transfer_cond_waiter(t, w, m)

    def _do_broadcast(self, t: VThread, op) -> None:
        c: CondVar = op.cond
        c.broadcasts += 1
        while c.waiters:
            w, m = c.waiters.popleft()
            self._transfer_cond_waiter(t, w, m)

    def _do_barrier_wait(self, t: VThread, op) -> None:
        b: Barrier = op.barrier
        b.arrived.append(t)
        if len(b.arrived) == b.n:
            b.cycles += 1
            for w in b.arrived[:-1]:
                self._wake(w, waker=t, result=False)
            b.arrived.clear()
            t.send_value = True  # serial thread
        else:
            self._block(t, f"barrier:{b.name}", b)

    def _do_sem_wait(self, t: VThread, op) -> None:
        s: Semaphore = op.sem
        if s.value > 0:
            s.value -= 1
        else:
            s.waiters.append(t)
            self._block(t, f"sem:{s.name}", s)

    def _do_sem_post(self, t: VThread, op) -> None:
        s: Semaphore = op.sem
        if s.waiters:
            w = s.waiters.popleft()
            self._wake(w, waker=t)
        else:
            s.value += 1

    def _do_join(self, t: VThread, op) -> None:
        target: VThread = op.thread
        if target.finished:
            t.send_value = target.exit_value
        else:
            target.joiners.append(t)
            self._block(t, f"join:{target.name}", target)

    def _do_sleep(self, t: VThread, op) -> None:
        self._suspend_timed(t, op.duration, "sleep")

    def _do_io(self, t: VThread, op) -> None:
        self._suspend_timed(t, op.duration, "io")

    def _suspend_timed(self, t: VThread, duration: int, kind: str) -> None:
        self._go_offcpu(t, SLEEPING, kind)
        t.chunk_token += 1
        self._push_event(self.now + duration, _EV_SLEEP, t, t.chunk_token)

    def _do_spawn(self, t: VThread, op) -> None:
        child = self.spawn(op.body, name=op.name, parent=t)
        if self._oplog is not None:
            # spawn execution happens a spawn-cost continuation *after* the
            # parent yielded Spawn, so child-tid assignment order is a
            # scheduling fact, not derivable from yield order; record it
            # explicitly so replay creates children at the same instants
            self._oplog.append((child.tid, t.tid, _SPAWN_EXEC))
        t.send_value = child

    def _do_progress(self, t: VThread, op) -> None:
        name = op.name
        self.progress_counts[name] += 1
        if self.hook is not None:
            self.hook.on_progress(t, name)
        for obs in self.observers:
            obs.on_progress(t, name)

    def _do_push_frame(self, t: VThread, op) -> None:
        caller = t.current_func()
        t.stack.append(Frame(op.func, op.callsite))
        t.chain_cache = None
        for obs in self.observers:
            obs.on_call(t, op.func, caller)
        if self._call_overhead_ns:
            t.pending_cpu_ns += self._call_overhead_ns

    def _do_pop_frame(self, t: VThread, op) -> None:
        if not t.stack:
            raise SimulationError(f"{t.name}: PopFrame with empty stack")
        t.stack.pop()
        t.chain_cache = None

    def _do_set_spinning(self, t: VThread, op) -> None:
        self._set_spinning(t, op.spinning)

    # ------------------------------------------------------------------ exit

    def _begin_exit(self, t: VThread) -> None:
        """Thread generator exhausted; thread exit is a waking op (Table 1)."""
        if self.hook is not None:
            pre = self.hook.before_wake_op(t)
            if pre > 0:
                t.pending_pause_ns += pre
                t.continuation = (self._finish_exit, None)
                return
        self._finish_exit(t)

    def _finish_exit(self, t: VThread, _op=None) -> None:
        if t.spinning:
            self._set_spinning(t, False)
        if t.sample_buffer:
            self._deliver_batch(t, self.sampler.drain(t))
        self.running.discard(t)
        t.state = FINISHED
        self._alive -= 1
        for w in t.joiners:
            self._wake(w, waker=t, result=t.exit_value)
        t.joiners.clear()
        if self.hook is not None:
            self.hook.on_thread_exit(t)
        for obs in self.observers:
            obs.on_thread_exit(t)
