"""The adaptive planner: spend measurement where it changes the answer.

Strategy (successive halving with variance-aware early stopping):

1. **Explore** — a short prefix of free runs (identical to the static
   schedule, so checkpoint fast-forward snapshots recorded by static
   sessions warm these runs too) discovers candidate lines and rough
   speedup curves.
2. **Halve** — between batches, build each candidate's line profile with
   the same bootstrap machinery the final report uses
   (:func:`~repro.core.profile_data.build_line_profile`, which wraps
   ``bootstrap_pair_se``).  Lines whose every measured point has standard
   error at or below ``se_target`` are *converged* and stop consuming
   budget; the bottom half of the remaining candidates (ranked by
   regression slope, with whole-run sample share as the prior for lines
   too thin to regress) is *eliminated* each round.
3. **Direct** — each surviving candidate gets one directed run per round:
   the profiler is pinned to the line (``fixed_line``) and cycles through
   the probe speedups with the widest confidence intervals, 0% baselines
   interleaved so the normalization denominator keeps pace.  When a curve
   turns downward past its peak (a *knee* — the contention signature of
   §2), the probes bracket the knee to pin down where the turn happens.
4. Stop when every candidate is converged or eliminated, or the run
   budget is exhausted (remaining candidates are marked ``budget``).

Every decision is a deterministic function of the observed experiment
results (bootstrap seeds are fixed), so a resumed session replays the
identical plan sequence from the journal's data alone.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.profile_data import LineProfile, build_line_profile
from repro.plan.base import (
    REASON_BUDGET,
    REASON_CONVERGED,
    REASON_ELIMINATED,
    ExperimentPlan,
    Planner,
    PlannerState,
    PlanReport,
)
from repro.sim.source import SourceLine


@dataclass
class _Arm:
    """One candidate line's bandit-arm state."""

    line: SourceLine
    status: str = "active"  # active | converged | eliminated | budget
    score: float = 0.0
    directed_runs: int = 0


class AdaptivePlanner(Planner):
    """Successive-halving planner over candidate lines."""

    name = "adaptive"

    def __init__(
        self,
        budget: int,
        explore_runs: Optional[int] = None,
        se_target: float = 0.01,
        probes: int = 2,
        min_keep: int = 2,
        directed_passes: int = 3,
    ) -> None:
        if budget < 1:
            raise ValueError("adaptive planner needs a budget of at least one run")
        self.budget = budget
        #: free exploration prefix: short — one run up to budget 5, ~30% after
        self.explore = min(
            budget,
            explore_runs if explore_runs is not None else max(1, budget // 3),
        )
        self.se_target = se_target
        self.probes = max(1, probes)
        self.min_keep = max(1, min_keep)
        #: directed runs stop after this many cycles through their probe
        #: schedule — the experiment-granularity budget (a directed run
        #: otherwise packs ~1.5x the experiments of a free run)
        self.directed_passes = max(1, directed_passes)
        #: per-run experiment cap for explore runs; candidate ranking rides
        #: on sample shares (sampling continues past the cap), so explore
        #: experiments only need to seed baselines and a few curve points
        self.explore_cap = 2 * probes + 2

        self.arms: Dict[SourceLine, _Arm] = {}
        self.rounds = 0
        self.decisions: List[str] = []
        self._next_index = 0
        self._spend: Counter = Counter()
        self._done = False

    # ------------------------------------------------------------------ protocol

    def propose(self, state: PlannerState) -> List[ExperimentPlan]:
        if self._done:
            return []
        if self._next_index == 0:
            n = self.explore
            self._next_index = n
            self.rounds += 1
            self.decisions.append(f"round {self.rounds}: explore {n} free run(s)")
            if n >= self.budget:
                self._close(REASON_BUDGET)
            # capped: exploration only needs to rank candidates, and line
            # discovery rides on sampling (which continues past the cap)
            return [
                ExperimentPlan(
                    index=i, max_experiments=self.explore_cap, note="explore"
                )
                for i in range(n)
            ]

        targets = self._analyze(state)
        if not targets:
            self._done = True
            return []
        plans: List[ExperimentPlan] = []
        for line, speedups, note in targets:
            if self._next_index >= self.budget:
                break
            plans.append(
                ExperimentPlan(
                    index=self._next_index,
                    line=line,
                    speedups=speedups,
                    max_experiments=self.directed_passes * len(speedups),
                    note=note,
                )
            )
            self.arms[line].directed_runs += 1
            self._next_index += 1
        if not plans:
            self._close(REASON_BUDGET)
            return []
        self.rounds += 1
        self.decisions.append(
            f"round {self.rounds}: direct " + "; ".join(p.note for p in plans)
        )
        if self._next_index >= self.budget:
            self._close(REASON_BUDGET)
        return plans

    def observe(self, results: Sequence[Any]) -> None:
        for r in results:
            self._spend[r.line] += 1

    def done(self) -> bool:
        return self._done

    def report(self) -> PlanReport:
        reasons = {
            line: (REASON_BUDGET if arm.status == "active" else arm.status)
            for line, arm in self.arms.items()
        }
        return PlanReport(
            planner=self.name,
            budget=self.budget,
            rounds=self.rounds,
            runs_planned=self._next_index,
            line_spend=dict(self._spend),
            line_reason=reasons,
            decisions=list(self.decisions),
        )

    # ------------------------------------------------------------------ analysis

    def _close(self, reason: str) -> None:
        self._done = True
        for arm in self.arms.values():
            if arm.status == "active":
                arm.status = reason

    def _analyze(
        self, state: PlannerState
    ) -> List[Tuple[SourceLine, Tuple[int, ...], str]]:
        """Converge / halve / pick probe schedules for the next round."""
        data = state.data
        grid = sorted({s for s in state.coz_config.speedup_values if s != 0})
        min_points = max(state.min_speedup_amounts, 2)
        total_samples = sum(
            sum(r.line_samples.values()) for r in data.runs
        ) or 1

        # candidates come from experiments *and* raw samples: capped explore
        # runs stop experimenting early, but sampling keeps attributing the
        # whole run, so sampled-only lines are still discoverable
        scope = state.coz_config.scope
        sampled = {
            line
            for r in data.runs
            for line in r.line_samples
            if scope.contains(line)
        }
        for line in sorted(sampled.union(data.lines())):
            if line not in self.arms:
                self.arms[line] = _Arm(line=line)

        profiles: Dict[SourceLine, Optional[LineProfile]] = {}
        for line, arm in self.arms.items():
            if arm.status != "active":
                continue
            lp = build_line_profile(
                data,
                line,
                state.primary_progress,
                phase_correction=state.coz_config.phase_correction,
            )
            profiles[line] = lp
            replicated = (
                sum(
                    1
                    for p in lp.points
                    if p.speedup_pct > 0 and p.n_experiments >= 2
                )
                if lp is not None
                else 0
            )
            if lp is not None and replicated >= 2:
                arm.score = lp.slope
                if self._is_converged(lp, min_points):
                    arm.status = REASON_CONVERGED
                    self.decisions.append(
                        f"converged {line} (max SE <= {self.se_target:g} "
                        f"over {len(lp.points)} speedups)"
                    )
            else:
                # too thin to regress (no profile, or nothing but singleton
                # points whose slope is noise): whole-run sample share as
                # the prior — a hot serial line's slope roughly tracks its
                # share, and optimism toward hot-but-unmeasured lines is
                # what keeps halving from discarding them on noise
                arm.score = data.total_line_samples(line) / total_samples

        active = sorted(
            (a for a in self.arms.values() if a.status == "active"),
            key=lambda a: (-a.score, a.line),
        )
        if not grid:
            # nothing but the 0% baseline is probeable; directed runs
            # cannot tighten anything
            self._close(REASON_BUDGET)
            return []
        if len(active) > self.min_keep:
            keep = max(self.min_keep, len(active) // 3)
            # a downward-sloping line is a finding in its own right (§2's
            # contention signature): contended arms displace the weakest
            # keepers rather than growing the round beyond ``keep`` runs
            contended = [
                a
                for a in active
                if (lp := profiles.get(a.line)) is not None and lp.is_contended()
            ]
            survivors = list(contended[:keep])
            for arm in active:
                if len(survivors) >= keep:
                    break
                if arm not in survivors:
                    survivors.append(arm)
            dropped = [a for a in active if a not in survivors]
            for arm in dropped:
                arm.status = REASON_ELIMINATED
            if dropped:
                self.decisions.append(
                    "halved: eliminated " + ", ".join(str(a.line) for a in dropped)
                )
            survivors.sort(key=lambda a: (-a.score, a.line))
            active = survivors

        # scale the probe count to observed run density: a schedule with
        # more targets than a run can cycle through replicates nothing
        # (4 experiments over (0,p1,0,p2) leaves every point a singleton,
        # where (0,p1) twice replicates p1).  Deterministic: derived from
        # observed experiment counts only.
        per_run = len(data.experiments) / max(1, state.runs_completed)
        probes = min(self.probes, max(1, int(per_run) // 4))

        # neediest first: when the remaining budget cannot cover every
        # surviving arm this round, spend it where the intervals are widest
        def need(arm: _Arm) -> float:
            lp = profiles.get(arm.line)
            if lp is None:
                return float("inf")
            widths = [
                (p.se if p.n_experiments >= 2 else float("inf"))
                for p in lp.points
                if p.speedup_pct > 0
            ]
            return max(widths, default=float("inf"))

        active.sort(key=lambda a: (-need(a), -a.score, a.line))
        targets = []
        for arm in active:
            speedups, note = self._probe_schedule(
                arm.line, profiles.get(arm.line), grid, probes
            )
            targets.append((arm.line, speedups, f"{note} {arm.line}"))
        return targets

    def _is_converged(self, lp: LineProfile, min_points: int) -> bool:
        if len(lp.points) < min_points:
            return False
        nonzero = [p for p in lp.points if p.speedup_pct > 0]
        if not nonzero:
            return False
        if any(p.se > self.se_target for p in nonzero):
            return False
        # singleton groups bootstrap-resample to themselves and understate
        # their variance, so a tight SE alone isn't proof: demand at least
        # ``min_points`` genuinely replicated speedups before trusting the
        # curve (stray singletons at other speedups are fine — their small
        # SEs no longer gate convergence)
        replicated = [p for p in nonzero if p.n_experiments >= 2]
        return len(replicated) >= min_points

    def _probe_schedule(
        self,
        line: SourceLine,
        lp: Optional[LineProfile],
        grid: List[int],
        probes: int,
    ) -> Tuple[Tuple[int, ...], str]:
        """Probe speedups for one directed run, 0% baselines interleaved."""
        note = "halve"
        if lp is None:
            targets = _spread(grid, probes)
        else:
            nonzero = [p for p in lp.points if p.speedup_pct > 0]
            # two tiers: replicated points whose CI is still wide (real
            # variance to shrink, widest first), then singletons in fixed
            # pct order — a *stable* order across rounds, so successive
            # directed runs replicate the same points instead of
            # scattering one experiment onto each
            wide = sorted(
                (
                    p
                    for p in nonzero
                    if p.n_experiments >= 2 and p.se > self.se_target
                ),
                key=lambda p: (-p.se, p.speedup_pct),
            )
            singles = sorted(
                (p for p in nonzero if p.n_experiments < 2),
                key=lambda p: p.speedup_pct,
            )
            targets = [p.speedup_pct for p in (wide + singles)[: probes]]
            knee = _find_knee(lp)
            if knee is not None:
                # bracket the knee, but never dilute the schedule: a probe
                # point's replication rate is cycles-per-run, which drops
                # as the target list grows
                note = "knee"
                measured = {p.speedup_pct for p in lp.points}
                for cand in _neighbors(grid, knee):
                    if len(targets) > probes:
                        break
                    if cand not in targets and cand not in measured:
                        targets.append(cand)
            if not targets:
                # every measured point is tight but the line needs more
                # distinct speedups to clear the profile admission filter
                measured = {p.speedup_pct for p in nonzero}
                targets = _spread([g for g in grid if g not in measured], probes)
            if not targets:
                targets = _spread(grid, probes)
        schedule: List[int] = []
        for pct in sorted(set(targets)):
            schedule.extend((0, pct))
        return tuple(schedule), note


def _spread(grid: List[int], n: int) -> List[int]:
    """Up to ``n`` values spanning the grid (quartile-ish positions)."""
    if not grid:
        return []
    if len(grid) <= n:
        return list(grid)
    picks = []
    for k in range(1, n + 1):
        idx = round(k * (len(grid) - 1) / (n + 1))
        picks.append(grid[idx])
    return sorted(set(picks))


def _find_knee(lp: LineProfile) -> Optional[int]:
    """Speedup pct where the curve peaks before turning down, if it does."""
    pts = sorted(lp.points, key=lambda p: p.speedup_pct)
    if len(pts) < 3:
        return None
    peak = max(pts, key=lambda p: p.program_speedup)
    after = [p for p in pts if p.speedup_pct > peak.speedup_pct]
    for p in after:
        drop = peak.program_speedup - p.program_speedup
        if drop > max(peak.se, p.se):
            return peak.speedup_pct
    return None


def _neighbors(grid: List[int], pct: int) -> List[int]:
    """Grid values bracketing ``pct`` (nearest below and above)."""
    below = [g for g in grid if g < pct]
    above = [g for g in grid if g > pct]
    out = []
    if below:
        out.append(below[-1])
    if above:
        out.append(above[0])
    return out
