"""Pluggable experiment planning for profiling sessions.

See :mod:`repro.plan.base` for the protocol.  The session runner
(:func:`repro.harness.runner.run_profile_session`) resolves a
:class:`PlanConfig` into a concrete planner via :func:`make_planner`;
the CLI exposes the same choice as ``--planner static|adaptive`` and
``--budget N``.
"""

from repro.plan.adaptive import AdaptivePlanner
from repro.plan.base import (
    ExperimentPlan,
    PlanConfig,
    Planner,
    PlannerState,
    PlanReport,
)
from repro.plan.schedule import RunScheduler
from repro.plan.static import StaticPlanner

#: the planner names PlanConfig accepts
PLANNERS = ("static", "adaptive")

__all__ = [
    "PLANNERS",
    "AdaptivePlanner",
    "ExperimentPlan",
    "PlanConfig",
    "Planner",
    "PlannerState",
    "PlanReport",
    "RunScheduler",
    "StaticPlanner",
    "make_planner",
]


def make_planner(plan: "PlanConfig", default_runs: int) -> "Planner":
    """Resolve a :class:`PlanConfig` into a concrete planner.

    ``plan.budget`` of ``None`` means "the request's ``runs``" — so the
    default static session schedules exactly the historical run count.
    """
    plan = plan or PlanConfig()
    plan.validate()
    budget = plan.budget if plan.budget is not None else default_runs
    if plan.planner == "static":
        return StaticPlanner(runs=budget)
    if plan.planner == "adaptive":
        return AdaptivePlanner(
            budget=budget,
            explore_runs=plan.explore_runs,
            se_target=plan.se_target,
        )
    raise ValueError(f"unknown planner {plan.planner!r} (choose from {PLANNERS})")
