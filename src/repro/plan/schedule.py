"""In-run selection policy: which line, which speedup, for each experiment.

This is the selection logic that used to live inline in
:class:`~repro.core.profiler.CausalProfiler` (``_choose_speedup`` and the
WAIT-state line pick).  Extracting it makes the profiler a plan *executor*:
a :class:`~repro.plan.base.Planner` directs a run by handing the profiler a
``CozConfig`` with ``fixed_line`` / ``speedup_schedule`` set, and the
scheduler turns that configuration into per-experiment choices.

Bit-identity contract: the scheduler consumes the profiler's RNG in exactly
the order the inlined code did (speedup draw only on experiment start, line
draw only on WAIT-state samples), so free runs under the default
:class:`~repro.plan.StaticPlanner` reproduce the historical golden traces
byte for byte.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.sim.source import SourceLine


class RunScheduler:
    """Per-run experiment selection for one profiler instance.

    Shares the profiler's RNG (one seeded stream per run drives both line
    and speedup selection, as before).  ``schedule_idx`` is the cursor into
    a deterministic ``speedup_schedule`` and is part of the profiler's
    checkpoint snapshot (key ``"schedule_idx"``).
    """

    def __init__(self, cfg, rng: random.Random) -> None:
        self.cfg = cfg
        self.rng = rng
        self.schedule_idx = 0

    def select_line(
        self, in_scope: List[SourceLine], has_samples: bool
    ) -> Optional[SourceLine]:
        """Pick the next experiment's line from a WAIT-state sample batch.

        A directed run (``fixed_line``) starts as soon as any samples
        arrive; a free run picks uniformly among the batch's in-scope
        attributed lines (hotter lines appear more often, so this is
        sampling-frequency-weighted selection, §3.2).
        """
        cfg = self.cfg
        if cfg.fixed_line is not None:
            return cfg.fixed_line if in_scope or has_samples else None
        return self.rng.choice(in_scope) if in_scope else None

    def choose_speedup(self) -> int:
        """Pick the next experiment's virtual speedup percentage."""
        cfg = self.cfg
        if not cfg.enable_delays:
            return 0  # the "sampling-only" overhead configuration (§4.4)
        if cfg.speedup_schedule is not None:
            pct = cfg.speedup_schedule[self.schedule_idx % len(cfg.speedup_schedule)]
            self.schedule_idx += 1
            return pct
        if self.rng.random() < cfg.zero_speedup_prob:
            return 0
        nonzero = [s for s in cfg.speedup_values if s != 0]
        if not nonzero:
            return 0
        return self.rng.choice(nonzero)
