"""The experiment-planning protocol: plans, planner state, and reports.

A profiling session is a sequence of *runs*; each run executes experiments
on (line, virtual speedup) pairs.  Historically the schedule was hard-coded
in :class:`~repro.core.profiler.CausalProfiler` — every run sampled lines
and speedups uniformly, spending as much measurement on lines whose
confidence intervals converged long ago as on contested knees of the
speedup curve.

This package makes the schedule a first-class, pluggable object:

* an :class:`ExperimentPlan` describes one run — either *free* (the
  profiler's own sampling-driven selection, today's behavior) or *directed*
  (a fixed line and an explicit speedup cycle, built on ``CozConfig``'s
  existing ``fixed_line`` / ``speedup_schedule`` mechanism);
* a :class:`Planner` proposes batches of plans, observes the merged
  :class:`~repro.core.experiment.ExperimentResult`\\ s that come back, and
  decides when the session is done;
* the session runner (:func:`repro.harness.runner.run_profile_session`)
  is the plan *executor*: propose → execute (serial or parallel) →
  observe, until the planner stops.

Determinism contract: a planner's decisions must be a pure function of the
data it has observed.  Observed data replays losslessly from the session
journal, so a resumed session re-derives bit-identical plan decisions
without journaling the plans themselves.  Planners must not consult wall
clocks or unseeded RNGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CozConfig
from repro.sim.source import SourceLine, intern_line

#: stopping reasons a planner may assign to a line (PlanReport.line_reason)
REASON_SCHEDULE = "schedule"      # measured by the static round-robin
REASON_CONVERGED = "converged"    # CI target reached; measurement stopped
REASON_ELIMINATED = "eliminated"  # dropped by successive halving
REASON_BUDGET = "budget"          # still active when the run budget ran out


@dataclass(frozen=True)
class PlanConfig:
    """The planner knobs of a :class:`~repro.harness.runner.ProfileRequest`.

    Part of the session fingerprint: a journal written under one planner
    cannot be resumed under another (the replayed data would feed a
    different decision process and silently diverge).
    """

    #: planner name: ``"static"`` (default, bit-identical to the historical
    #: schedule) or ``"adaptive"``
    planner: str = "static"
    #: total run budget; ``None`` = the request's ``runs``
    budget: Optional[int] = None
    #: free exploration runs before the adaptive planner starts directing
    #: (``None`` = ~40% of the budget, at least one)
    explore_runs: Optional[int] = None
    #: per-point bootstrap-SE convergence target for adaptive early
    #: stopping (fraction of program speedup, like ``ProfilePoint.se``)
    se_target: float = 0.01

    def validate(self) -> None:
        from repro.plan import PLANNERS  # late: avoid import cycle

        if self.planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {self.planner!r} (choose from {PLANNERS})"
            )
        if self.budget is not None and self.budget < 1:
            raise ValueError("plan budget must be >= 1")
        if self.explore_runs is not None and self.explore_runs < 1:
            raise ValueError("explore_runs must be >= 1")
        if self.se_target <= 0:
            raise ValueError("se_target must be positive")


@dataclass(frozen=True)
class ExperimentPlan:
    """One planned run.

    ``line is None and speedups is None`` is a *free* run: the profiler
    selects lines from its own samples and speedups from its configured
    distribution — byte-identical to the historical behavior.  Setting
    either field makes the run *directed*: the profiler pins its selection
    to ``line`` and cycles deterministically through ``speedups``.
    """

    #: position in the session schedule; the run's seed is
    #: ``base_seed + index`` (the same rule as every other session run)
    index: int
    #: pin every experiment in the run to this line (None = free selection)
    line: Optional[SourceLine] = None
    #: cycle through these speedup percentages (None = config default);
    #: interleave 0s to keep the per-line baseline growing alongside
    speedups: Optional[Tuple[int, ...]] = None
    #: stop the run after this many experiments (None = run-length bound);
    #: lets a planner budget at experiment granularity — a directed run
    #: packs experiments denser than a free one, so without a cap it
    #: overspends relative to the run count
    max_experiments: Optional[int] = None
    #: human-readable planner intent ("explore", "halve", "knee", ...)
    note: str = ""

    @property
    def is_directed(self) -> bool:
        return (
            self.line is not None
            or self.speedups is not None
            or self.max_experiments is not None
        )

    def apply(self, cfg: CozConfig) -> CozConfig:
        """The run's profiler configuration (the session config, directed)."""
        if not self.is_directed:
            return cfg
        over: Dict[str, Any] = {}
        if self.line is not None:
            over["fixed_line"] = self.line
        if self.speedups is not None:
            over["speedup_schedule"] = tuple(self.speedups)
        if self.max_experiments is not None:
            over["max_experiments"] = self.max_experiments
        return replace(cfg, **over)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "line": [self.line.file, self.line.lineno] if self.line else None,
            "speedups": list(self.speedups) if self.speedups else None,
            "max_experiments": self.max_experiments,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentPlan":
        line = d.get("line")
        speedups = d.get("speedups")
        return cls(
            index=d["index"],
            line=intern_line(*line) if line else None,
            speedups=tuple(speedups) if speedups else None,
            max_experiments=d.get("max_experiments"),
            note=d.get("note", ""),
        )


@dataclass
class PlannerState:
    """What a planner sees between batches: everything observed so far."""

    #: merged data from every completed (or journal-replayed) run
    data: "Any"  # ProfileData; typed loosely to avoid an import cycle
    #: the progress point profiles are built against
    primary_progress: str
    #: the session's resolved profiler configuration (scope filled)
    coz_config: CozConfig
    #: the session's distinct-speedup filter (profile admission rule)
    min_speedup_amounts: int = 2
    #: runs merged so far (executed + replayed)
    runs_completed: int = 0


@dataclass
class PlanReport:
    """How the planner spent the session: per-line spend and stop reasons."""

    planner: str
    budget: int
    rounds: int
    #: runs the planner actually scheduled (<= budget)
    runs_planned: int
    #: experiments observed per line
    line_spend: Dict[SourceLine, int] = field(default_factory=dict)
    #: why measurement of each line stopped (REASON_* above)
    line_reason: Dict[SourceLine, str] = field(default_factory=dict)
    #: chronological narration of the planner's decisions
    decisions: List[str] = field(default_factory=list)

    def spend(self, line: SourceLine) -> int:
        return self.line_spend.get(line, 0)

    def reason(self, line: SourceLine) -> str:
        return self.line_reason.get(line, REASON_SCHEDULE)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "planner": self.planner,
            "budget": self.budget,
            "rounds": self.rounds,
            "runs_planned": self.runs_planned,
            "line_spend": {str(k): v for k, v in sorted(self.line_spend.items())},
            "line_reason": {str(k): v for k, v in sorted(self.line_reason.items())},
            "decisions": list(self.decisions),
        }


class Planner:
    """The planning protocol; concrete planners subclass this.

    The session runner drives::

        while not planner.done():
            plans = planner.propose(state)   # [] also ends the session
            ... execute the batch, merge results ...
            planner.observe(batch_results)

    ``propose`` must be deterministic given the observed data (see the
    module docstring), and every proposed index must be fresh and dense
    (0, 1, 2, ... in scheduling order) so run seeds stay reproducible.
    """

    name = "planner"

    def propose(self, state: PlannerState) -> List[ExperimentPlan]:
        """The next batch of runs (empty = nothing left to learn)."""
        raise NotImplementedError

    def observe(self, results: Sequence[Any]) -> None:
        """Feed back one batch's merged ``ExperimentResult``\\ s."""

    def done(self) -> bool:
        """True once the planner has nothing more to propose."""
        raise NotImplementedError

    def report(self) -> PlanReport:
        """Summarize spend + stopping reasons (after the session ends)."""
        raise NotImplementedError
