"""The static planner: today's uniform round-robin, as a Planner.

One batch of ``runs`` free runs, indices ``0..runs-1`` — exactly the task
list :func:`~repro.harness.runner.run_profile_session` used to build
inline.  Because the batch is proposed whole and every plan is free, the
executed session (serial or parallel, journaled or resumed, checkpointed
or cold) is byte-identical to the pre-planner code path; the golden-trace
suite and ``repro doctor`` hold this to account.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Sequence

from repro.plan.base import (
    REASON_SCHEDULE,
    ExperimentPlan,
    Planner,
    PlannerState,
    PlanReport,
)


class StaticPlanner(Planner):
    """Uniform schedule: every run free, all runs in one batch."""

    name = "static"

    def __init__(self, runs: int) -> None:
        if runs < 1:
            raise ValueError("a session needs at least one run")
        self.runs = runs
        self._proposed = False
        self._spend: Counter = Counter()

    def propose(self, state: PlannerState) -> List[ExperimentPlan]:
        if self._proposed:
            return []
        self._proposed = True
        return [
            ExperimentPlan(index=i, note=REASON_SCHEDULE) for i in range(self.runs)
        ]

    def observe(self, results: Sequence[Any]) -> None:
        for r in results:
            self._spend[r.line] += 1

    def done(self) -> bool:
        return self._proposed

    def report(self) -> PlanReport:
        return PlanReport(
            planner=self.name,
            budget=self.runs,
            rounds=1,
            runs_planned=self.runs if self._proposed else 0,
            line_spend=dict(self._spend),
            line_reason={line: REASON_SCHEDULE for line in self._spend},
            decisions=[f"static round-robin: {self.runs} free run(s)"],
        )
