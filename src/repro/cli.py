"""Command-line interface: ``coz-sim`` (or ``python -m repro.cli``).

Subcommands:

* ``profile <app>`` — run a bundled app under the causal profiler and print
  the ranked profile (the simulator's ``coz run --- <program>``);
* ``compare <app>`` — Table 3 style before/after optimization comparison;
* ``overhead <app>`` — Figure 9 style overhead breakdown;
* ``diff`` — differential profiler report: run causal + gprof + perf + GAPP
  on each app and compare their rankings (:mod:`repro.harness.differential`);
* ``doctor <app>`` — run the delay-accounting invariant audit
  (:mod:`repro.core.audit`) and print a pass/fail table;
* ``bench`` — engine throughput microbenchmarks over the fixed app matrix,
  emitting ``BENCH_engine.json`` (:mod:`repro.harness.bench`);
* ``serve`` — run the multi-tenant profiling daemon
  (:mod:`repro.harness.service`): a bounded worker pool over a Unix
  socket, with fingerprint dedup, per-tenant admission control, and
  restart recovery from its crash-safe queue journal;
* ``submit`` — submit a profiling job to a running daemon (duplicate
  submissions coalesce; completed ones are served from the result cache);
* ``status`` — the daemon's ``/healthz``-style status document;
* ``shutdown`` — ask a running daemon to stop;
* ``list`` — list the registered applications.

Apps are resolved through the public :mod:`repro.apps.registry`; the CLI is
a thin consumer, and third-party apps that call ``registry.register`` show
up in every subcommand.  ``profile``, ``compare``, and ``overhead`` accept
``--jobs N`` to fan independent runs out over worker processes (``0``, the
default, auto-sizes to ``min(runs, cpu count)``; ``1`` forces serial).
Parallel and serial sessions produce identical results.  The same three
subcommands accept ``--audit`` to run under the invariant audit; a failed
audit prints its report and exits nonzero.

``profile`` also accepts ``--planner static|adaptive`` and ``--budget N``:
the static planner reproduces the historical round-robin schedule
bit-identically, while the adaptive planner spends the run budget on
successive halving over candidate lines with variance-aware early
stopping, printing per-line spend/stop columns and its decision log.

Resilience flags (``profile`` and ``compare``): ``--journal PATH`` writes
a crash-safe session journal (one fsync'd record per completed run) and
``--resume PATH`` continues an interrupted session from one, merging
bit-identically to an uninterrupted run.  ``--chaos [INTENSITY]`` injects
the deterministic fault matrix (:mod:`repro.sim.faults`) — thread
crashes, stuck lock-holders, sample loss/duplication, jitter spikes,
worker kills/hangs — seeded by ``--chaos-seed``; sessions that lose runs
complete *degraded*, printing one failure record per lost run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.apps import registry
from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.report import (
    render_audit,
    render_failures,
    render_line_graph,
    render_plan,
    render_profile,
    to_coz_format,
)
from repro.harness.comparison import compare_builds
from repro.harness.overhead import measure_overhead
from repro.harness.request import ExecutionConfig, ResilienceConfig
from repro.harness.runner import ProfileRequest, run_profile_session
from repro.plan import PLANNERS, PlanConfig
from repro.sim.clock import MS


def _build(name: str, optimized: bool = False) -> AppSpec:
    try:
        return registry.build(name, optimized=optimized)
    except registry.UnknownAppError as exc:
        raise SystemExit(str(exc))
    except ValueError as exc:  # e.g. no optimized variant
        raise SystemExit(str(exc))


def cmd_list(_args: argparse.Namespace) -> int:
    for entry in registry.entries():
        print(f"{entry.name:<15} {'(+ optimized variant)' if entry.has_optimized else ''}")
    return 0


def _finish_audit(report) -> int:
    """Render an audit outcome; nonzero when any invariant failed."""
    if report is None:
        return 0
    if report.passed:
        print(f"audit: PASS ({len(report.checks)} invariants)")
        return 0
    print(render_audit(report), end="")
    return 1


def _fault_plan(args: argparse.Namespace):
    """The ``--chaos`` preset, or None when chaos is off."""
    if args.chaos is None:
        return None
    from repro.sim.faults import FaultPlan

    return FaultPlan.chaos(seed=args.chaos_seed, intensity=args.chaos)


def cmd_profile(args: argparse.Namespace) -> int:
    spec = _build(args.app, optimized=args.optimized)
    cfg = CozConfig(
        scope=spec.scope,
        experiment_duration_ns=MS(args.experiment_ms),
        speedup_values=tuple(range(0, 101, args.speedup_step)),
    )
    request = ProfileRequest(
        runs=args.runs, coz_config=cfg, audit=args.audit,
        execution=ExecutionConfig(
            jobs=args.jobs,
            checkpoint=not args.no_checkpoint,
            checkpoint_dir=args.checkpoint_dir,
        ),
        resilience=ResilienceConfig(
            faults=_fault_plan(args), journal=args.journal, resume=args.resume,
        ),
        plan=PlanConfig(planner=args.planner, budget=args.budget),
    )
    outcome = run_profile_session(spec, request)
    ran = outcome.plan.runs_planned if outcome.plan else args.runs
    print(f"{outcome.experiment_count} experiments over {ran} runs")
    if outcome.degraded:
        print(render_failures(outcome.data))
    print(render_profile(outcome.profile, top=args.top, plan=outcome.plan))
    if args.planner != "static" and outcome.plan:
        print(render_plan(outcome.plan))
    if args.graphs:
        for lp in outcome.profile.ranked()[: args.graphs]:
            print(render_line_graph(lp))
    if args.coz_output:
        with open(args.coz_output, "w") as f:
            f.write(to_coz_format(outcome.data))
        print(f"raw profile written to {args.coz_output}")
    return _finish_audit(outcome.audit)


def cmd_compare(args: argparse.Namespace) -> int:
    audit_report = None
    if args.audit:
        from repro.core.audit import AuditReport

        audit_report = AuditReport()
    base = _build(args.app, optimized=False)
    opt = _build(args.app, optimized=True)
    try:
        cmp_result = compare_builds(
            args.app, base.build, opt.build, runs=args.runs, jobs=args.jobs,
            baseline_ref=base.registry_ref, optimized_ref=opt.registry_ref,
            audit_report=audit_report, faults=_fault_plan(args),
            journal=args.journal, resume=args.resume,
        )
    except ValueError as exc:  # e.g. a fully-degraded chaos session
        raise SystemExit(str(exc))
    print(cmp_result.row())
    return _finish_audit(audit_report)


def cmd_overhead(args: argparse.Namespace) -> int:
    audit_report = None
    if args.audit:
        from repro.core.audit import AuditReport

        audit_report = AuditReport()
    spec = _build(args.app)
    breakdown = measure_overhead(
        spec, runs=args.runs, jobs=args.jobs, audit_report=audit_report
    )
    print(breakdown.row())
    return _finish_audit(audit_report)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import (
        baseline_history,
        check_regression,
        run_bench,
        write_bench,
    )

    doc = run_bench(
        quick=args.quick,
        apps=args.apps or None,
        progress=lambda msg: print(msg, file=sys.stderr),
        variants=args.variants or None,
    )
    # gate against the history already on disk, before this run's own
    # entry (if any) joins it — a run must not be its own baseline
    prior_history: list = []
    if args.gate is not None and os.path.exists(args.output):
        try:
            with open(args.output) as f:
                prior_history = json.load(f).get("history", []) or []
        except (OSError, ValueError):
            prior_history = []
    if args.label:
        doc["history"] = doc.get("history", []) + [
            {
                "label": args.label,
                "generated_unix": doc["generated_unix"],
                # quick runs are crash smoke only: the tag keeps them out
                # of cross-PR baseline comparisons (bench.baseline_history)
                "quick": doc["quick"],
                # same-backend filtering for perf gates (baseline_history)
                "backend": doc["backend"],
                "summary": doc["summary"],
            }
        ]
    write_bench(doc, args.output)
    for cell in doc["cells"]:
        print(
            f"{cell['name']:<22} wall {cell['wall_s']:>7.3f}s"
            f"  ({cell['wall_s_per_run']:.3f}s/run)"
            f"  {cell['events_per_sec']:>9,} ev/s"
            f"  {cell['virtual_ns_per_wall_s']:>13,} vns/s"
            f"  {cell['samples']:>7} samples"
        )
    legacy = doc["summary"]["speedup_vs_legacy"]
    if legacy:
        pairs = ", ".join(f"{app} {ratio:.2f}x" for app, ratio in legacy.items())
        print(f"coalescing speedup vs legacy quantum path: {pairs}")
    ckpt = doc["summary"].get("checkpoint_speedup") or {}
    if ckpt:
        pairs = ", ".join(f"{app} {ratio:.2f}x" for app, ratio in ckpt.items())
        print(f"checkpoint fast-forward speedup vs cold sessions: {pairs}")
    harness = doc["summary"].get("harness") or {}
    for app, m in harness.items():
        print(
            f"harness ({app}): warm serial {m.get('warm_serial_wall_s')}s, "
            f"warm parallel {m.get('warm_parallel_wall_s')}s, dispatch "
            f"{m.get('dispatch_overhead_per_run_ms')} ms/run, wire "
            f"{m.get('bytes_per_run_binary')} B/run binary vs "
            f"{m.get('bytes_per_run_json')} B/run JSON "
            f"({m.get('wire_ratio')}x)"
        )
    baselines = baseline_history(doc.get("history", []))
    if baselines:
        print(f"cross-PR baselines on record: {len(baselines)} "
              f"({len(doc.get('history', [])) - len(baselines)} quick entries excluded)")
    print(f"bench results written to {args.output}")
    if args.gate is not None:
        problems = check_regression(doc, prior_history, pct=args.gate)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"perf gate passed (threshold {args.gate:g}%)")
    return 0


def _service_socket(args: argparse.Namespace) -> str:
    import os

    if getattr(args, "socket", None):
        return args.socket
    return os.path.join(args.state_dir, "daemon.sock")


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.harness.service import ServiceConfig, ServiceDaemon, TenantPolicy

    policy = TenantPolicy(
        max_queue_depth=args.max_queue_depth,
        rate_per_s=args.rate,
        burst=args.burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        default_deadline_s=args.default_deadline_s,
    )
    config = ServiceConfig(
        state_dir=args.state_dir,
        workers=args.workers,
        policy=policy,
        session_jobs=args.session_jobs,
        socket_path=args.socket,
    )
    try:
        daemon = ServiceDaemon(config)
    except OSError as exc:  # no AF_UNIX on this platform
        raise SystemExit(str(exc))
    print(f"profiling daemon listening on {config.sock} "
          f"({args.workers} workers, state in {args.state_dir})")
    try:
        daemon.run_forever()
    except KeyboardInterrupt:
        print("daemon interrupted, state journaled — restart to recover",
              file=sys.stderr)
        return 130
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.harness.service import (
        JobSpec,
        ServiceClient,
        ServiceUnavailableError,
        WireError,
    )

    try:
        spec = JobSpec(
            tenant=args.tenant,
            app=args.app,
            runs=args.runs,
            base_seed=args.base_seed,
            experiment_ms=args.experiment_ms,
            speedup_step=args.speedup_step,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            planner=args.planner,
            budget=args.budget,
            deadline_s=args.deadline_s,
        )
    except WireError as exc:
        raise SystemExit(str(exc))
    client = ServiceClient(_service_socket(args))
    try:
        response = client.submit(
            spec, wait_s=None if args.no_wait else args.timeout_s
        )
    except ServiceUnavailableError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(_json.dumps(response, sort_keys=True, indent=2))
    if not response.get("ok"):
        if not args.json:
            print(f"shed: {response.get('message', response.get('error'))}")
        # sheds are load, not bugs: a distinct exit code lets scripts retry
        return 75 if response.get("error") == "ServiceOverloadError" else 1
    if args.json:
        return 0
    job_doc = response.get("job") or {}
    state = response.get("state") or job_doc.get("state")
    flags = [k for k in ("cached", "dedup") if response.get(k)]
    suffix = f" ({', '.join(flags)})" if flags else ""
    job_id = (response.get("job_id") or job_doc.get("job_id")
              or response.get("fingerprint", "?")[:16])
    print(f"job {job_id}: {state}{suffix}")
    result = response.get("result")
    if result:
        failures = result.get("failures", [])
        print(f"  {result['experiments']} experiments, "
              f"{len(failures)} failed runs"
              f"{', partial (deadline)' if result.get('partial') else ''}")
        for row in result.get("top", [])[:3]:
            print(f"  {row['line']:<24} slope {row['slope']:+.4f}")
    return 0


def cmd_service_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.harness.service import ServiceClient, ServiceUnavailableError

    client = ServiceClient(_service_socket(args))
    try:
        doc = client.status()
    except ServiceUnavailableError as exc:
        raise SystemExit(str(exc))
    status = doc.get("status") or {}
    if args.json:
        print(_json.dumps(status, sort_keys=True, indent=2))
    else:
        workers = status.get("workers", {})
        queue = status.get("queue", {})
        cache = status.get("cache", {})
        print(f"status {status.get('status')}  uptime {status.get('uptime_s')}s  "
              f"workers {workers.get('alive')}/{workers.get('configured')} "
              f"({workers.get('busy')} busy)")
        print(f"queue depth {queue.get('depth')} running {queue.get('running')} "
              f"latency avg {queue.get('latency_avg_s')}s "
              f"p95 {queue.get('latency_p95_s')}s")
        print(f"cache hit-rate {cache.get('hit_rate')} "
              f"({cache.get('result_hits')} hits / "
              f"{cache.get('result_misses')} misses, "
              f"{cache.get('dedup_coalesced')} coalesced)")
        for tenant, snap in (status.get("tenants") or {}).items():
            print(f"tenant {tenant:<12} breaker {snap['breaker']:<9} "
                  f"active {snap['active']} completed {snap['completed']} "
                  f"degraded {snap['degraded']} shed {snap['shed_total']}")
    return 0 if status.get("status") == "ok" else 1


def cmd_service_shutdown(args: argparse.Namespace) -> int:
    from repro.harness.service import ServiceClient, ServiceUnavailableError

    client = ServiceClient(_service_socket(args))
    try:
        client.shutdown()
    except ServiceUnavailableError as exc:
        raise SystemExit(str(exc))
    print("daemon stopping")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.harness.differential import (
        DiffConfig,
        diff_to_json,
        render_diff,
        run_differential,
    )

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    if not apps:
        raise SystemExit("--apps: no application names given")
    config = DiffConfig(
        runs=args.runs,
        jobs=args.jobs,
        experiment_ms=args.experiment_ms,
        top_k=args.top,
        checkpoint=not args.no_checkpoint,
        quick=args.quick,
    )
    diffs = []
    for app in apps:
        try:
            diffs.append(run_differential(app, config))
        except registry.UnknownAppError as exc:
            raise SystemExit(str(exc))
    if args.output == "json":
        print(diff_to_json(diffs))
    else:
        print(render_diff(diffs, top=args.top), end="")
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    from repro.core.audit import run_doctor

    try:
        report = run_doctor(args.app, runs=args.runs, jobs=args.jobs)
    except registry.UnknownAppError as exc:
        raise SystemExit(str(exc))
    print(render_audit(report), end="")
    return 0 if report.passed else 1


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = auto)")
    return jobs


def _add_jobs_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=_jobs_arg, default=0, metavar="N",
        help="worker processes for independent runs "
             "(0 = auto: min(runs, cpu count); 1 = serial)",
    )


def _add_audit_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--audit", action="store_true",
        help="run under the delay-accounting invariant audit; "
             "exit nonzero if any invariant fails",
    )


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--chaos", type=float, nargs="?", const=0.25, default=None,
        metavar="INTENSITY",
        help="inject the deterministic fault matrix at this per-run "
             "probability (bare flag = 0.25); lost runs are reported, "
             "not fatal",
    )
    p.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed for the fault-injection RNG stream (default 0)",
    )
    p.add_argument(
        "--journal", metavar="PATH",
        help="write a crash-safe session journal (one fsync'd JSONL "
             "record per completed run)",
    )
    p.add_argument(
        "--resume", metavar="PATH",
        help="resume an interrupted session from its journal; replays "
             "completed runs and executes only the rest",
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="coz-sim",
        description="Causal profiling on a simulated machine (Coz reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered applications").set_defaults(fn=cmd_list)

    p = sub.add_parser("profile", help="causal-profile an app")
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--experiment-ms", type=float, default=50.0)
    p.add_argument("--speedup-step", type=int, default=20)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--graphs", type=int, default=0, help="render N ASCII graphs")
    p.add_argument("--optimized", action="store_true")
    p.add_argument("--coz-output", help="write raw experiments in Coz's file format")
    p.add_argument(
        "--no-checkpoint", action="store_true",
        help="disable checkpoint fast-forward (always simulate runs cold; "
             "results are bit-identical either way)",
    )
    p.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="on-disk checkpoint cache shared across sessions and workers; "
             "a cache built for a different configuration is invalidated "
             "with a warning, never silently reused",
    )
    p.add_argument(
        "--planner", choices=PLANNERS, default="static",
        help="experiment planner: 'static' reproduces the historical "
             "round-robin schedule bit-identically; 'adaptive' runs "
             "successive halving over candidate lines with variance-aware "
             "early stopping (default: static)",
    )
    p.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="planner run budget (default: --runs); the adaptive planner "
             "may stop early when every line converges",
    )
    _add_jobs_flag(p)
    _add_audit_flag(p)
    _add_resilience_flags(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("compare", help="before/after optimization (Table 3 row)")
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=10)
    _add_jobs_flag(p)
    _add_audit_flag(p)
    _add_resilience_flags(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("overhead", help="overhead breakdown (Figure 9 bar)")
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=3)
    _add_jobs_flag(p)
    _add_audit_flag(p)
    p.set_defaults(fn=cmd_overhead)

    p = sub.add_parser(
        "bench", help="engine throughput microbenchmarks (BENCH_engine.json)"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="shrink runs/repeats for CI smoke jobs",
    )
    p.add_argument(
        "--output", default="BENCH_engine.json", metavar="PATH",
        help="where to write the results document (default: ./BENCH_engine.json)",
    )
    p.add_argument(
        "--app", dest="apps", action="append", metavar="NAME",
        help="restrict the matrix to this app (repeatable; default: "
             "example, ferret, sqlite)",
    )
    p.add_argument(
        "--variant", dest="variants", action="append", metavar="NAME",
        help="restrict the matrix to this variant (repeatable; e.g. "
             "'harness' for the dispatch-overhead perf gate)",
    )
    p.add_argument(
        "--label", metavar="TEXT",
        help="append this run's summary to the document's cross-PR history",
    )
    p.add_argument(
        "--gate", type=float, default=None, metavar="PCT",
        help="fail (exit 1) when the harness cell regresses by more than "
             "PCT%% against the recorded same-backend baseline history",
    )
    p.set_defaults(fn=cmd_bench)

    def _add_socket_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--state-dir", default=".repro-service", metavar="DIR",
            help="daemon state directory (default: ./.repro-service)",
        )
        sp.add_argument(
            "--socket", metavar="PATH", default=None,
            help="socket path override (default: <state-dir>/daemon.sock)",
        )

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant profiling daemon (Unix socket)",
    )
    _add_socket_flags(p)
    p.add_argument("--workers", type=int, default=2,
                   help="worker threads draining the job queue (default 2)")
    p.add_argument(
        "--session-jobs", type=_jobs_arg, default=1, metavar="N",
        help="executor worker processes per session (default 1 = in-process)",
    )
    p.add_argument("--max-queue-depth", type=int, default=8,
                   help="per-tenant queued+running job quota (default 8)")
    p.add_argument("--rate", type=float, default=20.0,
                   help="per-tenant submissions/second (default 20)")
    p.add_argument("--burst", type=int, default=40,
                   help="per-tenant rate-limit burst allowance (default 40)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive failed/degraded jobs that open a "
                        "tenant's circuit breaker (default 3)")
    p.add_argument("--breaker-cooldown-s", type=float, default=30.0,
                   help="seconds a breaker stays open before one half-open "
                        "probe is admitted (default 30)")
    p.add_argument("--default-deadline-s", type=float, default=None,
                   help="deadline applied to jobs without one (default none)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a profiling job to a running daemon"
    )
    p.add_argument("app")
    _add_socket_flags(p)
    p.add_argument("--tenant", default="default",
                   help="tenant the job is accounted under (default: default)")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--experiment-ms", type=float, default=50.0)
    p.add_argument("--speedup-step", type=int, default=20)
    p.add_argument("--planner", choices=PLANNERS, default="static")
    p.add_argument("--budget", type=int, default=None, metavar="N")
    p.add_argument("--deadline-s", type=float, default=None,
                   help="wall-clock budget; an expired job returns its "
                        "completed prefix (resumable by resubmitting)")
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and return immediately instead of waiting "
                        "for the result")
    p.add_argument("--timeout-s", type=float, default=120.0,
                   help="how long to wait for the result (default 120)")
    p.add_argument("--json", action="store_true",
                   help="print the daemon's raw JSON response")
    p.add_argument(
        "--chaos", type=float, nargs="?", const=0.25, default=None,
        metavar="INTENSITY",
        help="inject the deterministic fault matrix at this per-run "
             "probability (bare flag = 0.25)",
    )
    p.add_argument("--chaos-seed", type=int, default=0, metavar="SEED")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "status", help="print a running daemon's health/status document"
    )
    _add_socket_flags(p)
    p.add_argument("--json", action="store_true",
                   help="print the raw status document")
    p.set_defaults(fn=cmd_service_status)

    p = sub.add_parser("shutdown", help="ask a running daemon to stop")
    _add_socket_flags(p)
    p.set_defaults(fn=cmd_service_shutdown)

    p = sub.add_parser(
        "diff",
        help="differential profiler report: causal vs gprof vs perf vs GAPP",
    )
    p.add_argument(
        "--apps", default="example",
        help="comma-separated application names (default: example)",
    )
    p.add_argument("--runs", type=int, default=6,
                   help="causal free-selection runs per app (default 6)")
    p.add_argument("--experiment-ms", type=float, default=25.0)
    p.add_argument("--top", type=int, default=10,
                   help="rows per ranking and the k of top-k disagreement")
    p.add_argument(
        "--output", choices=("text", "json"), default="text",
        help="report format; json is the canonical sorted-keys document",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="shrink runs/experiments/workloads for CI smoke jobs",
    )
    p.add_argument(
        "--no-checkpoint", action="store_true",
        help="disable checkpoint fast-forward for the causal sessions",
    )
    _add_jobs_flag(p)
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "doctor", help="audit the delay-accounting invariants on an app"
    )
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=3)
    _add_jobs_flag(p)
    p.set_defaults(fn=cmd_doctor)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
