"""Command-line interface: ``coz-sim`` (or ``python -m repro.cli``).

Subcommands:

* ``profile <app>`` — run a bundled app under the causal profiler and print
  the ranked profile (the simulator's ``coz run --- <program>``);
* ``compare <app>`` — Table 3 style before/after optimization comparison;
* ``overhead <app>`` — Figure 9 style overhead breakdown;
* ``list`` — list the bundled applications.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.report import render_line_graph, render_profile, to_coz_format
from repro.harness.comparison import compare_builds
from repro.harness.overhead import measure_overhead
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def _registry() -> Dict[str, Tuple[Callable[..., AppSpec], bool]]:
    """name -> (builder, has_optimized_variant)."""
    from repro.apps.blackscholes import build_blackscholes
    from repro.apps.dedup import build_dedup
    from repro.apps.example import build_example
    from repro.apps.ferret import OPTIMIZED_THREADS, build_ferret
    from repro.apps.fluidanimate import build_fluidanimate
    from repro.apps.memcached import build_memcached
    from repro.apps.parsec_misc import TABLE4, build_parsec_app
    from repro.apps.sqlite import build_sqlite
    from repro.apps.streamcluster import build_streamcluster
    from repro.apps.swaptions import build_swaptions

    registry: Dict[str, Tuple[Callable[..., AppSpec], bool]] = {
        "example": (build_example, False),
        "dedup": (lambda optimized=False: build_dedup("xor" if optimized else "original"), True),
        "ferret": (
            lambda optimized=False: build_ferret(
                threads=OPTIMIZED_THREADS if optimized else (8, 8, 8, 8)
            ),
            True,
        ),
        "sqlite": (build_sqlite, True),
        "memcached": (build_memcached, True),
        "fluidanimate": (build_fluidanimate, True),
        "streamcluster": (build_streamcluster, True),
        "blackscholes": (build_blackscholes, True),
        "swaptions": (build_swaptions, True),
    }
    for entry in TABLE4:
        registry[entry.name] = (
            lambda name=entry.name: build_parsec_app(name),
            False,
        )
    return registry


def _build(name: str, optimized: bool = False) -> AppSpec:
    registry = _registry()
    if name not in registry:
        raise SystemExit(
            f"unknown app {name!r}; available: {', '.join(sorted(registry))}"
        )
    builder, has_opt = registry[name]
    if optimized and not has_opt:
        raise SystemExit(f"{name} has no optimized variant")
    return builder(optimized=True) if optimized else builder()


def cmd_list(_args: argparse.Namespace) -> int:
    registry = _registry()
    for name in sorted(registry):
        _, has_opt = registry[name]
        print(f"{name:<15} {'(+ optimized variant)' if has_opt else ''}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    spec = _build(args.app, optimized=args.optimized)
    cfg = CozConfig(
        scope=spec.scope,
        experiment_duration_ns=MS(args.experiment_ms),
        speedup_values=tuple(range(0, 101, args.speedup_step)),
    )
    outcome = profile_app(spec, runs=args.runs, coz_config=cfg)
    print(f"{outcome.experiment_count} experiments over {args.runs} runs")
    print(render_profile(outcome.profile, top=args.top))
    if args.graphs:
        for lp in outcome.profile.ranked()[: args.graphs]:
            print(render_line_graph(lp))
    if args.coz_output:
        with open(args.coz_output, "w") as f:
            f.write(to_coz_format(outcome.data))
        print(f"raw profile written to {args.coz_output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    base = _build(args.app, optimized=False)
    opt = _build(args.app, optimized=True)
    cmp_result = compare_builds(args.app, base.build, opt.build, runs=args.runs)
    print(cmp_result.row())
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    spec = _build(args.app)
    breakdown = measure_overhead(spec, runs=args.runs)
    print(breakdown.row())
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="coz-sim",
        description="Causal profiling on a simulated machine (Coz reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled applications").set_defaults(fn=cmd_list)

    p = sub.add_parser("profile", help="causal-profile an app")
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--experiment-ms", type=float, default=50.0)
    p.add_argument("--speedup-step", type=int, default=20)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--graphs", type=int, default=0, help="render N ASCII graphs")
    p.add_argument("--optimized", action="store_true")
    p.add_argument("--coz-output", help="write raw experiments in Coz's file format")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("compare", help="before/after optimization (Table 3 row)")
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=10)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("overhead", help="overhead breakdown (Figure 9 bar)")
    p.add_argument("app")
    p.add_argument("--runs", type=int, default=3)
    p.set_defaults(fn=cmd_overhead)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
