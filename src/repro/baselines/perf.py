"""A perf-style sampling profiler (Linux ``perf record`` / ``perf report``).

Pure statistical profiling: samples the instruction pointer on each thread's
CPU clock and reports the share of samples per line and per function.  This
is the profiler the paper runs on SQLite (Figure 7b), where the three
functions Coz flags as 25%-of-runtime opportunities account for just 0.15%
of perf samples — the headline demonstration that "time spent" is not
"optimization opportunity".
"""

from __future__ import annotations

import io
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.hooks import Observer
from repro.sim.sampler import SEG_LITERAL, Sample
from repro.sim.source import SourceLine


@dataclass
class PerfEntry:
    """One row of a perf report."""

    key: str          # function name or "file:line"
    samples: int
    pct: float


class PerfProfile:
    """Finished perf output: sample shares by line and by function."""

    def __init__(self, line_samples: Counter, func_samples: Counter) -> None:
        self.line_samples = Counter(line_samples)
        self.func_samples = Counter(func_samples)
        self.total = sum(line_samples.values())

    # rankings sort by (-samples, name): Counter.most_common breaks ties by
    # insertion order, which depends on execution history and would make two
    # bit-identical runs render differently-ordered reports

    def by_line(self) -> List[PerfEntry]:
        total = max(1, self.total)
        return [
            PerfEntry(str(line), n, 100.0 * n / total)
            for line, n in sorted(
                self.line_samples.items(), key=lambda kv: (-kv[1], str(kv[0]))
            )
        ]

    def by_func(self) -> List[PerfEntry]:
        total = max(1, self.total)
        return [
            PerfEntry(func, n, 100.0 * n / total)
            for func, n in sorted(
                self.func_samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def pct_line(self, line: SourceLine) -> float:
        return 100.0 * self.line_samples.get(line, 0) / max(1, self.total)

    def pct_func(self, func: str) -> float:
        return 100.0 * self.func_samples.get(func, 0) / max(1, self.total)

    def render(self, top: Optional[int] = 15, by: str = "func") -> str:
        """Text output shaped like ``perf report`` (Figure 7b)."""
        rows = self.by_func() if by == "func" else self.by_line()
        if top is not None:
            rows = rows[:top]
        buf = io.StringIO()
        buf.write(f"# Samples: {self.total}\n")
        buf.write(f"{'Overhead':>9}  {'Symbol'}\n")
        for e in rows:
            buf.write(f"{e.pct:>8.2f}%  {e.key}\n")
        return buf.getvalue()


class PerfObserver(Observer):
    """Attach to a run to collect a perf-style flat profile."""

    wants_samples = True
    accepts_columnar = True

    def __init__(self) -> None:
        self._line_samples: Counter = Counter()
        self._func_samples: Counter = Counter()

    def on_sample(self, sample: Sample) -> None:
        self._line_samples[sample.line] += 1
        # top-level code interns as "<main>" here, at the observer boundary,
        # so by_func rows and pct_func lookups agree on one key
        self._func_samples[sample.func or "<main>"] += 1

    def on_sample_batch(self, batch) -> None:
        if type(batch) is list:
            for s in batch:
                self.on_sample(s)
            return
        # columnar: a flat profile only needs per-segment counts — every
        # sample in a run-length segment shares one (line, func), so the
        # timestamps never need expanding
        lines = self._line_samples
        funcs = self._func_samples
        for seg in batch.segs:
            if seg[0] == SEG_LITERAL:
                for s in seg[2]:
                    lines[s.line] += 1
                    funcs[s.func or "<main>"] += 1
            else:
                n = seg[1]
                lines[seg[3]] += n
                funcs[seg[5] or "<main>"] += n

    def profile(self) -> PerfProfile:
        return PerfProfile(self._line_samples, self._func_samples)
