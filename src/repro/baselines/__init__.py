"""Conventional profilers, the paper's comparison points.

:mod:`repro.baselines.gprof` reproduces gprof's flat profile and call graph
(Figure 2a), including its per-call instrumentation overhead.
:mod:`repro.baselines.perf` reproduces a ``perf``-style sampling profiler's
flat profile by line and function (Figure 7b).

:mod:`repro.baselines.gapp` adds a post-paper contender: a GAPP-style
blocked-time criticality profiler (Nair & Field 2020) built on the engine's
passive block/unblock observer surface.

All are passive :class:`~repro.sim.hooks.Observer` implementations: they
watch the same execution the causal profiler would, and demonstrate the
paper's core claim — "where the time goes" is not "what to optimize".
:mod:`repro.harness.differential` runs all of them plus the causal profiler
on one app and reports where the rankings disagree.
"""

from repro.baselines.gapp import GappObserver, GappProfile
from repro.baselines.gprof import GprofObserver, GprofProfile
from repro.baselines.perf import PerfObserver, PerfProfile

__all__ = [
    "GappObserver",
    "GappProfile",
    "GprofObserver",
    "GprofProfile",
    "PerfObserver",
    "PerfProfile",
]
