"""Conventional profilers, the paper's comparison points.

:mod:`repro.baselines.gprof` reproduces gprof's flat profile and call graph
(Figure 2a), including its per-call instrumentation overhead.
:mod:`repro.baselines.perf` reproduces a ``perf``-style sampling profiler's
flat profile by line and function (Figure 7b).

Both are passive :class:`~repro.sim.hooks.Observer` implementations: they
watch the same execution the causal profiler would, and demonstrate the
paper's core claim — "where the time goes" is not "what to optimize".
"""

from repro.baselines.gprof import GprofObserver, GprofProfile
from repro.baselines.perf import PerfObserver, PerfProfile

__all__ = ["GprofObserver", "GprofProfile", "PerfObserver", "PerfProfile"]
