"""A GAPP-style serialization-bottleneck profiler (Nair & Field, 2020).

GAPP ("Generic Automatic Parallel Profiler") ranks code by *criticality*:
blocked time weighted by how many threads were blocked concurrently, under
the observation that a lock-holder delaying N waiters is N times as critical
as one delaying a single waiter.  Unlike gprof/perf it charges that time to
the code the *waker* (lock holder / signaller) was executing when it released
the waiters — serialization is the holder's fault, not the waiters'.

The simulated version rides the engine's passive block/unblock observer
surface:

* a running integral ``I(t) = ∫ n_blocked dt`` is advanced on every block
  and unblock edge;
* a thread blocked over ``[t0, t1)`` contributes ``I(t1) - I(t0)`` weighted
  nanoseconds — exactly its own blocked time multiplied, instant by
  instant, by the number of concurrently-blocked threads;
* the contribution is attributed to the waker's callchain walked outward to
  the first non-pseudo source line (the same callchain-walking rule Coz
  uses for out-of-scope samples), so ``<runtime>``/``<libc>`` frames never
  absorb blame.

Criticality is reported as a percentage of total weighted blocked time,
rendered like the gprof/perf reports so the differential harness can compare
all three rankings against the causal profile.

This is a *baseline*, and it shares the baselines' core limitation the paper
targets: blocked time measures where waiting happens, not what an
optimization would buy.  GAPP finds serialization bottlenecks well (it will
rank a contended mutex's holder site highly) but still cannot see
throughput-limiting code that never blocks anyone.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.clock import NS_PER_SEC
from repro.sim.hooks import Observer
from repro.sim.source import RUNTIME_LINE, SourceLine
from repro.sim.thread import VThread


@dataclass
class GappEntry:
    """One row of a GAPP criticality report."""

    key: str            # "file:line" of the holder site, or function name
    criticality: float  # % of total weighted blocked time
    weighted_s: float   # blocked seconds weighted by concurrent blockers
    blocked_s: float    # raw blocked seconds attributed to this site
    edges: int          # block/unblock edges attributed to this site


class GappProfile:
    """Finished GAPP output: criticality by holder site and by function."""

    def __init__(
        self,
        sites: Dict[SourceLine, List[int]],
        line_funcs: Dict[SourceLine, str],
        total_weighted_ns: int,
        total_blocked_ns: int,
        total_edges: int,
        runtime_ns: int,
    ) -> None:
        #: holder site -> [weighted_ns, blocked_ns, edges]
        self.sites = {ln: list(v) for ln, v in sites.items()}
        self.line_funcs = dict(line_funcs)
        self.total_weighted_ns = total_weighted_ns
        self.total_blocked_ns = total_blocked_ns
        self.total_edges = total_edges
        self.runtime_ns = runtime_ns

    def _func_of(self, ln: SourceLine) -> str:
        if ln.file.startswith("<"):
            return ln.file
        return self.line_funcs.get(ln, "<main>")

    def by_line(self) -> List[GappEntry]:
        """Criticality per holder site, sorted by (-weight, key)."""
        total = max(1, self.total_weighted_ns)
        return [
            GappEntry(
                key=str(ln),
                criticality=100.0 * w / total,
                weighted_s=w / NS_PER_SEC,
                blocked_s=b / NS_PER_SEC,
                edges=e,
            )
            for ln, (w, b, e) in sorted(
                self.sites.items(), key=lambda kv: (-kv[1][0], str(kv[0]))
            )
        ]

    def by_func(self) -> List[GappEntry]:
        """Criticality aggregated over each holder site's function."""
        total = max(1, self.total_weighted_ns)
        agg: Dict[str, List[int]] = {}
        for ln, (w, b, e) in self.sites.items():
            acc = agg.setdefault(self._func_of(ln), [0, 0, 0])
            acc[0] += w
            acc[1] += b
            acc[2] += e
        return [
            GappEntry(
                key=func,
                criticality=100.0 * w / total,
                weighted_s=w / NS_PER_SEC,
                blocked_s=b / NS_PER_SEC,
                edges=e,
            )
            for func, (w, b, e) in sorted(
                agg.items(), key=lambda kv: (-kv[1][0], kv[0])
            )
        ]

    def criticality_line(self, ln: SourceLine) -> float:
        """Percent of total weighted blocked time attributed to ``ln``."""
        w = self.sites.get(ln, (0, 0, 0))[0]
        return 100.0 * w / max(1, self.total_weighted_ns)

    def render(self, top: Optional[int] = 15, by: str = "line") -> str:
        """Text output shaped like the gprof/perf reports."""
        rows = self.by_func() if by == "func" else self.by_line()
        if top is not None:
            rows = rows[:top]
        buf = io.StringIO()
        buf.write(
            f"# GAPP criticality: blocked time weighted by concurrent blockers\n"
            f"# Block edges: {self.total_edges}   "
            f"blocked: {self.total_blocked_ns / NS_PER_SEC:.3f}s   "
            f"weighted: {self.total_weighted_ns / NS_PER_SEC:.3f}s\n"
        )
        buf.write(
            f"{'Crit%':>7} {'weighted(s)':>12} {'blocked(s)':>11} "
            f"{'edges':>7}  holder site\n"
        )
        for e in rows:
            buf.write(
                f"{e.criticality:>7.2f} {e.weighted_s:>12.3f} "
                f"{e.blocked_s:>11.3f} {e.edges:>7}  {e.key}\n"
            )
        return buf.getvalue()


class GappObserver(Observer):
    """Attach to a run to collect a GAPP criticality profile.

    Strictly passive: it reads the engine clock and thread callchains on
    block/unblock notifications but injects no cost, so an observed run is
    bit-identical to an unobserved one.
    """

    wants_samples = False
    # GAPP uses no IP samples, but declare batch readiness so enabling
    # wants_samples (e.g. for a hybrid criticality/flat report) never forces
    # the engine to materialize columnar buffers on its behalf
    accepts_columnar = True

    def __init__(self) -> None:
        self._engine = None
        self._sites: Dict[SourceLine, List[int]] = {}
        self._line_funcs: Dict[SourceLine, str] = {}
        # running integral of n_blocked over virtual time
        self._n_blocked = 0
        self._integral = 0
        self._integral_at = 0
        # thread -> integral value when it blocked
        self._pending: Dict[VThread, int] = {}
        self._total_weighted = 0
        self._total_blocked = 0
        self._total_edges = 0
        self._runtime_ns = 0

    # -- integral maintenance --------------------------------------------------

    def _advance(self) -> int:
        now = self._engine.now
        self._integral += self._n_blocked * (now - self._integral_at)
        self._integral_at = now
        return self._integral

    # -- observer surface ------------------------------------------------------

    def on_run_start(self, engine) -> None:
        self._engine = engine

    def on_run_end(self, engine) -> None:
        self._runtime_ns = engine.now

    def on_work(self, thread: VThread, line: SourceLine, func: str, nominal_ns: int) -> None:
        # remember which function each line runs under; the differential
        # report uses this to project line rankings into function space
        if line not in self._line_funcs:
            self._line_funcs[line] = func or "<main>"

    def on_block(self, thread: VThread, obj: object) -> None:
        self._pending[thread] = self._advance()
        self._n_blocked += 1

    def on_unblock(
        self, thread: VThread, waker: Optional[VThread], blocked_ns: int
    ) -> None:
        integral = self._advance()
        self._n_blocked -= 1
        weighted = integral - self._pending.pop(thread)
        site = self._holder_site(waker)
        acc = self._sites.get(site)
        if acc is None:
            acc = self._sites[site] = [0, 0, 0]
        acc[0] += weighted
        acc[1] += blocked_ns
        acc[2] += 1
        self._total_weighted += weighted
        self._total_blocked += blocked_ns
        self._total_edges += 1

    # -- attribution -----------------------------------------------------------

    def _holder_site(self, waker: Optional[VThread]) -> SourceLine:
        """The waker's callchain walked to the first non-pseudo line.

        At notification time the waker is still executing its waking op, so
        its innermost line is the unlock/signal/post call site; pseudo-file
        frames (``<runtime>``, ``<libc>``) walk outward to app code exactly
        like Coz's out-of-scope sample attribution.
        """
        if waker is None:
            return RUNTIME_LINE
        for ln in waker.callchain():
            if ln is not None and not ln.file.startswith("<"):
                return ln
        return RUNTIME_LINE

    def profile(self) -> GappProfile:
        return GappProfile(
            self._sites,
            self._line_funcs,
            self._total_weighted,
            self._total_blocked,
            self._total_edges,
            self._runtime_ns,
        )
