"""A gprof-style profiler (Graham, Kessler & McKusick 1982).

gprof combines per-call instrumentation (mcount) with statistical sampling
of self time.  The simulated version:

* counts calls per (caller, callee) edge via PushFrame events;
* accounts *self* time per function exactly (the simulator knows it; real
  gprof approximates it by sampling, which only adds noise);
* charges a per-call instrumentation cost to the profiled program — this is
  gprof's probe effect, which the paper measured at up to 6x for ferret.

The output mirrors Figure 2a: a flat profile (% time, cumulative/self
seconds, calls) and a call graph with caller/callee attribution.
"""

from __future__ import annotations

import io
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import NS_PER_SEC
from repro.sim.hooks import Observer
from repro.sim.source import SourceLine
from repro.sim.thread import VThread


@dataclass
class FlatEntry:
    """One row of the gprof flat profile."""

    func: str
    pct_time: float
    cumulative_s: float
    self_s: float
    calls: int


class GprofProfile:
    """Finished gprof output: flat profile plus call graph."""

    def __init__(
        self,
        self_ns: Dict[str, int],
        calls: Dict[str, int],
        edges: Dict[Tuple[str, str], int],
        total_ns: int,
    ) -> None:
        self.self_ns = dict(self_ns)
        self.calls = dict(calls)
        self.edges = dict(edges)
        self.total_ns = total_ns

    def flat(self) -> List[FlatEntry]:
        """Flat profile rows, sorted by self time like gprof.

        Ties break on the function name, not on counter insertion order —
        insertion order is an execution-history artifact that would make
        rankings differ between otherwise identical runs (and poison rank
        comparisons in the differential report).
        """
        entries = []
        cumulative = 0.0
        total = max(1, self.total_ns)
        for func, ns in sorted(self.self_ns.items(), key=lambda kv: (-kv[1], kv[0])):
            cumulative += ns / NS_PER_SEC
            entries.append(
                FlatEntry(
                    func=func,
                    pct_time=100.0 * ns / total,
                    cumulative_s=cumulative,
                    self_s=ns / NS_PER_SEC,
                    calls=self.calls.get(func, 0),
                )
            )
        return entries

    def pct_time(self, func: str) -> float:
        """Percent of total self time attributed to ``func``."""
        return 100.0 * self.self_ns.get(func, 0) / max(1, self.total_ns)

    def callers(self, func: str) -> Dict[str, int]:
        """Call counts into ``func`` by caller."""
        return {
            caller: n for (caller, callee), n in self.edges.items() if callee == func
        }

    def render(self, top: Optional[int] = None) -> str:
        """Text output shaped like gprof's flat profile (Figure 2a)."""
        buf = io.StringIO()
        buf.write("Flat profile:\n\n")
        buf.write(
            f"{'%':>6} {'cumulative':>10} {'self':>9} {'':>9} {'name'}\n"
            f"{'time':>6} {'seconds':>10} {'seconds':>9} {'calls':>9}\n"
        )
        rows = self.flat()
        if top is not None:
            rows = rows[:top]
        for e in rows:
            buf.write(
                f"{e.pct_time:>6.2f} {e.cumulative_s:>10.2f} {e.self_s:>9.2f} "
                f"{e.calls:>9} {e.func}\n"
            )
        return buf.getvalue()


class GprofObserver(Observer):
    """Attach to a run to collect a gprof profile.

    ``call_overhead_ns`` models mcount: the engine charges it to the profiled
    thread on every function entry, so a gprof-instrumented run is *slower*
    (the paper's overhead comparison in §4.4).
    """

    wants_samples = False
    # gprof's self-time comes from exact on_work accounting, not samples;
    # the flag keeps a future wants_samples flip from forcing scalar
    # materialization (Observer.on_sample_batch iterates either shape)
    accepts_columnar = True

    def __init__(self, call_overhead_ns: int = 150) -> None:
        self.call_overhead_ns = call_overhead_ns
        self._self_ns: Counter = Counter()
        self._calls: Counter = Counter()
        self._edges: Counter = Counter()
        self._total_ns = 0

    # Top-level code (an empty func/caller string) is interned as "<main>"
    # *here*, at the observer boundary, so every counter agrees on the key.
    # Normalizing only in on_work — as an earlier version did — left the
    # "<main>" flat row with calls=0 and split its outgoing edges under a
    # second name.

    def on_call(self, thread: VThread, func: str, caller: str) -> None:
        self._calls[func or "<main>"] += 1
        self._edges[(caller or "<main>", func or "<main>")] += 1

    def on_thread_created(self, thread: VThread, parent: Optional[VThread]) -> None:
        # entering a thread's top-level code is the one "call" of <main>
        self._calls["<main>"] += 1
        self._edges[("<spontaneous>", "<main>")] += 1

    def on_work(self, thread: VThread, line: SourceLine, func: str, nominal_ns: int) -> None:
        self._self_ns[func or "<main>"] += nominal_ns
        self._total_ns += nominal_ns

    def profile(self) -> GprofProfile:
        return GprofProfile(self._self_ns, self._calls, self._edges, self._total_ns)
