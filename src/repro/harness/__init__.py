"""Evaluation harness: profiling runs, before/after comparisons, overhead
breakdowns, and prediction-accuracy studies — the machinery behind every
table and figure in the paper's evaluation (§4).

Multi-run sessions share the process-parallel executor in
:mod:`repro.harness.parallel`: pass ``jobs=N`` (or ``jobs=0`` for
cpu-count-aware auto sizing) to fan independent runs out over worker
processes with results bit-identical to serial execution."""

from repro.harness.comparison import compare_app, compare_builds, measure_runtimes
from repro.harness.journal import JournalError, JournalRecord, SessionJournal
from repro.harness.overhead import OverheadBreakdown, measure_overhead
from repro.harness.parallel import (
    AUTO_JOBS,
    ParallelExecutionWarning,
    RetryPolicy,
    RunOutput,
    RunTask,
    Watchdog,
    execute_tasks,
    resolve_jobs,
)
from repro.harness.request import ExecutionConfig, ResilienceConfig
from repro.harness.runner import (
    ProfileOutcome,
    ProfileRequest,
    profile_app,
    profile_program,
    run_profile_session,
    session_fingerprint,
)

__all__ = [
    "AUTO_JOBS",
    "ExecutionConfig",
    "JournalError",
    "JournalRecord",
    "OverheadBreakdown",
    "ParallelExecutionWarning",
    "ProfileOutcome",
    "ProfileRequest",
    "ResilienceConfig",
    "RetryPolicy",
    "RunOutput",
    "RunTask",
    "SessionJournal",
    "Watchdog",
    "compare_app",
    "compare_builds",
    "execute_tasks",
    "measure_overhead",
    "measure_runtimes",
    "profile_app",
    "profile_program",
    "resolve_jobs",
    "run_profile_session",
    "session_fingerprint",
]
