"""Evaluation harness: profiling runs, before/after comparisons, overhead
breakdowns, and prediction-accuracy studies — the machinery behind every
table and figure in the paper's evaluation (§4)."""

from repro.harness.runner import profile_app, profile_program
from repro.harness.comparison import compare_builds, measure_runtimes

__all__ = [
    "profile_app",
    "profile_program",
    "compare_builds",
    "measure_runtimes",
]
