"""Engine performance microbenchmarks (the ``repro bench`` subcommand).

Every figure and table in this reproduction is bottlenecked on
``Engine.run``, so the engine's own throughput is a first-class deliverable
tracked across PRs.  This module runs a fixed matrix of profile-session
microbenchmarks over the bundled apps and emits ``BENCH_engine.json`` with
four throughput metrics per cell:

* ``wall_s`` / ``wall_s_per_run`` — best-of-``repeats`` wall-clock time;
* ``events_per_sec`` — simulator heap events processed per wall second;
* ``virtual_ns_per_wall_s`` — virtual nanoseconds simulated per wall second
  (the "how much slower than the hardware" north-star metric);
* ``samples`` — total IP samples taken (a workload-size sanity check: the
  simulated work is deterministic, so this must not change run to run).

The matrix covers three apps (example, ferret, sqlite) in eight variants:

``session``
    the public ``run_profile_session`` path, serial, default config —
    ``ferret/session`` is the canonical acceptance microbench;
``nosampling``
    the same session with ``enable_sampling=False`` (engine cost with the
    sampling machinery off);
``program``
    per-run ``Program.run`` loop with a fresh profiler per run (the
    session path minus merge/report, used as the base for ratios);
``nojitter``
    like ``program`` with ``sample_phase_jitter=False``;
``legacy``
    like ``program`` pinned to the full pre-overhaul configuration:
    ``coalesce=False`` (quantum-chunked event loop), ``backend="pure"``
    (no compiled core) and ``columnar_samples=False`` (scalar sample
    pipeline).  ``summary.speedup_vs_legacy`` = ``legacy.wall_s /
    program.wall_s`` is the reproducible, same-process measure of what
    the whole coalescing + columnar + compiled-dispatch stack buys on
    each workload;
``checkpoint``
    the ``session`` cell with checkpoint fast-forward on
    (:mod:`repro.harness.checkpoint`): one untimed populate pass records
    prefix snapshots, then every timed trial resumes warm.
    ``summary.checkpoint_speedup`` = ``session.wall_s /
    checkpoint.wall_s`` records what snapshot/resume buys per app — and
    because the resumed sessions are bit-identical, the cell's
    deterministic metrics double as an identity check against the
    ``session`` cell (mismatches warn);
``service``
    the profiling-service acceptance cell: a fresh in-process daemon
    (:mod:`repro.harness.service`) per repeat, timing a cold
    submit-and-wait round trip over the Unix socket, then duplicate
    no-wait submissions of a second spec (in-flight dedup), then a warm
    resubmit of the completed spec (result-cache round trip).  ``extra``
    records ``cold_submit_s``, ``warm_submit_s``, ``dedup_hit_rate`` and
    the daemon's own cache/queue counters; ``summary.service`` promotes
    the warm-submit latency and dedup hit-rate per app.  Skipped (with a
    warning) on platforms without ``AF_UNIX`` sockets;
``planner``
    the adaptive-planner acceptance cell: an untimed static baseline
    session followed by a timed adaptive session (``--planner adaptive``)
    with the same budget.  ``summary.planner_efficiency`` records, per
    app, ``experiments_ratio`` (adaptive experiments / static
    experiments — the acceptance bar is <= 0.6) and ``ci_ok`` (the
    adaptive profile's replicated bootstrap SEs on static's top-ranked
    line are no wider than static's, or than the convergence target where
    static itself never replicated a point).  Singleton points are
    excluded from the CI comparison — resampling one value yields a ~0
    SE that says nothing about variance.  This cell runs more runs
    (8 full / 3 quick) than the timing cells so the static baseline has
    replicated measurements to compare against, and sqlite's cell runs
    shorter experiments (``PLANNER_CELL_CFG``) so a run holds more than
    ~3 of them;
``harness``
    the warm-worker data-plane acceptance cell (ferret only): one cold
    populate pass, then best-of-``HARNESS_TRIALS`` warm serial and warm
    parallel (``jobs=HARNESS_JOBS``, batched dispatch) sessions over the
    same checkpoint cache.  ``extra`` records both walls, the per-run
    pool dispatch overhead, and the merged profile's size on the JSON and
    binary wires; ``summary.harness`` promotes them (plus the parallel
    cell's ``events_per_sec``) per app, and :func:`check_regression`
    gates those numbers against the recorded history in CI.

Wall-clock numbers are noisy on shared machines; the sim-side metrics
(``virtual_ns``, ``events``, ``samples``) are bit-deterministic and double
as a cheap identity check.  ``--quick`` shrinks runs/repeats for CI smoke
jobs (no timing thresholds there — crash detection only); quick documents
are tagged ``quick: true`` and their history entries are excluded from
cross-PR baseline comparisons (:func:`baseline_history`).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.apps import registry
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.harness.request import ExecutionConfig
from repro.harness.runner import ProfileRequest, run_profile_session
from repro.plan import PlanConfig
from repro.sim.clock import MS

SCHEMA = "bench-engine/v1"

#: the fixed app matrix every ``repro bench`` invocation runs
MATRIX_APPS = ("example", "ferret", "sqlite")

#: variant name -> (mode, coz overrides, sim overrides, bench options)
VARIANTS = {
    "session": ("session", {}, {}, {}),
    "nosampling": ("session", {"enable_sampling": False}, {}, {}),
    "program": ("program", {}, {}, {}),
    "nojitter": ("program", {}, {"sample_phase_jitter": False}, {}),
    "legacy": (
        "program",
        {},
        {"coalesce": False, "backend": "pure", "columnar_samples": False},
        {},
    ),
    "checkpoint": ("session", {}, {}, {"checkpoint": True}),
    "planner": ("planner", {}, {}, {}),
    "service": ("service", {}, {}, {}),
    "harness": ("harness", {}, {}, {}),
}

#: worker processes the ``harness`` cell pins — the acceptance protocol is
#: fixed so its numbers are comparable across PRs and machines
HARNESS_JOBS = 4
#: timed trials per leg inside the harness cell (best wall wins)
HARNESS_TRIALS = 2
#: apps the harness cell runs on (ferret is the canonical acceptance
#: workload; the cell measures the executor, not the app, so one app is
#: enough and keeps the matrix affordable)
HARNESS_APPS = ("ferret",)

#: planner-cell per-app profiler overrides: sqlite's default 50 ms
#: experiments fit only ~3 experiments in a whole run, which no schedule —
#: static or adaptive — can meaningfully allocate, so its cell runs
#: shorter experiments (identical on both sides of the comparison)
PLANNER_CELL_CFG: Dict[str, Dict] = {
    "sqlite": {"experiment_duration_ns": MS(10), "cooloff_ns": MS(2)},
}

#: per-point bootstrap-SE convergence target the planner cell's adaptive
#: session stops at (see ``summary.planner_efficiency``)
PLANNER_SE_TARGET = 0.04


@dataclass
class BenchCell:
    """One (app, variant) microbenchmark definition."""

    app: str
    variant: str
    runs: int
    repeats: int

    @property
    def name(self) -> str:
        return f"{self.app}/{self.variant}"


@dataclass
class CellResult:
    """Measured outcome of one cell (see module docstring for metrics)."""

    name: str
    app: str
    variant: str
    mode: str
    runs: int
    repeats: int
    wall_s: float                      # best (min) across repeats
    wall_s_all: List[float] = field(default_factory=list)
    virtual_ns: int = 0                # summed over the cell's runs
    events: int = 0
    samples: int = 0
    backend: str = ""                  # resolved engine backend ('pure'/'accel')
    pipeline: str = ""                 # sample pipeline ('columnar'/'scalar')
    extra: Optional[Dict] = None       # variant-specific metrics (planner cell)

    def to_json(self) -> Dict:
        wall = self.wall_s
        doc = {
            "name": self.name,
            "app": self.app,
            "variant": self.variant,
            "mode": self.mode,
            "backend": self.backend,
            "pipeline": self.pipeline,
            "runs": self.runs,
            "repeats": self.repeats,
            "wall_s": round(wall, 4),
            "wall_s_all": [round(w, 4) for w in self.wall_s_all],
            "wall_s_per_run": round(wall / self.runs, 4),
            "virtual_ns": self.virtual_ns,
            "events": self.events,
            "samples": self.samples,
            "events_per_sec": round(self.events / wall) if wall else None,
            "virtual_ns_per_wall_s": round(self.virtual_ns / wall) if wall else None,
        }
        if self.extra:
            doc["extra"] = self.extra
        return doc


def default_matrix(
    quick: bool = False,
    apps: Optional[List[str]] = None,
    variants: Optional[List[str]] = None,
) -> List[BenchCell]:
    """The fixed cell matrix (shrunk runs/repeats under ``--quick``).

    ``variants`` restricts the matrix to the named variants (used by the
    CI perf gate to run just the full-scale ``harness`` cell).  The
    planner cell gets more runs than the timing cells (and a single
    repeat — its sessions are deterministic, so repeats only re-time
    identical work): the efficiency comparison needs a static baseline
    long enough to replicate its measurements.
    """
    import socket as socket_mod

    runs = 2 if quick else 5
    repeats = 1 if quick else 3
    has_unix_sockets = hasattr(socket_mod, "AF_UNIX")
    cells = []
    for app in apps or MATRIX_APPS:
        for variant in variants or VARIANTS:
            if variant not in VARIANTS:
                raise ValueError(
                    f"unknown bench variant {variant!r}; "
                    f"available: {', '.join(VARIANTS)}"
                )
            if variant == "planner":
                cells.append(
                    BenchCell(app=app, variant=variant, runs=3 if quick else 8, repeats=1)
                )
            elif variant == "harness":
                if app not in HARNESS_APPS:
                    continue
                # one repeat: the cell runs its own best-of-N trials per
                # leg (serial and parallel) over one shared warm cache
                cells.append(BenchCell(
                    app=app, variant=variant,
                    runs=6 if quick else 20, repeats=1,
                ))
            elif variant == "service":
                if not has_unix_sockets:
                    warnings.warn(
                        "no AF_UNIX sockets on this platform; skipping the "
                        "service bench cells",
                        stacklevel=2,
                    )
                    continue
                # one repeat: each trial spins up (and tears down) its own
                # daemon, and the deterministic warm/dedup paths don't vary
                cells.append(BenchCell(app=app, variant=variant, runs=runs, repeats=1))
            else:
                cells.append(BenchCell(app=app, variant=variant, runs=runs, repeats=repeats))
    return cells


def _run_session_cell(cell: BenchCell, coz_over: Dict, checkpoint: bool = False) -> Dict:
    # checkpoint is pinned per variant: the plain session cell must stay a
    # cold baseline (comparable across PRs) even though the public request
    # defaults checkpointing on
    spec = registry.build(cell.app)
    cfg = replace(CozConfig(scope=spec.scope), **coz_over) if coz_over else None
    out = run_profile_session(
        spec,
        ProfileRequest(
            runs=cell.runs,
            coz_config=cfg,
            execution=ExecutionConfig(jobs=1, checkpoint=checkpoint),
        ),
    )
    return _session_metrics(out)


def _session_metrics(out) -> Dict:
    return {
        "virtual_ns": sum(r.runtime_ns for r in out.run_results),
        "events": sum(r.events_processed for r in out.run_results),
        "samples": sum(r.sample_count for r in out.run_results),
    }


def _planner_request(cell: BenchCell, spec, adaptive: bool) -> ProfileRequest:
    # both sides of the comparison share the app config and run cold; only
    # the plan differs, so any experiment-count delta is the planner's
    over = PLANNER_CELL_CFG.get(cell.app)
    cfg = replace(CozConfig(scope=spec.scope), **over) if over else None
    plan = None
    if adaptive:
        plan = PlanConfig(
            planner="adaptive",
            budget=cell.runs,
            se_target=PLANNER_SE_TARGET,
            explore_runs=1,
        )
    return ProfileRequest(
        runs=cell.runs,
        coz_config=cfg,
        execution=ExecutionConfig(jobs=1, checkpoint=False),
        plan=plan,
    )


def _replicated_se(profile, line) -> Optional[float]:
    # singleton bootstrap SEs understate variance (resampling one value
    # yields ~0), so CI-width comparisons only trust replicated points
    lp = profile.get(line)
    if lp is None:
        return None
    ses = [p.se for p in lp.points if p.speedup_pct > 0 and p.n_experiments >= 2]
    return max(ses) if ses else None


def _planner_extra(static_out, adaptive_out) -> Dict:
    """The planner cell's acceptance metrics (see ``planner_efficiency``)."""
    s_exp = len(static_out.data.experiments)
    a_exp = len(adaptive_out.data.experiments)
    report = adaptive_out.plan
    base = {
        "se_target": PLANNER_SE_TARGET,
        "experiments_static": s_exp,
        "experiments_adaptive": a_exp,
        "experiments_ratio": round(a_exp / s_exp, 3) if s_exp else None,
        "rounds": report.rounds if report else None,
        "runs_planned": report.runs_planned if report else None,
    }
    if not static_out.profile.lines:
        # a --quick cell can be too short for static to profile anything;
        # there is no CI comparison to make, only the ratio above
        return dict(base, top_line=None, ci_ok=None)
    # compare CI widths on static's sample-hottest profiled line: slope
    # rank #1 flips with noise on an evenly-spread static schedule, but
    # the hottest line is determined by the app alone — and it is the
    # line an optimizer would actually chase
    top = max(
        (lp.line for lp in static_out.profile.lines),
        key=lambda ln: (static_out.data.total_line_samples(ln), ln),
    )
    s_se = _replicated_se(static_out.profile, top)
    a_se = _replicated_se(adaptive_out.profile, top)
    # adaptive must match static's replicated CI width on that line (or
    # the convergence target where static itself never replicated)
    bound = max(s_se if s_se is not None else PLANNER_SE_TARGET, PLANNER_SE_TARGET)
    return dict(
        base,
        top_line=str(top),
        static_top_rep_se=round(s_se, 4) if s_se is not None else None,
        adaptive_top_rep_se=round(a_se, 4) if a_se is not None else None,
        ci_ok=a_se is not None and a_se <= bound,
    )


def _run_service_cell(cell: BenchCell) -> Dict:
    """One daemon lifecycle: cold submit, dedup burst, warm resubmit.

    Runs entirely in-process (daemon threads + a real Unix socket in a
    throwaway state dir), so the timings include genuine wire round trips
    without any subprocess noise.  Returns the session metrics plus an
    ``extra`` dict under the ``"extra"`` key.
    """
    import shutil
    import tempfile

    from repro.harness.checkpoint import clear_memory_cache
    from repro.harness.service import (
        JobSpec,
        ServiceClient,
        ServiceConfig,
        ServiceDaemon,
        TenantPolicy,
    )

    state_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    # the cold submit must be genuinely cold: no leftover checkpoint
    # snapshots from earlier cells
    clear_memory_cache()
    daemon = ServiceDaemon(ServiceConfig(
        state_dir=state_dir,
        workers=2,
        policy=TenantPolicy(rate_per_s=1000.0, burst=1000),
    ))
    daemon.start()
    try:
        client = ServiceClient(daemon.config.sock)
        if not client.wait_until_ready(10.0):
            raise RuntimeError("bench service daemon never became ready")
        spec = JobSpec(tenant="bench", app=cell.app, runs=cell.runs)
        t0 = time.perf_counter()
        cold = client.submit(spec, wait_s=600.0)
        cold_submit_s = time.perf_counter() - t0
        if not cold.get("ok") or not cold.get("result"):
            raise RuntimeError(f"bench service cold submit failed: {cold}")
        result = cold["result"]

        # in-flight dedup: duplicate no-wait submissions of different work
        dup_spec = JobSpec(tenant="bench", app=cell.app, runs=cell.runs,
                           base_seed=1000)
        first = client.submit(dup_spec)
        dups = [client.submit(dup_spec) for _ in range(3)]
        if first.get("job_id"):
            client.wait(first["job_id"], timeout_s=600.0)
        dedup_hits = sum(1 for d in dups if d.get("dedup") or d.get("cached"))

        # warm resubmit: the content-addressed result cache round trip
        t0 = time.perf_counter()
        warm = client.submit(spec, wait_s=600.0)
        warm_submit_s = time.perf_counter() - t0

        status = client.status().get("status", {})
        metrics = result.get("metrics", {})
        return {
            "virtual_ns": metrics.get("virtual_ns", 0),
            "events": metrics.get("events", 0),
            "samples": metrics.get("samples", 0),
            "extra": {
                "cold_submit_s": round(cold_submit_s, 4),
                "warm_submit_s": round(warm_submit_s, 4),
                "warm_cached": bool(warm.get("cached")),
                "dedup_hit_rate": round(dedup_hits / len(dups), 3) if dups else None,
                "cache_hit_rate": status.get("cache", {}).get("hit_rate"),
                "queue_latency_avg_s": status.get("queue", {}).get("latency_avg_s"),
            },
        }
    finally:
        daemon.stop()
        shutil.rmtree(state_dir, ignore_errors=True)


def _run_harness_cell(cell: BenchCell) -> Dict:
    """Warm-path executor overhead: serial vs parallel over a hot cache.

    One untimed cold pass populates the in-memory checkpoint cache, then
    the warm serial and warm parallel (``jobs=HARNESS_JOBS``, auto-sized
    :class:`~repro.harness.parallel.RunBatch` dispatch) sessions each run
    ``HARNESS_TRIALS`` times; best wall wins.  The parallel profile must
    be bit-identical to the serial one (warned otherwise and recorded in
    ``extra.identical``).  ``dispatch_overhead_per_run_ms`` is the pool's
    per-run round-trip cost net of ideal-speedup compute,
    ``(parallel - serial/jobs) / runs``; on machines with fewer cores
    than ``HARNESS_JOBS`` the parallel leg is time-sliced, so the number
    is an upper bound.  ``bytes_per_run_json`` / ``bytes_per_run_binary``
    size the merged profile on each wire.
    """
    from repro.harness.checkpoint import clear_memory_cache
    from repro.harness.parallel import auto_batch_size

    def _request(jobs: int) -> ProfileRequest:
        return ProfileRequest(
            runs=cell.runs, execution=ExecutionConfig(jobs=jobs),
        )

    clear_memory_cache()
    run_profile_session(registry.build(cell.app), _request(1))  # populate

    def _timed(jobs: int):
        best = None
        out = None
        for _ in range(HARNESS_TRIALS):
            t0 = time.perf_counter()
            out = run_profile_session(registry.build(cell.app), _request(jobs))
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        return best, out

    serial_s, serial_out = _timed(1)
    parallel_s, parallel_out = _timed(HARNESS_JOBS)
    identical = parallel_out.data == serial_out.data
    if not identical:
        warnings.warn(
            f"{cell.app}: warm parallel session is NOT bit-identical to "
            f"the warm serial session",
            stacklevel=2,
        )
    json_bytes = len(parallel_out.data.to_json().encode("utf-8"))
    bin_bytes = len(parallel_out.data.to_bytes())
    overhead_ms = (parallel_s - serial_s / HARNESS_JOBS) / cell.runs * 1000.0
    metrics = _session_metrics(parallel_out)
    metrics["extra"] = {
        "jobs": HARNESS_JOBS,
        "batch_runs": auto_batch_size(cell.runs, HARNESS_JOBS),
        "warm_serial_wall_s": round(serial_s, 4),
        "warm_parallel_wall_s": round(parallel_s, 4),
        "dispatch_overhead_per_run_ms": round(overhead_ms, 3),
        "bytes_per_run_json": json_bytes // cell.runs,
        "bytes_per_run_binary": bin_bytes // cell.runs,
        "wire_ratio": round(json_bytes / bin_bytes, 2) if bin_bytes else None,
        "identical": identical,
    }
    # the cell's wall is the timed parallel leg, not the whole protocol
    metrics["_wall_s"] = parallel_s
    return metrics


def _run_program_cell(cell: BenchCell, coz_over: Dict, sim_over: Dict) -> Dict:
    # mirrors harness.parallel._run_task (seed i, profiler seeded the same),
    # with the engine config overridden per variant
    spec = registry.build(cell.app)
    virtual = events = samples = 0
    for i in range(cell.runs):
        cfg = replace(CozConfig(scope=spec.scope), seed=i, **coz_over)
        prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
        program = spec.build(i)
        config = replace(program.config, **sim_over) if sim_over else None
        result = program.run(hook=prof, config=config)
        virtual += result.runtime_ns
        events += result.events_processed
        samples += result.sample_count
    return {"virtual_ns": virtual, "events": events, "samples": samples}


def run_cell(cell: BenchCell) -> CellResult:
    """Measure one cell: ``repeats`` timed trials, best wall wins."""
    mode, coz_over, sim_over, opts = VARIANTS[cell.variant]
    checkpoint = bool(opts.get("checkpoint"))
    if checkpoint:
        # one untimed populate pass from an empty cache: every timed trial
        # below then measures the warm resume path, which is the thing the
        # checkpoint cell exists to track
        from repro.harness.checkpoint import clear_memory_cache

        clear_memory_cache()
        _run_session_cell(cell, coz_over, checkpoint=True)
    extra: Optional[Dict] = None
    static_out = None
    if mode == "planner":
        # the static baseline is deterministic and not what this cell
        # times, so it runs once, untimed, like the checkpoint populate
        spec = registry.build(cell.app)
        static_out = run_profile_session(spec, _planner_request(cell, spec, adaptive=False))
    walls: List[float] = []
    metrics: Dict = {}
    for _ in range(cell.repeats):
        t0 = time.perf_counter()
        if mode == "session":
            metrics = _run_session_cell(cell, coz_over, checkpoint=checkpoint)
        elif mode == "service":
            metrics = dict(_run_service_cell(cell))
            extra = metrics.pop("extra")
        elif mode == "planner":
            spec = registry.build(cell.app)
            out = run_profile_session(spec, _planner_request(cell, spec, adaptive=True))
            metrics = _session_metrics(out)
            extra = _planner_extra(static_out, out)
        elif mode == "harness":
            metrics = dict(_run_harness_cell(cell))
            extra = metrics.pop("extra")
        else:
            metrics = _run_program_cell(cell, coz_over, sim_over)
        walls.append(time.perf_counter() - t0)
    if mode == "harness" and "_wall_s" in metrics:
        walls = [metrics.pop("_wall_s")]
    # record how the cell actually executed: the variant's pinned values
    # where set, else the process defaults the engines resolved to — so a
    # document read in isolation says which backend/pipeline it measured
    from repro.sim import backend as backend_mod

    columnar = sim_over.get("columnar_samples")
    if columnar is None:
        columnar = backend_mod.default_columnar()
    return CellResult(
        name=cell.name,
        app=cell.app,
        variant=cell.variant,
        mode=mode,
        runs=cell.runs,
        repeats=cell.repeats,
        wall_s=min(walls),
        wall_s_all=walls,
        backend=backend_mod.resolve_backend(sim_over.get("backend")),
        pipeline="columnar" if columnar else "scalar",
        extra=extra,
        **metrics,
    )


def run_bench(
    quick: bool = False,
    apps: Optional[List[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    variants: Optional[List[str]] = None,
) -> Dict:
    """Run the full matrix and return the ``BENCH_engine.json`` document."""
    cells = []
    for cell in default_matrix(quick=quick, apps=apps, variants=variants):
        if progress is not None:
            progress(f"bench {cell.name} (runs={cell.runs} x{cell.repeats})")
        cells.append(run_cell(cell))

    by_name = {c.name: c for c in cells}
    speedup_vs_legacy = {}
    checkpoint_speedup = {}
    planner_efficiency = {}
    service_summary = {}
    harness_summary = {}
    for app in dict.fromkeys(c.app for c in cells):
        harness = by_name.get(f"{app}/harness")
        if harness and harness.extra:
            harness_summary[app] = dict(
                {
                    k: harness.extra[k]
                    for k in (
                        "warm_serial_wall_s",
                        "warm_parallel_wall_s",
                        "dispatch_overhead_per_run_ms",
                        "bytes_per_run_json",
                        "bytes_per_run_binary",
                        "wire_ratio",
                        "identical",
                    )
                    if k in harness.extra
                },
                events_per_sec=(
                    round(harness.events / harness.wall_s)
                    if harness.wall_s else None
                ),
            )
        service = by_name.get(f"{app}/service")
        if service and service.extra:
            service_summary[app] = {
                k: service.extra[k]
                for k in ("warm_submit_s", "dedup_hit_rate", "cache_hit_rate")
                if k in service.extra
            }
        planner = by_name.get(f"{app}/planner")
        if planner and planner.extra:
            planner_efficiency[app] = {
                k: planner.extra[k]
                for k in ("experiments_ratio", "ci_ok", "top_line")
                if k in planner.extra
            }
        base = by_name.get(f"{app}/program")
        legacy = by_name.get(f"{app}/legacy")
        if base and legacy and base.wall_s:
            speedup_vs_legacy[app] = round(legacy.wall_s / base.wall_s, 3)
        cold = by_name.get(f"{app}/session")
        warm = by_name.get(f"{app}/checkpoint")
        if cold and warm and warm.wall_s:
            checkpoint_speedup[app] = round(cold.wall_s / warm.wall_s, 3)
            # the resumed sessions claim bit-identity with the cold ones;
            # the deterministic metrics are a free cross-check
            if (cold.virtual_ns, cold.events, cold.samples) != (
                warm.virtual_ns,
                warm.events,
                warm.samples,
            ):
                warnings.warn(
                    f"{app}: checkpoint cell metrics differ from the cold "
                    f"session cell — snapshot resume is NOT bit-identical",
                    stacklevel=2,
                )

    from repro.sim import backend as backend_mod

    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    doc = {
        "schema": SCHEMA,
        "generated_unix": int(time.time()),
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": numpy_version,
            "accel_built": backend_mod.accel_available(),
        },
        "backend": backend_mod.resolve_backend(None),
        "cells": [c.to_json() for c in cells],
        "summary": {
            "speedup_vs_legacy": speedup_vs_legacy,
            "checkpoint_speedup": checkpoint_speedup,
            "planner_efficiency": planner_efficiency,
            "service": service_summary,
            "harness": harness_summary,
            "ferret_session_wall_s": (
                round(by_name["ferret/session"].wall_s, 4)
                if "ferret/session" in by_name
                else None
            ),
        },
        "history": [],
    }
    return doc


def baseline_history(
    history: List[Dict], backend: Optional[str] = None
) -> List[Dict]:
    """History entries usable as cross-PR performance baselines.

    ``--quick`` runs exist for CI crash detection only — their tiny
    runs/repeats make the timings meaningless — so their entries carry
    ``quick: true`` and are excluded from any ``speedup_vs_legacy`` /
    ``checkpoint_speedup`` trajectory comparison.  Entries written before
    the tag existed have no ``quick`` key and count as full runs.

    When ``backend`` is given, entries recorded under a *different* engine
    backend are excluded too: a pure-backend wall time is not a baseline
    for an accel run.  Entries predating the tag ran before the compiled
    core existed and count as ``"pure"``.
    """
    usable = [h for h in history if not h.get("quick")]
    if backend is not None:
        usable = [h for h in usable if h.get("backend", "pure") == backend]
    return usable


def check_regression(
    doc: Dict, history: Optional[List[Dict]] = None, pct: float = 25.0
) -> List[str]:
    """Gate a fresh bench document against the recorded cross-PR history.

    Compares the ``harness`` cell's summary — throughput
    (``events_per_sec``, lower is worse) and pool dispatch overhead
    (``dispatch_overhead_per_run_ms``, higher is worse) — against the most
    recent usable baseline entry: a full (non-``--quick``) run recorded
    under the same engine backend (:func:`baseline_history`) whose summary
    carries a ``harness`` section.  A metric regresses when it is more
    than ``pct`` percent worse than the baseline.  Overhead baselines
    under 1 ms/run are not gated — at that magnitude the comparison is
    scheduler noise, not dispatch cost.  Returns human-readable
    regression descriptions; an empty list means pass (including when no
    usable baseline exists yet — a fresh gate has nothing to compare).
    """
    if history is None:
        history = doc.get("history", [])
    usable = baseline_history(history, backend=doc.get("backend"))
    baseline: Optional[Dict] = None
    for entry in reversed(usable):
        harness = (entry.get("summary") or {}).get("harness") or {}
        if harness:
            baseline = harness
            break
    if baseline is None:
        return []
    current = (doc.get("summary") or {}).get("harness") or {}
    problems: List[str] = []
    for app, base_m in baseline.items():
        cur_m = current.get(app)
        if not isinstance(base_m, dict) or not isinstance(cur_m, dict):
            continue
        b_eps = base_m.get("events_per_sec")
        c_eps = cur_m.get("events_per_sec")
        if b_eps and c_eps and c_eps < b_eps * (1.0 - pct / 100.0):
            problems.append(
                f"{app}/harness events_per_sec {c_eps:,} is more than "
                f"{pct:g}% below the baseline {b_eps:,}"
            )
        b_ov = base_m.get("dispatch_overhead_per_run_ms")
        c_ov = cur_m.get("dispatch_overhead_per_run_ms")
        if (
            b_ov is not None and c_ov is not None and b_ov >= 1.0
            and c_ov > b_ov * (1.0 + pct / 100.0)
        ):
            problems.append(
                f"{app}/harness dispatch_overhead_per_run_ms {c_ov:g} is "
                f"more than {pct:g}% above the baseline {b_ov:g}"
            )
    return problems


def write_bench(doc: Dict, path: str) -> None:
    """Write the document, carrying forward any recorded ``history``.

    ``history`` is the cross-PR perf trajectory: a list of hand-promoted
    summary entries (see EXPERIMENTS.md).  A fresh bench run must never
    erase it, so the writer merges the existing file's history in.  A
    missing prior file is the normal first run; a corrupt or unreadable
    one is tolerated with a warning (the bench starts a fresh history
    rather than raising away a finished measurement).
    """
    history: List = []
    if os.path.exists(path):
        try:
            with open(path) as f:
                prev = json.load(f)
            history = prev.get("history", [])
            if not isinstance(history, list):
                raise ValueError(f"history is {type(history).__name__}, not a list")
        except (OSError, ValueError) as exc:
            history = []
            warnings.warn(
                f"prior bench history at {path} is unreadable "
                f"({type(exc).__name__}: {exc}); starting a fresh history",
                stacklevel=2,
            )
    doc = dict(doc, history=history + list(doc.get("history", [])))
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
