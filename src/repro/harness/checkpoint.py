"""Checkpoint store and warm-run orchestration for the fast-forward path.

The snapshot machinery (:mod:`repro.sim.snapshot`) captures one run's state
mid-flight; this module decides *which* runs get to reuse those captures.
Because run ``i`` of a session is always seeded ``base_seed + i``, a run is
bit-identical to any earlier execution of the same (session configuration,
seed) pair — so the store keys checkpoints by a canonical *run fingerprint*
(derived with the same :func:`~repro.harness.journal.canonical` machinery
the journal uses) plus the per-run seed.

Storage is two-level:

* a process-global in-memory LRU, so repeated sessions in one process
  (bench warm trials, doctor identity checks, back-to-back CLI sessions)
  resume without touching disk;
* an optional on-disk cache directory, shared between the parent and pool
  workers and across processes.  The directory carries a ``MANIFEST.json``
  recording the run fingerprint and snapshot version; on mismatch the
  cache is *invalidated with a warning* — a stale checkpoint is never
  silently reused (it would poison bit-identity guarantees).

:func:`execute_run` is the single entry point the executor uses: resume
from a supplied or stored snapshot when possible, fall back to a cold run
(rebuilding the program from scratch — a partially-replayed program has
dirty closures), and record fresh checkpoints on the way through.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import warnings
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Callable, Optional, Tuple

try:  # advisory cross-process locking; POSIX-only, degrades to none
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.harness.journal import canonical
from repro.sim.snapshot import (
    SNAPSHOT_VERSION,
    EngineSnapshot,
    Recorder,
    SnapshotError,
)

__all__ = [
    "CheckpointStore",
    "SnapshotRef",
    "SnapshotWire",
    "checkpoint_fingerprint",
    "execute_run",
    "resolve_shipped",
    "clear_memory_cache",
]

_MANIFEST = "MANIFEST.json"
_MANIFEST_SCHEMA = "checkpoint-cache/v1"

#: process-global LRU of deepest checkpoints, keyed (fingerprint, seed).
#: Pool workers forked from a warm parent inherit this populated — the
#: parallel executor ships :class:`SnapshotRef` markers instead of payloads
#: whenever that is the case, so warm fan-out costs no snapshot bytes.
_MEMORY: "OrderedDict[Tuple[str, int], EngineSnapshot]" = OrderedDict()
_MEMORY_CAP = 64

#: process-global store instances, keyed (fingerprint, directory): opening
#: a directory validates its manifest under a file lock, which a pool
#: worker must pay once per session, not once per task
_SHARED_STORES: dict = {}


class CheckpointCacheWarning(UserWarning):
    """A checkpoint cache was stale, unreadable, or unwritable."""


@contextlib.contextmanager
def _dir_lock(directory: str):
    """Advisory exclusive lock on a cache directory's ``.lock`` file.

    Serializes manifest validation/initialization across processes: two
    workers opening the same cache directory concurrently would otherwise
    interleave manifest writes (and the loser would see a half-initialized
    directory and spuriously invalidate it).  Checkpoint *payload* writes
    do not need the lock — per-file ``os.replace`` is already atomic and
    snapshots are deterministic per (fingerprint, seed), so concurrent
    populates are last-writer-wins with identical bytes.

    Degrades to no locking where ``fcntl`` is unavailable or the lock file
    cannot be created; the caller's own failure handling still applies.
    """
    if fcntl is None:
        yield
        return
    fh = None
    try:
        fh = open(os.path.join(directory, ".lock"), "a+")
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
    except OSError:
        fh = None  # locking is best-effort; fall through unlocked
    try:
        yield
    finally:
        if fh is not None:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            fh.close()


def clear_memory_cache() -> None:
    """Drop every in-memory checkpoint (tests, and bench cold baselines)."""
    _MEMORY.clear()
    _SHARED_STORES.clear()


def checkpoint_fingerprint(spec, coz_config, faults) -> str:
    """Canonical fingerprint of everything that shapes a run's trajectory.

    The per-run seed is normalized out (it is part of the store key
    instead), as is the observational ``audit`` flag — audited sessions
    never checkpoint anyway.  Only registry-referenced apps are
    fingerprintable: an unregistered ``<program>`` spec has no stable
    identity, and colliding checkpoints would be catastrophically wrong.
    """
    if spec.registry_ref is None:
        raise ValueError("only registry-referenced apps can be checkpointed")
    payload = {
        "kind": "checkpoint-run",
        "snapshot_version": SNAPSHOT_VERSION,
        "app": canonical(spec.registry_ref),
        "coz_config": canonical(replace(coz_config, seed=0, audit=False)),
        "faults": canonical(faults),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Deepest-checkpoint store for one run fingerprint.

    ``get``/``put`` address snapshots by seed; the fingerprint is fixed at
    construction.  All disk failures degrade to warnings — a checkpoint
    store must never be able to fail a profiling session.
    """

    def __init__(self, key: str, directory: Optional[str] = None) -> None:
        self.key = key
        self.directory = directory
        if directory is not None:
            self._open_directory()

    @classmethod
    def shared(cls, key: str, directory: Optional[str] = None) -> "CheckpointStore":
        """Process-cached store for ``(key, directory)``.

        Construction with a directory validates the on-disk manifest under
        an advisory lock; the shared instance pays that once per process
        (a pool worker otherwise re-validates on every task).  The cache is
        dropped by :func:`clear_memory_cache`.
        """
        cache_key = (key, directory)
        store = _SHARED_STORES.get(cache_key)
        if store is None:
            store = cls(key, directory=directory)
            _SHARED_STORES[cache_key] = store
        return store

    # ------------------------------------------------------------- memory

    def get(self, seed: int) -> Optional[EngineSnapshot]:
        entry = _MEMORY.get((self.key, seed))
        if entry is not None:
            _MEMORY.move_to_end((self.key, seed))
            return entry
        return self._disk_get(seed)

    def put(self, seed: int, snapshot: EngineSnapshot) -> None:
        _MEMORY[(self.key, seed)] = snapshot
        _MEMORY.move_to_end((self.key, seed))
        while len(_MEMORY) > _MEMORY_CAP:
            _MEMORY.popitem(last=False)
        self._disk_put(seed, snapshot)

    # --------------------------------------------------------------- disk

    def _open_directory(self) -> None:
        """Validate (or initialize) the on-disk cache directory.

        A manifest recording a *different* fingerprint or snapshot version
        means the cache was built for another session configuration or an
        older capture layout: warn, delete every cached checkpoint, and
        rewrite the manifest.  Stale checkpoints are never silently
        reused.
        """
        d = self.directory
        try:
            os.makedirs(d, exist_ok=True)
            # the lock serializes validate-then-initialize across processes:
            # the loser of a concurrent open blocks until the winner's
            # manifest is on disk, sees it match, and touches nothing
            with _dir_lock(d):
                manifest_path = os.path.join(d, _MANIFEST)
                manifest = None
                if os.path.exists(manifest_path):
                    try:
                        with open(manifest_path, "r", encoding="utf-8") as fh:
                            manifest = json.load(fh)
                    except (OSError, ValueError):
                        manifest = {}  # unreadable counts as a mismatch
                expected = {
                    "schema": _MANIFEST_SCHEMA,
                    "fingerprint": self.key,
                    "snapshot_version": SNAPSHOT_VERSION,
                }
                if manifest is not None and manifest != expected:
                    warnings.warn(
                        f"checkpoint cache {d!r} was built for a different "
                        f"session configuration or snapshot version; "
                        f"invalidating it",
                        CheckpointCacheWarning,
                        stacklevel=4,
                    )
                    for name in os.listdir(d):
                        if name.endswith(".ckpt"):
                            try:
                                os.unlink(os.path.join(d, name))
                            except OSError:
                                pass
                if manifest != expected:
                    tmp = f"{manifest_path}.tmp.{os.getpid()}"
                    with open(tmp, "w", encoding="utf-8") as fh:
                        json.dump(expected, fh, indent=2)
                        fh.write("\n")
                    os.replace(tmp, manifest_path)
        except OSError as exc:
            warnings.warn(
                f"checkpoint cache {d!r} unusable ({exc}); "
                f"running without on-disk checkpoints",
                CheckpointCacheWarning,
                stacklevel=4,
            )
            self.directory = None

    def _path(self, seed: int) -> str:
        return os.path.join(self.directory, f"seed-{seed}.ckpt")

    def _disk_get(self, seed: int) -> Optional[EngineSnapshot]:
        if self.directory is None:
            return None
        path = self._path(seed)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            if blob[:4] == EngineSnapshot.WIRE_MAGIC:
                snap = EngineSnapshot.from_bytes(blob)
            else:  # pre-container files: a bare pickle
                snap = pickle.loads(blob)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError, SnapshotError) as exc:
            warnings.warn(
                f"discarding unreadable checkpoint {path!r} ({exc})",
                CheckpointCacheWarning,
                stacklevel=3,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if not isinstance(snap, EngineSnapshot) or snap.version != SNAPSHOT_VERSION:
            return None
        _MEMORY[(self.key, seed)] = snap
        _MEMORY.move_to_end((self.key, seed))
        return snap

    def _disk_put(self, seed: int, snapshot: EngineSnapshot) -> None:
        if self.directory is None:
            return
        path = self._path(seed)
        if os.path.exists(path):
            # snapshots are deterministic per (fingerprint, seed): a file
            # already on disk has the same bytes this writer would produce,
            # so a concurrent populate is first-writer-wins and the loser
            # skips the redundant pickling
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(snapshot.to_bytes())
            os.replace(tmp, path)  # atomic: readers never see a torn file
        except (OSError, pickle.PicklingError) as exc:
            warnings.warn(
                f"could not write checkpoint {path!r} ({exc})",
                CheckpointCacheWarning,
                stacklevel=3,
            )
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ------------------------------------------------------- snapshot shipping


class SnapshotRef:
    """Zero-payload stand-in for a snapshot a pool worker already has.

    On fork platforms, workers inherit the parent's populated
    :data:`_MEMORY` at pool-creation time, so shipping the snapshot again
    is pure waste — the parallel executor sends this (fingerprint, seed)
    marker instead.  Resolution misses (LRU eviction raced the fork, or an
    exotic start method) degrade to the task's disk store or a cold run,
    both bit-identical.
    """

    __slots__ = ("key", "seed")

    def __init__(self, key: str, seed: int) -> None:
        self.key = key
        self.seed = seed

    def __getstate__(self):
        return (self.key, self.seed)

    def __setstate__(self, state):
        self.key, self.seed = state

    def resolve(self, store: Optional[CheckpointStore] = None):
        snap = _MEMORY.get((self.key, self.seed))
        if snap is not None:
            _MEMORY.move_to_end((self.key, self.seed))
            return snap
        if store is not None:
            return store.get(self.seed)
        return None


class SnapshotWire:
    """Pre-encoded snapshot bytes for boundaries that cannot inherit memory.

    The parent encodes once (:meth:`EngineSnapshot.to_bytes`); every
    pickle of the wrapper afterwards is a plain bytes copy, and the worker
    decodes once per (fingerprint, seed) into the process-global memory
    cache, so batch retries and later tasks hit it warm.
    """

    __slots__ = ("key", "seed", "blob")

    def __init__(self, blob: bytes, key: Optional[str] = None, seed: int = 0) -> None:
        self.blob = blob
        self.key = key
        self.seed = seed

    def __getstate__(self):
        return (self.blob, self.key, self.seed)

    def __setstate__(self, state):
        self.blob, self.key, self.seed = state

    @classmethod
    def from_snapshot(
        cls, snap: EngineSnapshot, key: Optional[str] = None, seed: int = 0
    ) -> "SnapshotWire":
        return cls(snap.to_bytes(), key=key, seed=seed)

    def resolve(self, store: Optional[CheckpointStore] = None):
        if self.key is not None:
            cached = _MEMORY.get((self.key, self.seed))
            if cached is not None:
                _MEMORY.move_to_end((self.key, self.seed))
                return cached
        try:
            snap = EngineSnapshot.from_bytes(self.blob)
        except SnapshotError as exc:
            warnings.warn(
                f"discarding unreadable shipped snapshot ({exc})",
                CheckpointCacheWarning,
                stacklevel=3,
            )
            return store.get(self.seed) if store is not None else None
        if self.key is not None:
            _MEMORY[(self.key, self.seed)] = snap
            _MEMORY.move_to_end((self.key, self.seed))
            while len(_MEMORY) > _MEMORY_CAP:
                _MEMORY.popitem(last=False)
        return snap


def resolve_shipped(obj, store: Optional[CheckpointStore] = None):
    """Turn whatever rode in ``RunTask.snapshot`` into a live snapshot.

    Accepts ``None``, a live :class:`EngineSnapshot`, or either shipping
    wrapper; returns a snapshot or ``None`` (cold run).  The task's store
    is the fallback for unresolvable refs.
    """
    if obj is None or isinstance(obj, EngineSnapshot):
        return obj
    if isinstance(obj, (SnapshotRef, SnapshotWire)):
        return obj.resolve(store)
    return None


def snapshot_in_memory(key: str, seed: int) -> bool:
    """True when the process-global cache holds this (fingerprint, seed)."""
    return (key, seed) in _MEMORY


# ------------------------------------------------------------ orchestration


def execute_run(
    build: Callable[[], Tuple[Any, Any, Any]],
    seed: int,
    snapshot: Optional[EngineSnapshot] = None,
    store: Optional[CheckpointStore] = None,
):
    """Execute one run warm if possible, cold (and recording) otherwise.

    ``build`` returns a fresh ``(program, profiler_hook, run_config)``
    triple and must be cheap and repeatable: a failed resume re-invokes it,
    because the snapshot replay partially re-executes the program's
    generators and a dirtied program cannot simply be rerun.

    Returns ``(RunResult, profiler_hook)`` — the hook actually used, which
    on the warm path carries the restored profile state.
    """
    program, profiler, run_config = build()
    if snapshot is None and store is not None:
        snapshot = store.get(seed)
    if snapshot is not None:
        try:
            result = program.resume(snapshot, hook=profiler, config=run_config)
            return result, profiler
        except SnapshotError as exc:
            warnings.warn(
                f"checkpoint resume failed ({exc}); rerunning cold",
                CheckpointCacheWarning,
                stacklevel=2,
            )
            program, profiler, run_config = build()
    if store is None:
        return program.run(hook=profiler, config=run_config), profiler
    recorder = Recorder()
    try:
        result = program.run(hook=profiler, config=run_config, recorder=recorder)
    finally:
        # snapshots taken before a deterministic failure are still valid —
        # a resume reproduces the failure identically, which is exactly
        # what bit-identity demands
        if recorder.snapshots:
            try:
                store.put(seed, recorder.snapshots[-1])
            except Exception as exc:  # the store must never fail a session
                warnings.warn(
                    f"could not store checkpoint for seed {seed} ({exc})",
                    CheckpointCacheWarning,
                    stacklevel=2,
                )
    return result, profiler
