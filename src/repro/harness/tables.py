"""Table/figure rendering for the evaluation harness."""

from __future__ import annotations

import io
from typing import Iterable, Sequence

from repro.harness.comparison import Comparison
from repro.harness.overhead import OverheadBreakdown
from repro.harness.prediction import AccuracyResult


def render_table3(rows: Sequence[Comparison]) -> str:
    """Render the Table 3 analogue: speedup ± SE, significance."""
    buf = io.StringIO()
    buf.write("Summary of Optimization Results (Table 3 analogue)\n")
    buf.write(f"{'Application':<15}{'Speedup':>10}{'SE':>8}{'p-value':>11}{'sig(0.001)':>12}\n")
    for c in rows:
        sig = "yes" if c.stats.significant() else "no"
        buf.write(
            f"{c.name:<15}{c.stats.speedup_pct:>9.2f}%{c.stats.se_pct:>7.2f}%"
            f"{c.stats.p_value:>11.2g}{sig:>12}\n"
        )
    return buf.getvalue()


def render_figure9(rows: Sequence[OverheadBreakdown]) -> str:
    """Render the Figure 9 analogue: overhead breakdown per benchmark."""
    buf = io.StringIO()
    buf.write("Profiling overhead breakdown (Figure 9 analogue)\n")
    buf.write(f"{'Benchmark':<15}{'Startup':>9}{'Sampling':>10}{'Delays':>9}{'Total':>9}\n")
    for r in rows:
        buf.write(
            f"{r.name:<15}{r.startup_pct:>8.1f}%{r.sampling_pct:>9.1f}%"
            f"{r.delay_pct:>8.1f}%{r.total_pct:>8.1f}%\n"
        )
    if rows:
        n = len(rows)
        buf.write(
            f"{'MEAN':<15}{sum(r.startup_pct for r in rows) / n:>8.1f}%"
            f"{sum(r.sampling_pct for r in rows) / n:>9.1f}%"
            f"{sum(r.delay_pct for r in rows) / n:>8.1f}%"
            f"{sum(r.total_pct for r in rows) / n:>8.1f}%\n"
        )
    return buf.getvalue()


def render_accuracy(rows: Iterable[AccuracyResult]) -> str:
    """Render the §4.3 accuracy table: predicted vs realized."""
    buf = io.StringIO()
    buf.write("Prediction accuracy (§4.3 analogue)\n")
    for r in rows:
        buf.write(r.row() + "\n")
    return buf.getvalue()
