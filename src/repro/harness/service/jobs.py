"""The daemon's job model and thread-safe queue with in-flight dedup.

A :class:`Job` is one unit of profiling work keyed by its canonical
fingerprint (:func:`~repro.harness.service.wire.job_fingerprint`).  The
queue indexes *active* (queued or running) jobs by fingerprint so a
duplicate submission — same work, any tenant — coalesces onto the
existing job instead of executing twice: the duplicate's tenant is added
to the job's subscriber list and both submissions resolve when the one
execution finishes.

States move strictly forward::

    queued -> running -> done | degraded | failed | shed

``done`` is a clean full-session result, ``degraded`` a completed session
with recorded run failures (chaos tenants get their partial truth, not an
exception), ``failed`` an error before any result existed, and ``shed`` a
deadline-expired job returned as a partial.  Terminal states set
``done_event`` so waiters (``repro submit --wait``) unblock.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.service.wire import JobSpec

__all__ = ["Job", "JobQueue", "TERMINAL_STATES"]

TERMINAL_STATES = frozenset({"done", "degraded", "failed", "shed"})


@dataclass
class Job:
    """One fingerprinted unit of profiling work and its lifecycle."""

    job_id: str
    fingerprint: str
    spec: JobSpec
    state: str = "queued"
    #: every tenant whose submission coalesced onto this execution
    tenants: List[str] = field(default_factory=list)
    #: submissions beyond the first that coalesced here (dedup hits)
    dedup_count: int = 0
    #: monotonic clock reading at submit (queue-latency accounting)
    submitted_monotonic: float = 0.0
    #: absolute ``time.monotonic()`` deadline (None = no deadline); expired
    #: while queued = shed, expired while running = partial result
    deadline_monotonic: Optional[float] = None
    #: wall seconds spent queued before a worker picked the job up
    queue_latency_s: Optional[float] = None
    #: wall seconds the session executed (None until terminal)
    execute_s: Optional[float] = None
    #: re-enqueued from the queue journal after a daemon restart
    recovered: bool = False
    #: terminal result document (wire-shaped; see ResultStore)
    result: Optional[Dict[str, Any]] = None
    #: terminal error, as ``{"error": <type>, "message": <str>}``
    error: Optional[Dict[str, Any]] = None
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def finish(self, state: str, result: Optional[Dict[str, Any]] = None,
               error: Optional[Dict[str, Any]] = None) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.done_event.set()

    def snapshot(self) -> Dict[str, Any]:
        """Status-document view of the job (no result payload)."""
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "tenants": list(self.tenants),
            "dedup_count": self.dedup_count,
            "queue_latency_s": self.queue_latency_s,
            "execute_s": self.execute_s,
            "recovered": self.recovered,
            "error": self.error,
        }


class JobQueue:
    """FIFO of :class:`Job`\\ s with fingerprint-keyed in-flight dedup.

    All mutation happens under one condition variable; workers block in
    :meth:`take` until a job (or shutdown) arrives.  ``by_fingerprint``
    holds only *active* jobs — a terminal job leaves the index, so the
    same work submitted later is a result-store hit, not a coalesce.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._fifo: deque = deque()
        self._closed = False
        self.by_id: Dict[str, Job] = {}
        self.by_fingerprint: Dict[str, Job] = {}
        self._seq = 0

    def next_job_id(self, fingerprint: str) -> str:
        with self._cond:
            self._seq += 1
            return f"j{self._seq:04d}-{fingerprint[:10]}"

    def active(self, fingerprint: str) -> Optional[Job]:
        """The queued-or-running job for this fingerprint, if any."""
        with self._cond:
            return self.by_fingerprint.get(fingerprint)

    def reserve(self, job: Job) -> None:
        """Register a job in the dedup indexes without making it runnable.

        The daemon reserves inside its admission critical section — after
        the ``active()`` check, before releasing its state lock — so a
        concurrent duplicate submission coalesces onto this job instead of
        enqueueing a second execution while the queue journal is still
        being fsync'd.  :meth:`enqueue` (called once the journal record is
        durable) hands the job to the workers.
        """
        with self._cond:
            self.by_id[job.job_id] = job
            self.by_fingerprint[job.fingerprint] = job

    def enqueue(self, job: Job) -> None:
        """Make a reserved job runnable (workers may now take it)."""
        with self._cond:
            self._fifo.append(job)
            self._cond.notify()

    def unreserve(self, job: Job) -> None:
        """Roll back a reservation whose submission failed before enqueue."""
        with self._cond:
            if self.by_fingerprint.get(job.fingerprint) is job:
                del self.by_fingerprint[job.fingerprint]
            self.by_id.pop(job.job_id, None)

    def put(self, job: Job) -> None:
        self.reserve(job)
        self.enqueue(job)

    def retire(self, job: Job) -> None:
        """Drop the job's dedup index entry ahead of settling it.

        The daemon retires inside the same critical section that unwinds
        the job's tenant quota accounting, so no submission can coalesce
        onto a job whose active counts have already been decremented (the
        coalesce would increment a count nothing would ever decrement).
        """
        with self._cond:
            if self.by_fingerprint.get(job.fingerprint) is job:
                del self.by_fingerprint[job.fingerprint]

    def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block for the next queued job; ``None`` on shutdown/timeout."""
        with self._cond:
            while not self._fifo and not self._closed:
                if not self._cond.wait(timeout=timeout):
                    return None
            if self._fifo:
                job = self._fifo.popleft()
                job.state = "running"
                return job
            return None

    def settle(self, job: Job, state: str,
               result: Optional[Dict[str, Any]] = None,
               error: Optional[Dict[str, Any]] = None) -> None:
        """Move a job to a terminal state and drop its dedup index entry."""
        with self._cond:
            job.finish(state, result=result, error=error)
            if self.by_fingerprint.get(job.fingerprint) is job:
                del self.by_fingerprint[job.fingerprint]

    def close(self) -> None:
        """Wake all blocked workers for shutdown."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._fifo)

    @property
    def running(self) -> int:
        with self._cond:
            return sum(1 for j in self.by_fingerprint.values() if j.state == "running")

    def jobs(self) -> List[Job]:
        with self._cond:
            return list(self.by_id.values())
