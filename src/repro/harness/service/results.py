"""Content-addressed store of completed session results.

Results are addressed by job fingerprint, so "cache hit" *means*
"bit-identical session": two specs with the same fingerprint would merge
the same runs in the same order with the same seeds.  Every stored
document is pure content — no timestamps, no tenant, no job id — so a
byte comparison of two result files is a determinism check, and the
restart-recovery test can assert a SIGKILL'd session resumed to exactly
the bytes an uninterrupted one produced.

Layout mirrors the checkpoint store: an in-memory LRU in front of one
content-addressed blob per fingerprint, written atomically via
``os.replace`` and skipped when already present (first-writer-wins; the
content is deterministic, so writers never disagree).  Deadline-partial
results are returned to waiters but **never** stored — a truncated
session must not shadow the full one a resubmit would complete.

On-disk format: the authoritative file is ``<dir>/<fp>.bin`` — a small
container holding the result document's metadata header as JSON plus the
profile payload on the compact binary wire
(:meth:`~repro.core.profile_data.ProfileData.to_bytes`), which is several
times smaller than the JSON form.  A ``<fp>.json`` debug view with the
full JSON document is written alongside so stored results stay greppable;
reads prefer the binary file and fall back to plain JSON, so stores
written by older daemons keep working.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["ResultStore"]

#: in-memory entries kept per store (small: result docs are a few KB)
_MEMORY_CAP = 64

#: binary result container: magic + version + u32 header length + header
#: JSON (doc minus ``profile_data``) + ProfileData binary wire
_BIN_MAGIC = b"RRES"
_BIN_VERSION = 1


class ResultStore:
    """Thread-safe fingerprint-addressed result cache (memory + disk)."""

    def __init__(self, directory: Optional[str] = None,
                 memory_cap: int = _MEMORY_CAP) -> None:
        self.directory = directory
        self.memory_cap = memory_cap
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _bin_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.bin")

    def _json_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.json")

    # ----------------------------------------------------------- wire codec

    @staticmethod
    def _encode(doc: Dict[str, Any]) -> bytes:
        """Pack a result document into the binary container.

        Raises when the document carries no well-formed ``profile_data``
        (the caller falls back to the plain-JSON file).
        """
        profile = doc.get("profile_data")
        if not isinstance(profile, dict):
            raise ValueError("result document has no profile_data")
        from repro.core.profile_data import ProfileData

        blob = ProfileData.from_json(json.dumps(profile)).to_bytes()
        header = {k: v for k, v in doc.items() if k != "profile_data"}
        hdr = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return b"".join([
            _BIN_MAGIC,
            bytes([_BIN_VERSION]),
            len(hdr).to_bytes(4, "little"),
            hdr,
            blob,
        ])

    @staticmethod
    def _decode(raw: bytes) -> Dict[str, Any]:
        """Unpack the binary container back into the result document.

        ``profile_data`` is appended last, matching the daemon's document
        key order, so decoded and freshly-built docs canonicalize equal.
        """
        if not raw.startswith(_BIN_MAGIC):
            raise ValueError("not a binary result container")
        if raw[len(_BIN_MAGIC)] != _BIN_VERSION:
            raise ValueError(
                f"unsupported result container version {raw[len(_BIN_MAGIC)]}"
            )
        offset = len(_BIN_MAGIC) + 1
        hdr_len = int.from_bytes(raw[offset:offset + 4], "little")
        offset += 4
        header = json.loads(raw[offset:offset + hdr_len].decode("utf-8"))
        if not isinstance(header, dict):
            raise ValueError("malformed result container header")
        from repro.core.profile_data import ProfileData

        doc = dict(header)
        doc["profile_data"] = json.loads(
            ProfileData.from_bytes(raw[offset + hdr_len:]).to_json()
        )
        return doc

    # ------------------------------------------------------------- get/put

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            doc = self._memory.get(fingerprint)
            if doc is not None:
                self._memory.move_to_end(fingerprint)
                self.hits += 1
                return doc
        if self.directory is not None:
            doc = None
            try:
                with open(self._bin_path(fingerprint), "rb") as fh:
                    doc = self._decode(fh.read())
            except (OSError, ValueError):
                # legacy / debug view: one plain-JSON document per result
                try:
                    with open(self._json_path(fingerprint), "r",
                              encoding="utf-8") as fh:
                        doc = json.load(fh)
                except (OSError, ValueError):
                    doc = None
            if isinstance(doc, dict):
                with self._lock:
                    self._remember(fingerprint, doc)
                    self.hits += 1
                return doc
        with self._lock:
            self.misses += 1
        return None

    def put(self, fingerprint: str, doc: Dict[str, Any]) -> None:
        with self._lock:
            self._remember(fingerprint, doc)
        if self.directory is None:
            return
        try:
            payload: Optional[bytes] = self._encode(doc)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            payload = None  # no/odd profile payload: JSON file only
        if payload is not None:
            self._write_atomic(self._bin_path(fingerprint), payload)
        self._write_atomic(
            self._json_path(fingerprint),
            json.dumps(doc, sort_keys=True, separators=(",", ":"))
            .encode("utf-8"),
        )

    def _write_atomic(self, path: str, payload: bytes) -> None:
        if os.path.exists(path):
            return  # deterministic content: first writer already said it
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            # disk cache is an accelerator, not a correctness dependency
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _remember(self, fingerprint: str, doc: Dict[str, Any]) -> None:
        self._memory[fingerprint] = doc
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_cap:
            self._memory.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, Any]:
        return {
            "result_hits": self.hits,
            "result_misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }
