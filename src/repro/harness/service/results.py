"""Content-addressed store of completed session results.

Results are addressed by job fingerprint, so "cache hit" *means*
"bit-identical session": two specs with the same fingerprint would merge
the same runs in the same order with the same seeds.  Every stored
document is pure content — no timestamps, no tenant, no job id — so a
byte comparison of two result files is a determinism check, and the
restart-recovery test can assert a SIGKILL'd session resumed to exactly
the bytes an uninterrupted one produced.

Layout mirrors the checkpoint store: an in-memory LRU in front of one
JSON file per fingerprint (``<dir>/<fp>.json``), written atomically via
``os.replace`` and skipped when already present (first-writer-wins; the
content is deterministic, so writers never disagree).  Deadline-partial
results are returned to waiters but **never** stored — a truncated
session must not shadow the full one a resubmit would complete.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["ResultStore"]

#: in-memory entries kept per store (small: result docs are a few KB)
_MEMORY_CAP = 64


class ResultStore:
    """Thread-safe fingerprint-addressed result cache (memory + disk)."""

    def __init__(self, directory: Optional[str] = None,
                 memory_cap: int = _MEMORY_CAP) -> None:
        self.directory = directory
        self.memory_cap = memory_cap
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.json")

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            doc = self._memory.get(fingerprint)
            if doc is not None:
                self._memory.move_to_end(fingerprint)
                self.hits += 1
                return doc
        if self.directory is not None:
            path = self._path(fingerprint)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, ValueError):
                doc = None
            if isinstance(doc, dict):
                with self._lock:
                    self._remember(fingerprint, doc)
                    self.hits += 1
                return doc
        with self._lock:
            self.misses += 1
        return None

    def put(self, fingerprint: str, doc: Dict[str, Any]) -> None:
        with self._lock:
            self._remember(fingerprint, doc)
        if self.directory is None:
            return
        path = self._path(fingerprint)
        if os.path.exists(path):
            return  # deterministic content: first writer already said it
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            # disk cache is an accelerator, not a correctness dependency
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _remember(self, fingerprint: str, doc: Dict[str, Any]) -> None:
        self._memory[fingerprint] = doc
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_cap:
            self._memory.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, Any]:
        return {
            "result_hits": self.hits,
            "result_misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }
