"""The profiling-service daemon: bounded workers, dedup, recovery.

One :class:`ServiceDaemon` owns a state directory::

    <state_dir>/
        daemon.sock          Unix socket the wire protocol is spoken over
        queue.jsonl          crash-safe queue journal (fsync'd per event)
        jobs/<fp>.jsonl      per-job session journals (repro.harness.journal)
        results/<fp>.json    content-addressed completed results
        checkpoints/<key>/   shared CheckpointStore disk caches

and runs two thread groups: an accept loop handing each connection to a
short-lived handler thread, and ``workers`` long-lived worker threads
draining the :class:`~repro.harness.service.jobs.JobQueue`.  Sessions
execute through the ordinary :func:`~repro.harness.runner.
run_profile_session` machinery — journaled, checkpointed, deadline-aware —
so every robustness property the harness already has (bit-identical
resume, typed fault taxonomy, retry/watchdog) is inherited rather than
reimplemented.

**Admission order** at submit is deliberate: circuit breaker first (a
quarantined tenant is shed even for cached results, so its traffic stops
entirely until the half-open probe), then result-store cache, then
in-flight dedup coalescing (free: no quota or rate token consumed), then
queue-depth quota, then the rate limit.  Only submissions that enqueue
*new* work pay capacity.  The fingerprint is reserved in the dedup index
*inside* the admission critical section (before the queue journal fsync),
so two racing duplicates can never both enqueue; and a half-open breaker
probe that resolves without running a job — cache hit, capacity shed, or
a verdict-less terminal state — returns its probe slot rather than
leaving the tenant quarantined with no outcome ever coming.

**Recovery**: every accepted job is journaled to ``queue.jsonl`` before it
enqueues and again when it settles.  On restart, jobs with a ``submit``
event but no terminal event re-enqueue (``recovered=True``); their
session journals replay completed runs, so a daemon SIGKILL'd mid-job
resumes the job from its last fsync'd run and produces a bit-identical
result.

**Graceful degradation**: a chaos-faulted session completes ``degraded``
(partial profile + typed failure records) rather than erroring; repeated
degraded/failed jobs open the tenant's breaker and shed that tenant with
:class:`~repro.sim.errors.ServiceOverloadError` while other tenants keep
their workers.  ``KeyboardInterrupt``/``SystemExit`` in a worker are never
swallowed: the job is marked failed, the daemon stops, and the exception
re-raises in ``run_forever``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.harness.journal import JournalError
from repro.harness.request import (
    ExecutionConfig,
    ProfileRequest,
    ResilienceConfig,
)
from repro.harness.service.jobs import Job, JobQueue
from repro.harness.service.results import ResultStore
from repro.harness.service.tenants import AdmissionController, TenantPolicy
from repro.harness.service.wire import (
    WIRE_VERSION,
    JobSpec,
    WireError,
    job_fingerprint,
    read_doc,
    send_doc,
)
from repro.sim.errors import DeadlineExceededError, ServiceOverloadError

__all__ = ["ServiceConfig", "ServiceDaemon"]

#: queue-latency samples kept for the status percentiles
_LATENCY_WINDOW = 256


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a daemon instance needs to run."""

    #: directory holding socket, journals, results, and checkpoints
    state_dir: str
    #: worker threads draining the job queue
    workers: int = 2
    #: admission-control policy applied per tenant
    policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: executor worker *processes* per session (1 = in-process serial)
    session_jobs: int = 1
    #: worker-queue poll interval (shutdown responsiveness), seconds
    poll_s: float = 0.2
    #: socket path override (default ``<state_dir>/daemon.sock``)
    socket_path: Optional[str] = None

    @property
    def sock(self) -> str:
        return self.socket_path or os.path.join(self.state_dir, "daemon.sock")


class ServiceDaemon:
    """Long-running multi-tenant profiling service over a Unix socket."""

    def __init__(
        self,
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not hasattr(socket, "AF_UNIX"):
            raise OSError("the profiling service needs AF_UNIX sockets, "
                          "which this platform does not provide")
        self.config = config
        self._clock = clock
        os.makedirs(config.state_dir, exist_ok=True)
        self.jobs_dir = os.path.join(config.state_dir, "jobs")
        self.checkpoints_dir = os.path.join(config.state_dir, "checkpoints")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.queue_journal = os.path.join(config.state_dir, "queue.jsonl")

        self.queue = JobQueue()
        self.results = ResultStore(os.path.join(config.state_dir, "results"))
        self.admission = AdmissionController(config.policy, clock)

        self._lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._stop = threading.Event()
        self._fatal: Optional[BaseException] = None
        self._threads: List[threading.Thread] = []
        self._busy = [False] * config.workers
        self._dead = [False] * config.workers
        self._listener: Optional[socket.socket] = None
        self._started_monotonic: Optional[float] = None
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self._dedup_coalesced = 0
        self._recovered_jobs = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Recover journaled jobs, bind the socket, spawn threads."""
        self._started_monotonic = self._clock()
        self._recover()
        sock_path = self.config.sock
        if os.path.exists(sock_path):
            os.unlink(sock_path)  # stale socket from a killed daemon
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(sock_path)
        self._listener.listen(16)
        self._listener.settimeout(self.config.poll_s)
        accept = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for idx in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, args=(idx,),
                name=f"service-worker-{idx}", daemon=True,
            )
            t.start()
            self._threads.append(t)

    def run_forever(self) -> None:
        """Start and block until :meth:`stop` (or a fatal error, which
        re-raises here in the main thread — KeyboardInterrupt included)."""
        self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(self.config.poll_s)
        except (KeyboardInterrupt, SystemExit):
            self.stop()
            raise
        self.stop()
        if self._fatal is not None:
            raise self._fatal

    def stop(self) -> None:
        self._stop.set()
        self.queue.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        try:
            os.unlink(self.config.sock)
        except OSError:
            pass

    # ------------------------------------------------------------- recovery

    def _journal_event(self, doc: Dict[str, Any]) -> None:
        """Append one fsync'd event to the crash-safe queue journal."""
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with self._journal_lock:
            with open(self.queue_journal, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def _replay_queue_journal(self) -> Dict[str, Dict[str, Any]]:
        """Fingerprint -> last journaled state (torn tail tolerated)."""
        pending: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.queue_journal, "r", encoding="utf-8") as fh:
                for line in fh:
                    try:
                        doc = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a mid-write kill
                    if not isinstance(doc, dict):
                        continue
                    fp = doc.get("fingerprint")
                    if doc.get("kind") == "submit" and fp:
                        pending[fp] = doc
                    elif doc.get("kind") == "terminal" and fp:
                        pending.pop(fp, None)
        except OSError:
            pass
        return pending

    def _recover(self) -> None:
        """Re-enqueue journaled jobs that never reached a terminal state.

        The job's session journal (``jobs/<fp>.jsonl``) holds every run
        that completed before the crash; re-execution replays it and runs
        only the remainder, so the recovered result is bit-identical to an
        uninterrupted one.
        """
        for fp, doc in sorted(self._replay_queue_journal().items()):
            try:
                spec = JobSpec.from_wire(doc["spec"])
            except (KeyError, WireError):
                continue  # unparseable historical record: drop, don't die
            job = Job(
                job_id=self.queue.next_job_id(fp),
                fingerprint=fp,
                spec=spec,
                tenants=list(doc.get("tenants") or [spec.tenant]),
                submitted_monotonic=self._clock(),
                recovered=True,
            )
            # re-arm the wall-clock budget the original submission carried
            # (or the policy default) — without this a recovered job runs
            # unbounded after a restart
            deadline_s = spec.deadline_s
            if deadline_s is None:
                deadline_s = self.config.policy.default_deadline_s
            if deadline_s is not None:
                job.deadline_monotonic = time.monotonic() + deadline_s
            with self._lock:
                for tenant in job.tenants:
                    self.admission.tenant(tenant).active += 1
            self.queue.put(job)
            self._recovered_jobs += 1

    # ------------------------------------------------------------ admission

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Admit one submission; raises ServiceOverloadError on shed."""
        fp = job_fingerprint(spec)
        with self._lock:
            state = self.admission.tenant(spec.tenant)
            state.counters["submitted"] += 1
            # 1. breaker: a quarantined tenant gets nothing, cached or not.
            # A consumed half-open probe must be given back on every path
            # that resolves without running a job, or the breaker would be
            # stuck half-open (shedding) with no probe outcome ever coming.
            probe = self.admission.check_breaker(state)
            # 2. completed before: serve the content-addressed result
            cached = self.results.get(fp)
            if cached is not None:
                if probe:
                    state.breaker.release_probe()
                state.counters["cache_hits"] += 1
                return {
                    "ok": True,
                    "fingerprint": fp,
                    "state": cached.get("state", "done"),
                    "cached": True,
                    "result": cached,
                }
            # 3. in flight: coalesce (free — no quota, no rate token).  The
            # probe stays consumed here: this tenant joins the job's
            # subscriber list, so its settle feeds the breaker a verdict.
            active = self.queue.active(fp)
            if active is not None:
                active.dedup_count += 1
                self._dedup_coalesced += 1
                if spec.tenant not in active.tenants:
                    active.tenants.append(spec.tenant)
                    state.active += 1
                state.counters["dedup_hits"] += 1
                return {
                    "ok": True,
                    "fingerprint": fp,
                    "job_id": active.job_id,
                    "state": active.state,
                    "dedup": True,
                }
            # 4. + 5. genuinely new work: pay quota and rate
            try:
                self.admission.check_capacity(state)
            except ServiceOverloadError:
                if probe:
                    state.breaker.release_probe()
                raise
            job = Job(
                job_id=self.queue.next_job_id(fp),
                fingerprint=fp,
                spec=spec,
                tenants=[spec.tenant],
                submitted_monotonic=self._clock(),
            )
            deadline_s = spec.deadline_s
            if deadline_s is None:
                deadline_s = state.policy.default_deadline_s
            if deadline_s is not None:
                job.deadline_monotonic = time.monotonic() + deadline_s
            state.active += 1
            # reserve the fingerprint before releasing the lock: a
            # concurrent duplicate arriving during the journal fsync below
            # coalesces onto this job instead of enqueueing a second
            # execution of the same session journal
            self.queue.reserve(job)
        try:
            self._journal_event({
                "kind": "submit",
                "fingerprint": fp,
                "spec": spec.to_wire(),
                "tenants": job.tenants,
            })
        except BaseException:
            with self._lock:
                roll = self.admission.tenant(spec.tenant)
                roll.active = max(0, roll.active - 1)
                if probe:
                    roll.breaker.release_probe()
                self.queue.unreserve(job)
            raise
        self.queue.enqueue(job)
        return {
            "ok": True,
            "fingerprint": fp,
            "job_id": job.job_id,
            "state": "queued",
        }

    # ------------------------------------------------------------ execution

    def _worker_loop(self, idx: int) -> None:
        try:
            while not self._stop.is_set():
                job = self.queue.take(timeout=self.config.poll_s)
                if job is None:
                    continue
                self._busy[idx] = True
                try:
                    self._execute_job(job)
                finally:
                    self._busy[idx] = False
        except BaseException as exc:  # noqa: BLE001 — deliberate: see below
            # KeyboardInterrupt / SystemExit (and anything else fatal) must
            # stop the daemon, not silently kill one worker thread
            self._fatal = exc
            self._dead[idx] = True
            self._stop.set()
            raise

    def _execute_job(self, job: Job) -> None:
        start = self._clock()
        job.queue_latency_s = max(0.0, start - job.submitted_monotonic)
        self._latencies.append(job.queue_latency_s)

        if (
            job.deadline_monotonic is not None
            and time.monotonic() >= job.deadline_monotonic
        ):
            self._settle(job, "shed", error=_error_doc(DeadlineExceededError(
                f"job {job.job_id} spent its whole deadline queued",
                deadline_s=job.spec.deadline_s,
            )), breaker_failure=False, shed_reason="deadline")
            return

        try:
            outcome = self._run_session(job)
        except (KeyboardInterrupt, SystemExit):
            self._settle(job, "failed",
                         error={"error": "Interrupted", "message": "daemon stopping"},
                         breaker_failure=False)
            raise
        except Exception as exc:
            self._settle(job, "failed", error=_error_doc(exc),
                         breaker_failure=True)
            return
        job.execute_s = self._clock() - start

        doc = self._result_doc(job, outcome)
        if outcome.deadline_exceeded:
            # partial truth for the waiter, but never cached: a resubmit
            # must resume the journal and finish the session
            doc["partial"] = True
            self._settle(job, "shed", result=doc, breaker_failure=False,
                         shed_reason="deadline")
            return
        self.results.put(job.fingerprint, doc)
        state = "degraded" if outcome.degraded else "done"
        self._settle(job, state, result=doc,
                     breaker_failure=outcome.degraded)

    def _run_session(self, job: Job):
        """Execute one job's profiling session (monkeypatch point for
        tests that need deterministic session behavior)."""
        from repro.harness.checkpoint import checkpoint_fingerprint
        from repro.harness.runner import run_profile_session

        spec_obj, cfg, (faults, plan) = job.spec.build_session()
        journal_path = os.path.join(self.jobs_dir, f"{job.fingerprint}.jsonl")
        ckpt_key = checkpoint_fingerprint(spec_obj, cfg, faults)
        ckpt_dir = os.path.join(self.checkpoints_dir, ckpt_key[:16])

        remaining_s = None
        if job.deadline_monotonic is not None:
            remaining_s = max(0.01, job.deadline_monotonic - time.monotonic())

        def request(resume: bool) -> ProfileRequest:
            return ProfileRequest(
                runs=job.spec.runs,
                base_seed=job.spec.base_seed,
                coz_config=cfg,
                execution=ExecutionConfig(
                    jobs=self.config.session_jobs,
                    checkpoint_dir=ckpt_dir,
                    deadline_s=remaining_s,
                ),
                resilience=ResilienceConfig(
                    faults=faults,
                    journal=None if resume else journal_path,
                    resume=journal_path if resume else None,
                ),
                plan=plan,
            )

        if os.path.exists(journal_path):
            try:
                return run_profile_session(spec_obj, request(resume=True))
            except JournalError:
                # empty or headerless journal (killed between create and
                # first fsync): start the session over from nothing
                os.unlink(journal_path)
        return run_profile_session(spec_obj, request(resume=False))

    def _settle(self, job: Job, state: str,
                result: Optional[Dict[str, Any]] = None,
                error: Optional[Dict[str, Any]] = None,
                breaker_failure: bool = False,
                shed_reason: Optional[str] = None) -> None:
        with self._lock:
            # retire the dedup entry inside the same critical section that
            # unwinds quota accounting: a submit between the decrement and
            # the entry's removal would coalesce onto this settled job and
            # increment an active count nothing would ever decrement
            self.queue.retire(job)
            for tenant in job.tenants:
                tstate = self.admission.tenant(tenant)
                tstate.active = max(0, tstate.active - 1)
                if state in ("done", "degraded"):
                    tstate.counters["completed"] += 1
                if state == "degraded":
                    tstate.counters["degraded"] += 1
                if state == "failed":
                    tstate.counters["failed"] += 1
                if shed_reason == "deadline":
                    tstate.counters["shed_deadline"] += 1
                if breaker_failure:
                    tstate.breaker.record_failure()
                elif state in ("done", "degraded"):
                    tstate.breaker.record_success()
                else:
                    # shed or interrupted: no verdict on tenant health —
                    # if this job was the half-open probe, return the slot
                    # so the tenant is not quarantined forever
                    tstate.breaker.release_probe()
        # journal the terminal state BEFORE releasing waiters: once a
        # client sees the job settle, a restart must not re-run it
        self._journal_event({
            "kind": "terminal",
            "fingerprint": job.fingerprint,
            "state": state,
        })
        self.queue.settle(job, state, result=result, error=error)

    def _result_doc(self, job: Job, outcome) -> Dict[str, Any]:
        """Wire-shaped result document — pure content, no timestamps, so
        byte equality between two docs is a determinism proof."""
        metrics = {
            "virtual_ns": sum(r.runtime_ns for r in outcome.run_results),
            "samples": sum(r.sample_count for r in outcome.run_results),
            "events": sum(r.events_processed for r in outcome.run_results),
        }
        top = [
            {
                "line": str(lp.line),
                "progress_point": lp.progress_point,
                "slope": round(lp.slope, 6),
            }
            for lp in outcome.profile.ranked()[:5]
        ]
        return {
            "schema": "service-result/v1",
            "fingerprint": job.fingerprint,
            "app": job.spec.app,
            "runs": job.spec.runs,
            "state": "degraded" if outcome.degraded else "done",
            "degraded": outcome.degraded,
            "experiments": outcome.experiment_count,
            "failures": [f.to_dict() for f in outcome.data.failures],
            "metrics": metrics,
            "top": top,
            "profile_data": json.loads(outcome.data.to_json()),
        }

    # --------------------------------------------------------------- status

    def status(self) -> Dict[str, Any]:
        """The ``/healthz``-style status document."""
        alive = sum(
            1 for t in self._threads
            if t.name.startswith("service-worker") and t.is_alive()
        )
        latencies = sorted(self._latencies)
        latency_avg = sum(latencies) / len(latencies) if latencies else 0.0
        latency_p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
        breaker_open = any(
            s.breaker.state != "closed" for s in self.admission.tenants.values()
        )
        jobs = self.queue.jobs()
        by_state: Dict[str, int] = {}
        for j in jobs:
            by_state[j.state] = by_state.get(j.state, 0) + 1
        degraded = alive < self.config.workers or breaker_open
        uptime = 0.0
        if self._started_monotonic is not None:
            uptime = self._clock() - self._started_monotonic
        return {
            "schema": "service-status/v1",
            "status": "degraded" if degraded else "ok",
            "pid": os.getpid(),
            "uptime_s": round(uptime, 3),
            "workers": {
                "configured": self.config.workers,
                "alive": alive,
                "busy": sum(self._busy),
            },
            "queue": {
                "depth": self.queue.depth,
                "running": self.queue.running,
                "latency_avg_s": round(latency_avg, 6),
                "latency_p95_s": round(latency_p95, 6),
            },
            "cache": {
                **self.results.counters(),
                "dedup_coalesced": self._dedup_coalesced,
            },
            "jobs": {
                "total": len(jobs),
                "recovered": self._recovered_jobs,
                "by_state": by_state,
            },
            "tenants": self.admission.snapshot(),
        }

    # ---------------------------------------------------------------- wire

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during shutdown
            threading.Thread(
                target=self._handle_conn, args=(conn,), daemon=True
            ).start()

    def _handle_conn(self, conn: socket.socket) -> None:
        try:
            with conn:
                fh = conn.makefile("r", encoding="utf-8")
                try:
                    doc = read_doc(fh)
                except WireError as exc:
                    send_doc(conn, {"ok": False, "error": "WireError",
                                    "message": str(exc)})
                    return
                if doc is None:
                    return
                send_doc(conn, self._dispatch(doc))
        except OSError:
            pass  # client went away mid-response

    def _dispatch(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        if doc.get("wire") != WIRE_VERSION:
            return {
                "ok": False,
                "error": "WireError",
                "message": f"wire version {doc.get('wire')!r} != {WIRE_VERSION}",
            }
        op = doc.get("op")
        try:
            if op == "ping":
                return {"ok": True, "wire": WIRE_VERSION, "pid": os.getpid()}
            if op == "submit":
                response = self.submit(JobSpec.from_wire(doc.get("spec")))
                wait_s = doc.get("wait_s")
                if wait_s is not None and response.get("job_id"):
                    return self._wait(response["job_id"], float(wait_s))
                return response
            if op == "status":
                return {"ok": True, "status": self.status()}
            if op == "job":
                job = self.queue.by_id.get(doc.get("job_id", ""))
                if job is None:
                    return {"ok": False, "error": "UnknownJob",
                            "message": f"no job {doc.get('job_id')!r}"}
                return {"ok": True, "job": job.snapshot()}
            if op == "wait":
                return self._wait(doc.get("job_id", ""),
                                  float(doc.get("timeout_s", 60.0)))
            if op == "result":
                fp = doc.get("fingerprint", "")
                cached = self.results.get(fp)
                if cached is None:
                    return {"ok": False, "error": "UnknownResult",
                            "message": f"no stored result for {fp[:16]}..."}
                return {"ok": True, "result": cached}
            if op == "shutdown":
                self._stop.set()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": "WireError",
                    "message": f"unknown op {op!r}"}
        except ServiceOverloadError as exc:
            return {
                "ok": False,
                "error": "ServiceOverloadError",
                "message": str(exc),
                "tenant": exc.tenant,
                "reason": exc.reason,
            }
        except WireError as exc:
            return {"ok": False, "error": "WireError", "message": str(exc)}
        except Exception as exc:  # typed taxonomy crosses as (type, message)
            return {"ok": False, "error": type(exc).__name__, "message": str(exc)}

    def _wait(self, job_id: str, timeout_s: float) -> Dict[str, Any]:
        job = self.queue.by_id.get(job_id)
        if job is None:
            return {"ok": False, "error": "UnknownJob",
                    "message": f"no job {job_id!r}"}
        if not job.done_event.wait(timeout=timeout_s):
            return {"ok": False, "error": "WaitTimeout",
                    "message": f"job {job_id} still {job.state} "
                               f"after {timeout_s:g}s"}
        return {"ok": True, "job": job.snapshot(), "result": job.result}


def _error_doc(exc: BaseException) -> Dict[str, Any]:
    return {"error": type(exc).__name__, "message": str(exc)}
