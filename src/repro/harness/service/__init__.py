"""Profiling-as-a-service: a long-running multi-tenant session daemon.

Every CLI invocation of this reproduction is a cold island; the service
turns the existing robustness machinery — canonical session fingerprints
(:mod:`repro.harness.journal`), the shared :class:`~repro.harness.
checkpoint.CheckpointStore`, the retry/watchdog executor
(:mod:`repro.harness.parallel`) — into a daemon that serves N concurrent
profiling sessions over one shared cache:

* :mod:`~repro.harness.service.wire` — the request surface
  (:class:`JobSpec`) and the newline-delimited JSON protocol spoken over a
  Unix domain socket;
* :mod:`~repro.harness.service.tenants` — per-tenant admission control:
  queue-depth quotas, token-bucket rate limits, and a circuit breaker that
  quarantines a tenant whose jobs keep failing;
* :mod:`~repro.harness.service.jobs` — the job model and the thread-safe
  queue, with in-flight dedup by session fingerprint;
* :mod:`~repro.harness.service.results` — the content-addressed result
  store (completed sessions served from cache, bit-identically);
* :mod:`~repro.harness.service.daemon` — the daemon itself: bounded worker
  pool, crash-safe queue journal, restart recovery by session-journal
  replay, and the ``/healthz``-style status surface;
* :mod:`~repro.harness.service.client` — the thin socket client behind
  ``repro submit`` / ``repro status``.
"""

from repro.harness.service.client import ServiceClient, ServiceUnavailableError
from repro.harness.service.daemon import ServiceConfig, ServiceDaemon
from repro.harness.service.jobs import Job, JobQueue
from repro.harness.service.results import ResultStore
from repro.harness.service.tenants import (
    AdmissionController,
    CircuitBreaker,
    TenantPolicy,
    TenantState,
    TokenBucket,
)
from repro.harness.service.wire import (
    WIRE_VERSION,
    JobSpec,
    WireError,
    job_fingerprint,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Job",
    "JobQueue",
    "JobSpec",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceUnavailableError",
    "TenantPolicy",
    "TenantState",
    "TokenBucket",
    "WIRE_VERSION",
    "WireError",
    "job_fingerprint",
]
