"""Per-tenant admission control: quotas, rate limits, circuit breakers.

The daemon's robustness promise is *isolation*: one tenant's chaos-faulted
workload degrades that tenant's requests, never a neighbor's.  Three
controls enforce it, all per-tenant and all deterministic functions of an
injectable clock (so tests drive them with a fake clock):

* **queue-depth quota** — a tenant may hold at most ``max_queue_depth``
  queued-or-running jobs; excess submissions are shed immediately rather
  than queued behind work the tenant cannot absorb;
* **token bucket** — sustained submission rate is capped at ``rate_per_s``
  with a burst allowance of ``burst`` tokens;
* **circuit breaker** — after ``breaker_threshold`` consecutive failed or
  degraded jobs the tenant is quarantined: submissions are shed until
  ``breaker_cooldown_s`` passes, then exactly one probe job is admitted
  (half-open).  A healthy probe re-closes the breaker; a failed one
  re-opens it for another cooldown.

Every shed is a typed :class:`~repro.sim.errors.ServiceOverloadError`
carrying the control that fired, and every control's counters surface in
the daemon's status document.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.sim.errors import ServiceOverloadError

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "TenantPolicy",
    "TenantState",
    "TokenBucket",
]


@dataclass(frozen=True)
class TenantPolicy:
    """Admission-control limits applied to each tenant independently."""

    #: queued-or-running jobs a tenant may hold before shedding
    max_queue_depth: int = 8
    #: sustained submissions per second (token-bucket refill rate)
    rate_per_s: float = 20.0
    #: burst allowance (token-bucket capacity)
    burst: int = 40
    #: consecutive failed/degraded jobs that open the circuit breaker
    breaker_threshold: int = 3
    #: seconds the breaker stays open before admitting one half-open probe
    breaker_cooldown_s: float = 30.0
    #: deadline applied to jobs that do not carry their own (None = none)
    default_deadline_s: Optional[float] = None


class TokenBucket:
    """Classic token bucket with an injectable clock."""

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate_per_s)
        self._last = now

    def try_take(self) -> bool:
        """Consume one token if available; False means shed the request."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class CircuitBreaker:
    """Three-state (closed / open / half-open) per-tenant breaker.

    ``allow()`` gates admission; ``record_success``/``record_failure``
    feed it job outcomes.  The half-open state admits exactly one probe:
    a healthy probe closes the breaker (the tenant recovered), a failed
    probe re-opens it for another full cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a new job be admitted for this tenant right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = self.HALF_OPEN
                return True  # the one probe
            return False
        return False  # half-open: the probe is already in flight

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or self.consecutive_failures >= self.threshold:
            self.state = self.OPEN
            self._opened_at = self._clock()

    def release_probe(self) -> None:
        """Return an unused half-open probe slot.

        The admitted probe never became a job (the submission resolved as
        a cache hit, was shed on capacity, or its job ended without a
        health verdict), so no ``record_*`` call will ever arrive for it.
        Re-open *without* restarting the cooldown — the elapsed cooldown
        still counts, so the very next submission is re-admitted as a new
        probe instead of the tenant being quarantined forever.
        """
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN


@dataclass
class TenantState:
    """One tenant's live admission state and counters."""

    tenant: str
    policy: TenantPolicy
    bucket: TokenBucket
    breaker: CircuitBreaker
    #: queued-or-running jobs right now (quota accounting)
    active: int = 0
    counters: Dict[str, int] = field(default_factory=lambda: {
        "submitted": 0,
        "completed": 0,
        "degraded": 0,
        "failed": 0,
        "dedup_hits": 0,
        "cache_hits": 0,
        "shed_queue_depth": 0,
        "shed_rate_limit": 0,
        "shed_circuit_breaker": 0,
        "shed_deadline": 0,
    })

    @property
    def shed_total(self) -> int:
        return sum(v for k, v in self.counters.items() if k.startswith("shed_"))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "active": self.active,
            "breaker": self.breaker.state,
            "consecutive_failures": self.breaker.consecutive_failures,
            "shed_total": self.shed_total,
            **self.counters,
        }


class AdmissionController:
    """Applies one :class:`TenantPolicy` across all tenants of a daemon.

    Not thread-safe on its own — the daemon serializes calls under its
    state lock.  The clock is injectable so tests can drive cooldowns and
    refills without sleeping.
    """

    def __init__(
        self,
        policy: TenantPolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self.tenants: Dict[str, TenantState] = {}

    def tenant(self, tenant_id: str) -> TenantState:
        state = self.tenants.get(tenant_id)
        if state is None:
            state = TenantState(
                tenant=tenant_id,
                policy=self.policy,
                bucket=TokenBucket(
                    self.policy.rate_per_s, self.policy.burst, self._clock
                ),
                breaker=CircuitBreaker(
                    self.policy.breaker_threshold,
                    self.policy.breaker_cooldown_s,
                    self._clock,
                ),
            )
            self.tenants[tenant_id] = state
        return state

    def check_breaker(self, state: TenantState) -> bool:
        """Shed when the tenant's breaker is open (checked first: a
        quarantined tenant is shed even for cached results, so its traffic
        stops hitting the service until the cooldown probe succeeds).

        Returns True when this admission consumed the tenant's half-open
        probe slot — the caller must either let a job run to completion
        (feeding ``record_success``/``record_failure``) or give the slot
        back with :meth:`CircuitBreaker.release_probe` if the submission
        resolves without executing anything.
        """
        was_open = state.breaker.state == CircuitBreaker.OPEN
        if not state.breaker.allow():
            state.counters["shed_circuit_breaker"] += 1
            raise ServiceOverloadError(
                f"tenant {state.tenant!r} circuit breaker is open "
                f"({state.breaker.consecutive_failures} consecutive "
                f"failed/degraded jobs; cooldown "
                f"{state.policy.breaker_cooldown_s:g}s)",
                tenant=state.tenant,
                reason="circuit-breaker",
            )
        return was_open and state.breaker.state == CircuitBreaker.HALF_OPEN

    def check_capacity(self, state: TenantState) -> None:
        """Shed when the tenant is over quota or over rate (checked only
        for submissions that would enqueue *new* work — coalesced
        duplicates and cache hits consume no capacity)."""
        if state.active >= state.policy.max_queue_depth:
            state.counters["shed_queue_depth"] += 1
            raise ServiceOverloadError(
                f"tenant {state.tenant!r} has {state.active} jobs "
                f"queued/running (quota {state.policy.max_queue_depth})",
                tenant=state.tenant,
                reason="queue-depth",
            )
        if not state.bucket.try_take():
            state.counters["shed_rate_limit"] += 1
            raise ServiceOverloadError(
                f"tenant {state.tenant!r} exceeded {state.policy.rate_per_s:g} "
                f"submissions/s (burst {state.policy.burst})",
                tenant=state.tenant,
                reason="rate-limit",
            )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {t: s.snapshot() for t, s in sorted(self.tenants.items())}
