"""Thin socket client for the profiling service.

One request, one response, one connection — the client opens a fresh
Unix-socket connection per call, writes a single newline-framed JSON
request, and reads the single response.  No connection pooling, no
retries: a daemon that cannot be reached raises the typed
:class:`ServiceUnavailableError` and the caller (CLI, bench, tests)
decides what that means.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro.harness.service.wire import (
    WIRE_VERSION,
    JobSpec,
    WireError,
    read_doc,
    send_doc,
)

__all__ = ["ServiceClient", "ServiceUnavailableError"]


class ServiceUnavailableError(ConnectionError):
    """No daemon is answering on the socket path."""


class ServiceClient:
    """Speaks the wire protocol to one daemon socket."""

    def __init__(self, socket_path: str, timeout_s: float = 120.0) -> None:
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    def _call(self, doc: Dict[str, Any],
              timeout_s: Optional[float] = None) -> Dict[str, Any]:
        if not hasattr(socket, "AF_UNIX"):
            raise ServiceUnavailableError(
                "AF_UNIX sockets are unavailable on this platform"
            )
        doc = {"wire": WIRE_VERSION, **doc}
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s if timeout_s is not None else self.timeout_s)
        try:
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                raise ServiceUnavailableError(
                    f"no profiling daemon at {self.socket_path}: {exc}"
                ) from None
            send_doc(sock, doc)
            fh = sock.makefile("r", encoding="utf-8")
            response = read_doc(fh)
        finally:
            sock.close()
        if response is None:
            raise WireError("daemon closed the connection without responding")
        return response

    def wait_until_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ping until the daemon answers (daemon startup races)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if self.ping().get("ok"):
                    return True
            except (ServiceUnavailableError, WireError):
                pass
            time.sleep(0.05)
        return False

    # ------------------------------------------------------------------ ops

    def ping(self) -> Dict[str, Any]:
        return self._call({"op": "ping"}, timeout_s=5.0)

    def submit(self, spec: JobSpec,
               wait_s: Optional[float] = None) -> Dict[str, Any]:
        """Submit a job; with ``wait_s`` block until terminal (or timeout).

        The response is the daemon's verbatim answer: shed submissions come
        back as ``{"ok": False, "error": "ServiceOverloadError", ...}``
        rather than raising, so callers can count sheds without exception
        plumbing.
        """
        doc: Dict[str, Any] = {"op": "submit", "spec": spec.to_wire()}
        if wait_s is not None:
            doc["wait_s"] = wait_s
        timeout = None if wait_s is None else wait_s + 30.0
        return self._call(doc, timeout_s=timeout)

    def status(self) -> Dict[str, Any]:
        return self._call({"op": "status"}, timeout_s=10.0)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._call({"op": "job", "job_id": job_id}, timeout_s=10.0)

    def wait(self, job_id: str, timeout_s: float = 60.0) -> Dict[str, Any]:
        return self._call(
            {"op": "wait", "job_id": job_id, "timeout_s": timeout_s},
            timeout_s=timeout_s + 30.0,
        )

    def result(self, fingerprint: str) -> Dict[str, Any]:
        return self._call({"op": "result", "fingerprint": fingerprint})

    def shutdown(self) -> Dict[str, Any]:
        return self._call({"op": "shutdown"}, timeout_s=10.0)
