"""Service wire protocol: job specs, fingerprints, and socket framing.

The daemon speaks newline-delimited JSON over a Unix domain socket: a
client connects, writes one request object on one line, and reads one
response object on one line.  Requests carry an ``op`` (``ping``,
``submit``, ``status``, ``job``, ``wait``, ``result``, ``shutdown``) and a
``wire`` version; mismatched versions are refused, not guessed at.

:class:`JobSpec` is the profiling request a tenant submits — the subset of
:class:`~repro.harness.request.ProfileRequest` that shapes *results* plus
the service-level knobs (tenant id, deadline).  Two specs that canonicalize
to the same session fingerprint are the same work: in-flight submissions
coalesce onto one execution and completed ones are served from the
content-addressed result store.  The fingerprint is derived with the exact
:func:`~repro.harness.runner.session_fingerprint` machinery the journal
uses, so "same job" here means "bit-identical session" there.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

WIRE_VERSION = 1

#: admission-control knobs that never affect results (excluded from the
#: job fingerprint: a resubmit with a different deadline is the same work)
_EXECUTION_ONLY = ("tenant", "deadline_s")


class WireError(ValueError):
    """A malformed or incompatible wire message."""


@dataclass(frozen=True)
class JobSpec:
    """One tenant's profiling request, as it crosses the wire.

    Everything except ``tenant`` and ``deadline_s`` determines the
    session's results and therefore its fingerprint; those two are
    admission-control inputs only.
    """

    #: tenant id the request is accounted (and shed) under
    tenant: str
    #: registered application name (:mod:`repro.apps.registry`)
    app: str
    runs: int = 5
    base_seed: int = 0
    experiment_ms: float = 50.0
    speedup_step: int = 20
    #: chaos intensity (:meth:`~repro.sim.faults.FaultPlan.chaos`); ``None``
    #: = no fault injection
    chaos: Optional[float] = None
    chaos_seed: int = 0
    planner: str = "static"
    budget: Optional[int] = None
    #: wall-clock budget in seconds: queued past this = shed, running past
    #: this = stopped at the completed prefix (resumable by resubmitting)
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise WireError("JobSpec.tenant must be non-empty")
        if not self.app:
            raise WireError("JobSpec.app must be non-empty")
        if self.runs < 1:
            raise WireError(f"JobSpec.runs must be >= 1, got {self.runs}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise WireError("JobSpec.deadline_s must be positive")

    def to_wire(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "JobSpec":
        if not isinstance(doc, dict):
            raise WireError(f"job spec must be an object, got {type(doc).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise WireError(f"unknown job spec field(s): {', '.join(unknown)}")
        try:
            return cls(**doc)
        except TypeError as exc:
            raise WireError(f"invalid job spec: {exc}") from None

    # -- session materialization ------------------------------------------------

    def build_session(self) -> Tuple[Any, Any, Any]:
        """(AppSpec, CozConfig, ProfileRequest-parts) this spec describes.

        Builds exactly what ``repro profile`` would: the registered app,
        its scoped profiler configuration, the fault plan, and the plan
        config.  The daemon adds execution-only knobs (journal paths,
        checkpoint dir, worker count, deadline) on top.
        """
        from repro.apps import registry
        from repro.core.config import CozConfig
        from repro.plan import PlanConfig
        from repro.sim.clock import MS

        spec = registry.build(self.app)
        cfg = CozConfig(
            scope=spec.scope,
            experiment_duration_ns=MS(self.experiment_ms),
            speedup_values=tuple(range(0, 101, self.speedup_step)),
        )
        faults = None
        if self.chaos is not None:
            from repro.sim.faults import FaultPlan

            faults = FaultPlan.chaos(seed=self.chaos_seed, intensity=self.chaos)
        plan = PlanConfig(planner=self.planner, budget=self.budget)
        return spec, cfg, (faults, plan)


def job_fingerprint(jobspec: JobSpec) -> str:
    """Canonical content address of the work a spec describes.

    The session fingerprint (app, runs, seeds, profiler config, fault
    plan, plan config — never execution knobs) hashed together with the
    wire version, so a protocol change can never alias old cached results.
    """
    from repro.harness.request import ProfileRequest, ResilienceConfig
    from repro.harness.runner import session_fingerprint

    spec, cfg, (faults, plan) = jobspec.build_session()
    request = ProfileRequest(
        runs=jobspec.runs,
        base_seed=jobspec.base_seed,
        coz_config=cfg,
        resilience=ResilienceConfig(faults=faults),
        plan=plan,
    )
    payload = {
        "wire": WIRE_VERSION,
        "session": session_fingerprint(spec, request, cfg),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- socket framing ----------------------------------------------------------


def send_doc(sock: socket.socket, doc: Dict[str, Any]) -> None:
    """Write one newline-terminated JSON message."""
    sock.sendall(json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n")


def read_doc(fh) -> Optional[Dict[str, Any]]:
    """Read one newline-terminated JSON message from a socket file.

    Returns ``None`` on a cleanly closed connection; raises
    :class:`WireError` on garbage.
    """
    line = fh.readline()
    if not line:
        return None
    try:
        doc = json.loads(line)
    except ValueError:
        raise WireError("undecodable wire message") from None
    if not isinstance(doc, dict):
        raise WireError(f"wire message must be an object, got {type(doc).__name__}")
    return doc
