"""Crash-safe session journal: checkpoint/resume for profiling sessions.

A causal-profiling session is many independent runs whose results merge in
run order.  That makes it checkpointable at run granularity: after every
completed (or failed) run, the harness appends one JSONL record to an
on-disk journal — ``write`` + ``flush`` + ``fsync`` per record, so a
``SIGKILL`` at any instant loses at most the record being written.  A
restarted session opens the journal, replays the completed runs verbatim
(the payload is the run's :meth:`ProfileData.to_json` wire document, which
is lossless), and executes only the remaining schedule.  Because run ``i``
is always seeded ``base_seed + i``, the resumed session needs no RNG
rewinding — the merged result is bit-identical to an uninterrupted
session, and ``repro doctor`` verifies exactly that.

Wire format (one JSON object per line):

* line 1 — header: ``{"kind": "header", "version": 1, "fingerprint":
  {...}}``.  The fingerprint captures everything that determines the
  session's results (app, runs, seeds, profiler config, fault plan —
  *not* execution-only knobs like ``jobs``); resuming under a different
  fingerprint is refused rather than silently merging incompatible data.
* run records: ``{"kind": "run", "segment": s, "index": i, "seed": n,
  "run": {...RunResult wire...}, "data": {...ProfileData wire...},
  "audit": {...} | null}``.
* failure records: ``{"kind": "failure", "segment": s, "failure":
  {...RunFailure wire...}}``.

``segment`` partitions one file among a session's phases (``compare``
journals the baseline and optimized sessions into the same file as
segments ``baseline`` and ``optimized``).

Loading tolerates a torn tail: a final line that does not decode is the
record that was being written when the previous session died, and is
dropped with a warning.  A torn line in the *middle* means real corruption
and raises :class:`JournalError`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

JOURNAL_VERSION = 1

#: the default segment name for single-session journals
DEFAULT_SEGMENT = "profile"


class JournalError(RuntimeError):
    """The journal cannot be used: corrupt, wrong version, or wrong session."""


def canonical(obj: Any) -> Any:
    """A JSON-safe, order-stable projection of ``obj`` for fingerprints.

    Dataclasses keep only their ``repr`` fields (dropping caches), sets are
    sorted (``repr(frozenset)`` ordering is not stable across processes
    under hash randomization), and anything non-JSON falls back to its
    ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.repr
        }
    if isinstance(obj, (frozenset, set)):
        return sorted((canonical(x) for x in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {
            str(k): canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


@dataclass
class JournalRecord:
    """One replayed journal entry: a completed run or a recorded failure."""

    kind: str  # "run" | "failure"
    segment: str
    index: int
    seed: int
    #: RunResult wire dict (kind == "run")
    run: Optional[Dict[str, Any]] = None
    #: the run's ProfileData wire document (kind == "run")
    data: Optional[Dict[str, Any]] = None
    #: the run's AuditReport wire document, if the session audited
    audit: Optional[Dict[str, Any]] = None
    #: RunFailure wire dict (kind == "failure")
    failure: Optional[Dict[str, Any]] = None


class SessionJournal:
    """Append-only JSONL journal for one profiling session.

    Use :meth:`create` for a fresh session and :meth:`resume` to reopen an
    interrupted one; both return a journal open for appending.  Every
    ``record_*`` call is flushed and fsync'd before returning, so a
    record's presence in the file means the run's data is durable.
    """

    def __init__(self, path: Path, fingerprint: Dict[str, Any]) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.records: List[JournalRecord] = []
        self._fh = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(cls, path, fingerprint: Dict[str, Any]) -> "SessionJournal":
        """Start a fresh journal; the file must not already exist.

        Creation is exclusive (``open(..., "x")``): a second writer racing
        on the same path — two daemon workers picking up one job, or a
        mistyped ``--journal`` pointing at a finished session — gets a
        :class:`JournalError` instead of silently truncating the existing
        records.  Use :meth:`resume` to append to an existing journal, or
        :meth:`open` for create-or-resume semantics.
        """
        journal = cls(Path(path), canonical(fingerprint))
        try:
            journal._fh = open(journal.path, "x", encoding="utf-8")
        except FileExistsError:
            raise JournalError(
                f"journal {journal.path} already exists; refusing to "
                f"truncate it (resume it, or remove the file first)"
            ) from None
        journal._append({
            "kind": "header",
            "version": JOURNAL_VERSION,
            "fingerprint": journal.fingerprint,
        })
        return journal

    @classmethod
    def open(
        cls, path, fingerprint: Dict[str, Any], grace_s: float = 0.5
    ) -> "SessionJournal":
        """Create the journal, or resume it when it already exists.

        The create-or-resume race is resolved by the filesystem: exclusive
        create means exactly one of two concurrent openers creates, and the
        loser resumes what the winner wrote.

        A journal that exists but holds no intact header is ambiguous: the
        winner of a concurrent create may simply not have flushed its
        header line yet, or a past writer died mid-header-write.  Unlinking
        immediately would delete a *live* writer's file and recreate the
        path, putting two writers on one journal — the exact truncation
        hazard exclusive create exists to prevent.  So resume is retried
        for ``grace_s`` first; only a file still headerless after the whole
        grace window (orders of magnitude longer than a header fsync) is
        declared a dead writer's debris and reclaimed.
        """
        path = Path(path)
        deadline = time.monotonic() + grace_s
        while True:
            if not path.exists():
                try:
                    return cls.create(path, fingerprint)
                except JournalError:
                    continue  # lost the create race; resume the winner's file
            try:
                return cls.resume(path, fingerprint)
            except JournalError as exc:
                msg = str(exc)
                headerless = (
                    "no intact header" in msg
                    or "is empty" in msg
                    or "does not exist" in msg
                )
                if not headerless:
                    raise
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.02)
        try:
            path.unlink()
        except OSError:
            pass
        return cls.create(path, fingerprint)

    @classmethod
    def resume(cls, path, fingerprint: Dict[str, Any]) -> "SessionJournal":
        """Reopen an interrupted session's journal for appending.

        Replays every intact record into :attr:`records` and refuses to
        resume (raising :class:`JournalError`) when the journal belongs to
        a different session — different app, seed, config, or fault plan.
        """
        path = Path(path)
        header, records = _load(path)
        want = canonical(fingerprint)
        have = header.get("fingerprint")
        if have != want:
            raise JournalError(
                f"journal {path} belongs to a different session; refusing to "
                f"resume (fingerprint mismatch: {_diff_keys(have, want)})"
            )
        journal = cls(path, want)
        journal.records = records
        journal._fh = open(path, "a", encoding="utf-8")
        return journal

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appending -------------------------------------------------------------

    def record_run(
        self,
        segment: str,
        index: int,
        seed: int,
        run: Dict[str, Any],
        data_json: Optional[str],
        audit_json: Optional[str] = None,
    ) -> None:
        """Journal one completed run (durable before this returns).

        ``data_json`` is ``None`` for plain (unprofiled) runs — the
        comparison harness journals bare runtime measurements.
        """
        self._append({
            "kind": "run",
            "segment": segment,
            "index": index,
            "seed": seed,
            "run": run,
            "data": json.loads(data_json) if data_json is not None else None,
            "audit": json.loads(audit_json) if audit_json else None,
        })

    def record_failure(self, segment: str, failure) -> None:
        """Journal one recorded run failure (a RunFailure)."""
        self._append({
            "kind": "failure",
            "segment": segment,
            "index": failure.index,
            "seed": failure.seed,
            "failure": failure.to_dict(),
        })

    def _append(self, doc: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is not open for appending")
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- replay ----------------------------------------------------------------

    def completed(self, segment: str = DEFAULT_SEGMENT) -> Dict[int, JournalRecord]:
        """Replayed records for one segment, keyed by run index.

        A duplicate index keeps the *first* record: re-journaling after a
        crash-mid-append can only duplicate, never diverge (same seed, same
        deterministic run).
        """
        out: Dict[int, JournalRecord] = {}
        for rec in self.records:
            if rec.segment == segment and rec.index not in out:
                out[rec.index] = rec
        return out


def _load(path: Path):
    """Parse a journal file into (header, records), tolerating a torn tail."""
    if not path.exists():
        raise JournalError(f"journal {path} does not exist")
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise JournalError(f"journal {path} is empty")

    docs = []
    for i, raw in enumerate(lines):
        try:
            docs.append(json.loads(raw))
        except ValueError:
            if i == len(lines) - 1:
                # the record being written when the session died
                warnings.warn(
                    f"journal {path}: dropping torn final record "
                    f"(line {i + 1}); the interrupted run will re-execute",
                    stacklevel=3,
                )
                break
            raise JournalError(
                f"journal {path} is corrupt at line {i + 1} "
                f"(undecodable non-final record)"
            )

    if not docs:
        # the only line was torn: the writer died inside the header write
        raise JournalError(f"journal {path} has no intact header record")
    header = docs[0]
    if header.get("kind") != "header":
        raise JournalError(f"journal {path} has no header record")
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"unsupported journal version {header.get('version')!r} in {path}"
        )

    records = []
    for doc in docs[1:]:
        kind = doc.get("kind")
        if kind not in ("run", "failure"):
            raise JournalError(f"journal {path}: unknown record kind {kind!r}")
        records.append(JournalRecord(
            kind=kind,
            segment=doc.get("segment", DEFAULT_SEGMENT),
            index=doc["index"],
            seed=doc["seed"],
            run=doc.get("run"),
            data=doc.get("data"),
            audit=doc.get("audit"),
            failure=doc.get("failure"),
        ))
    return header, records


def _diff_keys(have, want) -> str:
    """Human-readable first point of divergence between two fingerprints."""
    if not isinstance(have, dict) or not isinstance(want, dict):
        return "incompatible header"
    for key in sorted(set(have) | set(want)):
        if have.get(key) != want.get(key):
            return f"field {key!r} differs"
    return "unknown field differs"
