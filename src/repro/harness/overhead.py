"""Profiling-overhead breakdown (§4.4, Figure 9).

The paper measures Coz's overhead by running each benchmark in four
configurations and differencing successive runtimes:

1. no profiler at all                           -> baseline
2. Coz, terminated right after startup work     -> + startup overhead
3. Coz sampling but never inserting delays      -> + sampling overhead
4. Coz fully enabled                            -> + delay overhead

The simulator reproduces the same protocol: configuration 2 charges only the
debug-info processing cost, configuration 3 runs experiments whose virtual
speedup is always 0% (the paper's exact description), and configuration 4 is
the full profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean
from typing import Optional

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.harness.parallel import RunTask, execute_tasks


@dataclass
class OverheadBreakdown:
    """One Figure 9 bar: per-category overhead as % of baseline runtime."""

    name: str
    baseline_ns: float
    startup_pct: float
    sampling_pct: float
    delay_pct: float

    @property
    def total_pct(self) -> float:
        return self.startup_pct + self.sampling_pct + self.delay_pct

    def row(self) -> str:
        return (
            f"{self.name:<14} startup={self.startup_pct:>5.1f}%  "
            f"sampling={self.sampling_pct:>5.1f}%  delays={self.delay_pct:>5.1f}%  "
            f"total={self.total_pct:>5.1f}%"
        )


def measure_overhead(
    spec: AppSpec,
    coz_config: Optional[CozConfig] = None,
    runs: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit_report=None,
) -> OverheadBreakdown:
    """Run the four-configuration protocol on one app.

    Each configuration's runs go through the shared executor; with
    ``jobs != 1`` they execute in worker processes (per-run seeding and
    averaging are unchanged, so the breakdown is identical to serial).
    With an ``audit_report`` (:class:`~repro.core.audit.AuditReport`) the
    three profiled configurations run under the invariant audit and the
    per-run reports are folded in.
    """
    coz_config = coz_config or CozConfig()
    if coz_config.scope.files is None and spec.scope.files is not None:
        coz_config = replace(coz_config, scope=spec.scope)

    def timed(cfg: Optional[CozConfig]) -> float:
        if cfg is not None and audit_report is not None:
            cfg = replace(cfg, audit=True)
        tasks = [
            RunTask(
                index=i,
                seed=base_seed + i,
                coz_config=cfg,
                app_ref=spec.registry_ref,
                program_factory=None if spec.registry_ref is not None else spec.build,
                progress_points=tuple(spec.progress_points),
                latency_specs=tuple(spec.latency_specs),
            )
            for i in range(runs)
        ]
        outputs = execute_tasks(
            tasks, jobs=jobs, timeout=timeout,
            audit_report=audit_report if jobs != 1 else None,
        )
        if audit_report is not None:
            for out in outputs:
                per_run = out.audit_report()
                if per_run is not None:
                    audit_report.merge(per_run)
        return mean(out.run["runtime_ns"] for out in outputs)

    t_base = timed(None)
    # startup-only: debug info processed, but no sampling and no experiments
    t_startup = timed(replace(coz_config, enable_sampling=False))
    # sampling-only: experiments run with every virtual speedup forced to 0%
    t_sampling = timed(replace(coz_config, enable_delays=False))
    # full
    t_full = timed(coz_config)

    def pct(hi: float, lo: float) -> float:
        return 100.0 * (hi - lo) / t_base

    return OverheadBreakdown(
        name=spec.name,
        baseline_ns=t_base,
        startup_pct=pct(t_startup, t_base),
        sampling_pct=pct(t_sampling, t_startup),
        delay_pct=pct(t_full, t_sampling),
    )
