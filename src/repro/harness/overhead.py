"""Profiling-overhead breakdown (§4.4, Figure 9).

The paper measures Coz's overhead by running each benchmark in four
configurations and differencing successive runtimes:

1. no profiler at all                           -> baseline
2. Coz, terminated right after startup work     -> + startup overhead
3. Coz sampling but never inserting delays      -> + sampling overhead
4. Coz fully enabled                            -> + delay overhead

The simulator reproduces the same protocol: configuration 2 charges only the
debug-info processing cost, configuration 3 runs experiments whose virtual
speedup is always 0% (the paper's exact description), and configuration 4 is
the full profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean
from typing import Callable, List, Optional

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler


@dataclass
class OverheadBreakdown:
    """One Figure 9 bar: per-category overhead as % of baseline runtime."""

    name: str
    baseline_ns: float
    startup_pct: float
    sampling_pct: float
    delay_pct: float

    @property
    def total_pct(self) -> float:
        return self.startup_pct + self.sampling_pct + self.delay_pct

    def row(self) -> str:
        return (
            f"{self.name:<14} startup={self.startup_pct:>5.1f}%  "
            f"sampling={self.sampling_pct:>5.1f}%  delays={self.delay_pct:>5.1f}%  "
            f"total={self.total_pct:>5.1f}%"
        )


def measure_overhead(
    spec: AppSpec,
    coz_config: Optional[CozConfig] = None,
    runs: int = 3,
    base_seed: int = 0,
) -> OverheadBreakdown:
    """Run the four-configuration protocol on one app."""
    coz_config = coz_config or CozConfig()
    if coz_config.scope.files is None and spec.scope.files is not None:
        coz_config = replace(coz_config, scope=spec.scope)

    def timed(make_hook: Optional[Callable[[int], CausalProfiler]]) -> float:
        times: List[int] = []
        for i in range(runs):
            hook = make_hook(base_seed + i) if make_hook is not None else None
            result = spec.build(base_seed + i).run(hook=hook)
            times.append(result.runtime_ns)
        return mean(times)

    def profiler_with(seed: int, **changes) -> CausalProfiler:
        cfg = replace(coz_config, seed=seed, **changes)
        return CausalProfiler(cfg, spec.progress_points, spec.latency_specs)

    t_base = timed(None)
    # startup-only: debug info processed, but no sampling and no experiments
    t_startup = timed(lambda s: profiler_with(s, enable_sampling=False))
    # sampling-only: experiments run with every virtual speedup forced to 0%
    t_sampling = timed(lambda s: profiler_with(s, enable_delays=False))
    # full
    t_full = timed(lambda s: profiler_with(s))

    def pct(hi: float, lo: float) -> float:
        return 100.0 * (hi - lo) / t_base

    return OverheadBreakdown(
        name=spec.name,
        baseline_ns=t_base,
        startup_pct=pct(t_startup, t_base),
        sampling_pct=pct(t_sampling, t_startup),
        delay_pct=pct(t_full, t_sampling),
    )
