"""Prediction-accuracy studies (§4.3).

The paper validates Coz by optimizing the *specific line* Coz flagged,
measuring how much faster that line got, reading the predicted program
speedup off the causal profile at that x-value, and comparing it with the
realized end-to-end speedup:

* ferret: line 320's throughput +27%  -> predicted 21.4%, observed 21.2%;
* dedup: hash chain 77.7 -> 3.09 trips (96% line speedup) -> predicted 9%,
  observed 8.95%.

:func:`accuracy_study` does the same on the simulator: profile the app with
a focused (fixed-line) configuration, actually speed the line up via the
app's ``line_speedups`` knob, and report predicted vs realized.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean
from typing import Optional

from repro.apps.spec import AppSpec
from repro.core.analysis import predict_program_speedup
from repro.core.config import CozConfig
from repro.core.profile_data import LineProfile
from repro.harness.runner import profile_app
from repro.sim.source import SourceLine


@dataclass
class AccuracyResult:
    """Predicted vs realized program speedup for one line optimization."""

    app: str
    line: SourceLine
    line_speedup_pct: float
    predicted: float   # fraction
    realized: float    # fraction
    profile: LineProfile

    @property
    def error_pp(self) -> float:
        """Absolute prediction error in percentage points."""
        return abs(self.predicted - self.realized) * 100.0

    def row(self) -> str:
        return (
            f"{self.app:<10} {self.line}: line +{self.line_speedup_pct:.0f}% -> "
            f"predicted {100 * self.predicted:+.2f}%, realized {100 * self.realized:+.2f}% "
            f"(error {self.error_pp:.2f}pp)"
        )


def accuracy_study(
    spec: AppSpec,
    optimized_spec: AppSpec,
    line: SourceLine,
    line_speedup_pct: float,
    coz_config: Optional[CozConfig] = None,
    profile_runs: int = 6,
    timing_runs: int = 5,
    base_seed: int = 0,
) -> AccuracyResult:
    """Profile ``line`` on the original app, then realize the optimization.

    ``optimized_spec`` must be the same app built with the line actually
    sped up by ``line_speedup_pct`` (via ``line_speedups`` or the app's own
    optimized variant).
    """
    coz_config = coz_config or CozConfig()
    coz_config = replace(
        coz_config,
        scope=spec.scope if coz_config.scope.files is None else coz_config.scope,
        fixed_line=line,
    )
    outcome = profile_app(spec, runs=profile_runs, coz_config=coz_config,
                          base_seed=base_seed)
    profile = outcome.profile.get(line)
    if profile is None:
        raise RuntimeError(f"no profile collected for {line}")
    predicted = predict_program_speedup(profile, line_speedup_pct)

    base = mean(
        spec.build(base_seed + i).run().runtime_ns for i in range(timing_runs)
    )
    opt = mean(
        optimized_spec.build(base_seed + i).run().runtime_ns
        for i in range(timing_runs)
    )
    realized = (base - opt) / base
    return AccuracyResult(
        app=spec.name,
        line=line,
        line_speedup_pct=line_speedup_pct,
        predicted=predicted,
        realized=realized,
        profile=profile,
    )
