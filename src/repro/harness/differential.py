"""Differential profiler report: causal vs gprof vs perf vs GAPP.

The paper's argument is comparative — Figure 2a shows gprof pointing at the
wrong half of the example program, Figure 7b shows the three lines Coz
flags in SQLite accounting for ~0.15% of perf samples.  This module makes
that comparison a first-class artifact: run every profiler in the repo on
one app, normalize each one's output into a common ranked-lines schema, and
report where (and why) the rankings disagree.

One :func:`run_differential` session runs:

* the **causal** profile through :func:`~repro.harness.runner.
  run_profile_session` — inheriting the parallel executor, checkpoint
  fast-forward, and bit-identical parallel/serial merging;
* **perf** and **GAPP** as passive observers on a single plain run (neither
  charges cost, so they share one execution);
* **gprof** on its own run — its mcount instrumentation slows the program
  (the probe effect is part of what it reports), so it cannot share an
  execution with the passive observers.

Rankings live in two spaces.  *Line* space compares causal, perf, and GAPP
directly.  *Func* space adds gprof (which only knows functions): causal,
perf-by-line, and GAPP project through the line→function map the GAPP
observer records, with a function scored by its best line.

Agreement between two rankings is Spearman's rho and Kendall's tau on the
overlap of their key sets (:mod:`repro.stats.rankcorr`), plus the top-k
keys each ranking has that the other's top-k misses — the quantitative form
of "perf's top-10 does not contain what Coz says matters".

Everything here is deterministic: rankings sort by (-score, key), reports
contain no timestamps, and serial/parallel sessions render byte-identical
text and JSON.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.apps import registry
from repro.baselines.gapp import GappObserver
from repro.baselines.gprof import GprofObserver
from repro.baselines.perf import PerfObserver
from repro.core.config import CozConfig
from repro.harness.request import ExecutionConfig, ProfileRequest
from repro.harness.runner import run_profile_session
from repro.sim.clock import MS
from repro.stats.rankcorr import rank_correlation, top_k_disagreement

#: profiler names in report order
PROFILERS = ("causal", "gprof", "perf", "gapp")

#: shrunk workloads for ``--quick`` smoke runs (CI); apps not listed keep
#: their default workload
_QUICK_KWARGS = {
    "example": {"rounds": 100},
    "ferret": {"n_queries": 300},
    "sqlite": {"inserts_per_thread": 300},
    "memcached": {"n_requests": 400},
}

#: agreement pairs per space, in report order
_LINE_PAIRS = (("causal", "perf"), ("causal", "gapp"), ("perf", "gapp"))
_FUNC_PAIRS = (
    ("causal", "gprof"),
    ("causal", "perf"),
    ("causal", "gapp"),
    ("gprof", "perf"),
    ("gprof", "gapp"),
    ("perf", "gapp"),
)


@dataclass(frozen=True)
class DiffConfig:
    """Tunables for one differential session."""

    runs: int = 6
    base_seed: int = 0
    jobs: int = 1
    experiment_ms: float = 25.0
    speedup_step: int = 20
    top_k: int = 10
    checkpoint: bool = True
    checkpoint_dir: Optional[str] = None
    #: shrink runs/experiments/workloads for smoke jobs
    quick: bool = False
    #: test hook: force the chunk-coalescing mode of the baseline observer
    #: runs (``None`` = the app's own config).  Reports must be identical
    #: either way — the determinism tests flip this.
    coalesce: Optional[bool] = None


@dataclass(frozen=True)
class RankedLine:
    """One row of a profiler's ranking, in the common schema."""

    key: str      # "file:line" (line space) or function name (func space)
    rank: int     # 1-based
    score: float  # the profiler's native metric; see Ranking.metric

    def to_dict(self) -> dict:
        return {"key": self.key, "rank": self.rank, "score": round(self.score, 6)}


@dataclass
class Ranking:
    """A profiler's full ordering of one key space."""

    profiler: str  # causal | gprof | perf | gapp
    space: str     # line | func
    metric: str    # slope | %time | %samples | %criticality
    entries: List[RankedLine]

    def keys(self) -> List[str]:
        return [e.key for e in self.entries]

    def rank_of(self, key: str) -> Optional[int]:
        for e in self.entries:
            if e.key == key:
                return e.rank
        return None

    def score_of(self, key: str) -> Optional[float]:
        for e in self.entries:
            if e.key == key:
                return e.score
        return None

    def to_dict(self) -> dict:
        return {
            "profiler": self.profiler,
            "space": self.space,
            "metric": self.metric,
            "entries": [e.to_dict() for e in self.entries],
        }


@dataclass
class Agreement:
    """Rank agreement between two profilers on one key space."""

    a: str
    b: str
    space: str
    overlap: int
    spearman: Optional[float]
    kendall: Optional[float]
    top_k: int
    #: a's top-k keys absent from b's top-k, and vice versa
    only_in_a: List[str]
    only_in_b: List[str]

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "space": self.space,
            "overlap": self.overlap,
            "spearman": None if self.spearman is None else round(self.spearman, 6),
            "kendall": None if self.kendall is None else round(self.kendall, 6),
            "top_k": self.top_k,
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
        }


@dataclass
class AppDiff:
    """The differential report for one application."""

    app: str
    runs: int
    experiments: int
    runtime_ns: int  # unprofiled (perf/GAPP observer) run
    rankings: List[Ranking]
    agreements: List[Agreement]

    def ranking(self, profiler: str, space: str) -> Optional[Ranking]:
        for r in self.rankings:
            if r.profiler == profiler and r.space == space:
                return r
        return None

    def agreement(self, a: str, b: str, space: str) -> Optional[Agreement]:
        for g in self.agreements:
            if g.a == a and g.b == b and g.space == space:
                return g
        return None

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "runs": self.runs,
            "experiments": self.experiments,
            "runtime_ns": self.runtime_ns,
            "rankings": [r.to_dict() for r in self.rankings],
            "agreements": [g.to_dict() for g in self.agreements],
        }


# -- session -------------------------------------------------------------------


def run_differential(app: str, config: Optional[DiffConfig] = None) -> AppDiff:
    """Run all four profilers on ``app`` and compare their rankings."""
    config = config or DiffConfig()
    runs = min(config.runs, 3) if config.quick else config.runs
    experiment_ms = 10.0 if config.quick else config.experiment_ms
    step = max(config.speedup_step, 25) if config.quick else config.speedup_step
    build_kwargs = _QUICK_KWARGS.get(app, {}) if config.quick else {}
    spec = registry.build(app, **build_kwargs)

    # causal session: the full propose->execute->observe loop, sharing the
    # parallel executor and checkpoint store with `repro profile`
    execution = ExecutionConfig(
        jobs=config.jobs,
        checkpoint=config.checkpoint,
        checkpoint_dir=config.checkpoint_dir,
    )
    outcome = run_profile_session(
        spec,
        ProfileRequest(
            runs=runs,
            base_seed=config.base_seed,
            coz_config=CozConfig(
                scope=spec.scope,
                experiment_duration_ns=MS(experiment_ms),
                speedup_values=tuple(range(0, 101, step)),
            ),
            execution=execution,
        ),
    )
    causal_lines = {str(lp.line): lp.slope for lp in outcome.profile.lines}
    experiments = outcome.experiment_count

    # Free sampling-driven selection spends experiments proportionally to
    # sample share, so it rarely lands on rarely-sampled lines — which is
    # exactly where the paper's Figure 7 bottlenecks hide.  Each line the
    # app spec declares as "of interest" gets a focused fixed-line session
    # (the Figure 7a recipe: dense speedup schedule, short experiments);
    # its replicated slope replaces the free session's estimate, if any.
    focused_runs = 2 if config.quick else 5
    for name in sorted(spec.lines):
        ln = spec.lines[name]
        focused = run_profile_session(
            spec,
            ProfileRequest(
                runs=focused_runs,
                base_seed=config.base_seed,
                coz_config=CozConfig(
                    scope=spec.scope,
                    experiment_duration_ns=MS(10),
                    fixed_line=ln,
                    speedup_schedule=(0, 15, 0, 30, 0, 45, 0, 60),
                ),
                execution=execution,
            ),
        )
        experiments += focused.experiment_count
        lp = focused.profile.get(ln)
        if lp is not None:
            causal_lines[str(ln)] = lp.slope

    # baseline observers: perf and GAPP are passive and share one plain run;
    # gprof charges its mcount probe effect, so it observes its own run
    sim_config = None
    perf_obs, gapp_obs = PerfObserver(), GappObserver()
    program = spec.build(config.base_seed)
    if config.coalesce is not None and hasattr(program.config, "coalesce"):
        sim_config = replace(program.config, coalesce=config.coalesce)
    passive = program.run(observers=[perf_obs, gapp_obs], config=sim_config)
    gprof_obs = GprofObserver()
    gprof_program = spec.build(config.base_seed)
    if config.coalesce is not None and hasattr(gprof_program.config, "coalesce"):
        sim_config = replace(gprof_program.config, coalesce=config.coalesce)
    gprof_program.run(observers=[gprof_obs], config=sim_config)

    rankings = _build_rankings(
        causal_lines, perf_obs.profile(), gapp_obs.profile(), gprof_obs.profile()
    )
    agreements = _build_agreements(rankings, config.top_k)
    return AppDiff(
        app=app,
        runs=runs,
        experiments=experiments,
        runtime_ns=passive.runtime_ns,
        rankings=rankings,
        agreements=agreements,
    )


def _ranking(profiler: str, space: str, metric: str, scored: Dict[str, float]) -> Ranking:
    """Deterministic ordering: score descending, then key ascending."""
    ordered = sorted(scored.items(), key=lambda kv: (-kv[1], kv[0]))
    return Ranking(
        profiler=profiler,
        space=space,
        metric=metric,
        entries=[
            RankedLine(key=k, rank=i + 1, score=s)
            for i, (k, s) in enumerate(ordered)
        ],
    )


def _build_rankings(
    causal_lines: Dict[str, float], perf_profile, gapp_profile, gprof_profile
) -> List[Ranking]:
    line_funcs = {
        str(ln): func for ln, func in gapp_profile.line_funcs.items()
    }

    def func_of(key: str) -> str:
        if key.startswith("<"):  # pseudo lines stay under their pseudo file
            return key.rsplit(":", 1)[0]
        return line_funcs.get(key, "<unknown>")

    perf_lines = {e.key: e.pct for e in perf_profile.by_line()}
    gapp_lines = {e.key: e.criticality for e in gapp_profile.by_line()}

    # func space: gprof is native; the others project through line_funcs,
    # scoring a function by its best line (a causal profile is about the
    # single best place to optimize, not a sum over a function's body)
    def project(lines: Dict[str, float]) -> Dict[str, float]:
        funcs: Dict[str, float] = {}
        for key, score in lines.items():
            f = func_of(key)
            if f not in funcs or score > funcs[f]:
                funcs[f] = score
        return funcs

    gprof_funcs = {e.func: e.pct_time for e in gprof_profile.flat()}

    return [
        _ranking("causal", "line", "slope", causal_lines),
        _ranking("perf", "line", "%samples", perf_lines),
        _ranking("gapp", "line", "%criticality", gapp_lines),
        _ranking("causal", "func", "slope", project(causal_lines)),
        _ranking("gprof", "func", "%time", gprof_funcs),
        _ranking("perf", "func", "%samples", project(perf_lines)),
        _ranking("gapp", "func", "%criticality", project(gapp_lines)),
    ]


def _build_agreements(rankings: List[Ranking], top_k: int) -> List[Agreement]:
    by_id = {(r.profiler, r.space): r for r in rankings}
    agreements = []
    for space, pairs in (("line", _LINE_PAIRS), ("func", _FUNC_PAIRS)):
        for a, b in pairs:
            ra, rb = by_id[(a, space)], by_id[(b, space)]
            corr = rank_correlation(ra.keys(), rb.keys())
            agreements.append(
                Agreement(
                    a=a,
                    b=b,
                    space=space,
                    overlap=corr.overlap,
                    spearman=corr.spearman,
                    kendall=corr.kendall,
                    top_k=top_k,
                    only_in_a=top_k_disagreement(ra.keys(), rb.keys(), top_k),
                    only_in_b=top_k_disagreement(rb.keys(), ra.keys(), top_k),
                )
            )
    return agreements


# -- rendering -----------------------------------------------------------------


def _fmt_corr(value: Optional[float]) -> str:
    return "   n/a" if value is None else f"{value:+.3f}"


def render_app_diff(diff: AppDiff, top: int = 10) -> str:
    """Human-readable per-app differential report (deterministic)."""
    buf = io.StringIO()
    buf.write(
        f"== differential profile: {diff.app} "
        f"({diff.runs} causal runs, {diff.experiments} experiments) ==\n\n"
    )

    causal = diff.ranking("causal", "line")
    perf = diff.ranking("perf", "line")
    gapp = diff.ranking("gapp", "line")
    buf.write("causal top lines (what an optimization would buy) and where\n")
    buf.write("the conventional profilers rank them:\n")
    buf.write(
        f"{'#':>4}  {'line':<24} {'slope':>8}   {'perf':<16} {'gapp':<16}\n"
    )
    for e in causal.entries[: min(top, 5)]:
        pr, gr = perf.rank_of(e.key), gapp.rank_of(e.key)
        pd = f"#{pr} ({perf.score_of(e.key):.2f}%)" if pr else "unranked"
        gd = f"#{gr} ({gapp.score_of(e.key):.2f}%)" if gr else "unranked"
        buf.write(
            f"{e.rank:>4}  {e.key:<24} {e.score:>+8.3f}   {pd:<16} {gd:<16}\n"
        )
    buf.write("\n")

    for r in diff.rankings:
        buf.write(f"-- {r.profiler} ({r.space} space, metric: {r.metric}) --\n")
        for e in r.entries[:top]:
            buf.write(f"  {e.rank:>3}. {e.key:<28} {e.score:>+10.3f}\n")
        if len(r.entries) > top:
            buf.write(f"       ... {len(r.entries) - top} more\n")
    buf.write("\n")

    buf.write("rank agreement (Spearman rho / Kendall tau on shared keys):\n")
    for g in diff.agreements:
        buf.write(
            f"  {g.space:<5} {g.a:>6} ~ {g.b:<6} "
            f"rho={_fmt_corr(g.spearman)}  tau={_fmt_corr(g.kendall)}  "
            f"n={g.overlap}\n"
        )
    buf.write("\n")

    buf.write(f"top-{diff.agreements[0].top_k} disagreement:\n")
    for g in diff.agreements:
        if g.only_in_a:
            buf.write(
                f"  [{g.space}] {g.a} top-{g.top_k} absent from {g.b} "
                f"top-{g.top_k}: {', '.join(g.only_in_a)}\n"
            )
    buf.write(
        "\nwhy they disagree: gprof and perf rank by where time is spent,\n"
        "GAPP by how long lock holders keep others blocked; only the causal\n"
        "profile measures what speeding a line up would do to throughput —\n"
        "code can dominate samples yet be off the critical path (Fig. 2a),\n"
        "or barely register yet gate every thread (Fig. 7b).\n"
    )
    return buf.getvalue()


def render_diff(diffs: List[AppDiff], top: int = 10) -> str:
    return "\n".join(render_app_diff(d, top=top) for d in diffs)


def diff_to_json(diffs: List[AppDiff]) -> str:
    """Canonical JSON document (sorted keys, no timestamps)."""
    doc = {"version": 1, "apps": [d.to_dict() for d in diffs]}
    return json.dumps(doc, sort_keys=True, indent=2)
