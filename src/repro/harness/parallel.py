"""Process-parallel execution of independent simulation runs.

Coz builds dense causal profiles by merging many short runs; each run is an
independent deterministic simulation, so the harness can fan them out over
a :class:`~concurrent.futures.ProcessPoolExecutor` without changing any
result.  Three properties make that safe:

* **seed assignment** — tasks carry the exact per-run seed the serial loop
  would have used (``base_seed + i``); workers never draw seeds themselves;
* **worker-side rebuild** — app specs hold closures that do not pickle, so
  tasks reference apps by :class:`~repro.apps.registry.AppRef` and workers
  rebuild them from :mod:`repro.apps.registry`.  Arbitrary picklable
  program factories are also accepted (the :func:`profile_program` path);
* **ordered merge** — results are reassembled in task-index order no matter
  which worker finished first, so the merged profile is bit-identical to
  the serial one.

Resilience model (typed by :mod:`repro.sim.errors`):

* **Deterministic run failures** — a run that raises
  :class:`~repro.sim.errors.SimulationError` (deadlock, injected thread
  crash, stuck lock-holder) fails identically on every retry, so it is
  *never* retried: :func:`_run_task` converts it into a
  :class:`~repro.core.profile_data.RunFailure` record carried home in the
  task's :class:`RunOutput`.  The session completes degraded instead of
  dying.
* **Environmental worker failures** — a worker that raises, dies
  (``SIGKILL`` → ``BrokenProcessPool``), or exceeds its deadline gets a
  typed :class:`~repro.sim.errors.WorkerCrashError` /
  :class:`~repro.sim.errors.WorkerHungError`.  These are retried under a
  :class:`RetryPolicy`: capped exponential backoff with seeded jitter,
  bounded in-pool attempts (a broken pool is rebuilt a bounded number of
  times), and an in-parent execution as the last resort — so the session
  completes whenever a serial session would.
* **Watchdog** — with no explicit ``timeout``, each wait is bounded by a
  deadline derived from the running median of healthy worker wall-times
  (:class:`Watchdog`), so a hung worker can never hang the session.  Hung
  futures cannot be ``cancel()``-ed and ``shutdown(wait=False)`` merely
  orphans the processes, so the first hang terminates the pool outright
  and the remaining tasks run in the parent.
* **Circuit breaker** — after ``RetryPolicy.breaker_threshold``
  *consecutive* worker failures the pool is evidently unhealthy: the
  breaker opens and every remaining task runs serially in the parent
  (one warning, not one per task).

``KeyboardInterrupt``/``SystemExit`` are never swallowed: the pool's
processes are terminated and the interrupt re-raised, and because the
session journal (:mod:`repro.harness.journal`) fsyncs every record as it
is written, a Ctrl-C'd session is immediately resumable.

Auditing: with ``coz_config.audit`` set, each task's worker attaches a
:class:`~repro.core.audit.DelayAuditor` and ships the resulting
:class:`~repro.core.audit.AuditReport` home in its wire format
(``audit_json``).  ``execute_tasks(..., audit_report=...)`` additionally
re-executes a sampled subset of worker runs in the parent and checks
bit-identity (the *parallel-serial-identity* invariant).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import random
import signal
import time
import warnings
from bisect import insort
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import CozConfig
from repro.core.profile_data import ProfileData, RunFailure
from repro.core.profiler import CausalProfiler
from repro.sim.errors import SimulationError, WorkerCrashError, WorkerHungError
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.program import Program, RunResult

#: cancelled futures raise this; BaseException on modern Pythons, so a bare
#: ``except Exception`` would miss it after a pool termination
_FutureCancelled = concurrent.futures.CancelledError

#: ``jobs`` value meaning "pick a worker count from the machine":
#: ``min(task count, os.cpu_count())``.
AUTO_JOBS = 0


class ParallelExecutionWarning(UserWarning):
    """A parallel batch degraded (fallback to serial, or a retried run)."""


def resolve_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Turn a ``jobs`` request into a concrete worker count.

    ``None`` or :data:`AUTO_JOBS` (0) means cpu-count-aware auto sizing;
    explicit values are clamped to the number of tasks.
    """
    if jobs is None or jobs == AUTO_JOBS:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return max(1, min(jobs, n_tasks))


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor retries environmental worker failures.

    Deterministic run failures (:class:`~repro.sim.errors.SimulationError`)
    are never retried — same seed, same fault — so this policy governs only
    worker crashes, pool breakage, and watchdog timeouts.
    """

    #: worker-process attempts per task before falling back to the parent
    pool_attempts: int = 2
    #: first backoff sleep; doubles per attempt up to :attr:`backoff_cap_s`
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: fraction of each backoff randomized away (seeded, deterministic)
    jitter: float = 0.5
    #: jitter stream seed
    seed: int = 0
    #: consecutive worker failures that open the circuit breaker
    breaker_threshold: int = 3
    #: times a broken pool is rebuilt before giving up on pooling
    pool_recreations: int = 1

    def backoff_s(self, attempt: int, task_seed: int) -> float:
        """Capped exponential backoff with seeded jitter for one retry."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** attempt))
        rng = random.Random(
            (self.seed << 32) ^ task_seed ^ (attempt << 8) ^ 0xBACC
        )
        return base * (1.0 - self.jitter * rng.random())


class Watchdog:
    """Per-run deadline from a running median of healthy wall-times.

    Until :attr:`min_samples` healthy runs have reported, the deadline is
    the generous absolute cap; after that it is
    ``factor * median + grace_s`` (still capped).  Only healthy worker
    runs feed the median — failed or faulted runs do not shrink it.
    """

    def __init__(
        self,
        factor: float = 8.0,
        grace_s: float = 2.0,
        min_samples: int = 3,
        max_deadline_s: float = 300.0,
    ) -> None:
        self.factor = factor
        self.grace_s = grace_s
        self.min_samples = min_samples
        self.max_deadline_s = max_deadline_s
        self._walls: List[float] = []

    def observe(self, wall_s: float) -> None:
        if wall_s > 0:
            insort(self._walls, wall_s)

    @property
    def median_s(self) -> Optional[float]:
        if not self._walls:
            return None
        n = len(self._walls)
        mid = n // 2
        if n % 2:
            return self._walls[mid]
        return (self._walls[mid - 1] + self._walls[mid]) / 2.0

    def deadline_s(self) -> float:
        if len(self._walls) < self.min_samples:
            return self.max_deadline_s
        return min(self.max_deadline_s, self.factor * self.median_s + self.grace_s)


@dataclass
class RunTask:
    """One simulation run: what to build, how to seed it, what to measure.

    Exactly one of ``app_ref`` / ``program_factory`` should be set.  With
    ``coz_config`` set the run happens under a :class:`CausalProfiler`
    seeded ``replace(coz_config, seed=seed)`` — the serial loop's exact
    recipe; with ``coz_config=None`` it is a plain (unprofiled) run, as
    used by the comparison and overhead harnesses.  ``faults`` carries the
    session's :class:`~repro.sim.faults.FaultPlan` into the run (sim-level
    faults) and the worker (kill/hang faults).
    """

    index: int
    seed: int
    coz_config: Optional[CozConfig] = None
    #: picklable registry reference (:class:`repro.apps.registry.AppRef`)
    app_ref: Optional[object] = None
    #: direct factory; must be picklable to cross process boundaries
    program_factory: Optional[Callable[[int], Program]] = None
    progress_points: Tuple = ()
    latency_specs: Tuple = ()
    #: fault-injection plan for this run (``None`` = no injection)
    faults: Optional[FaultPlan] = None
    #: checkpoint fast-forward (repro.harness.checkpoint): resume this run
    #: from a stored snapshot when one exists, record one when it doesn't
    checkpoint: bool = False
    #: canonical run fingerprint the checkpoint store is keyed by
    checkpoint_key: Optional[str] = None
    #: shared on-disk checkpoint cache (workers read and populate it)
    checkpoint_dir: Optional[str] = None
    #: prefix snapshot shipped from the parent's store, so fan-out cost
    #: does not scale with warmup length (workers skip the store lookup)
    snapshot: Optional[object] = field(default=None, repr=False)


@dataclass
class RunOutput:
    """Result of one task: a run summary plus (for profiled runs) the
    profiler's data in the :meth:`ProfileData.to_json` wire format.

    A task that failed deterministically carries a ``failure`` record
    (:meth:`RunFailure.to_dict` wire form) instead of run data.
    """

    index: int
    seed: int
    run: Dict[str, Any] = field(default_factory=dict)
    data_json: Optional[str] = None
    #: per-run invariant audit (wire format), when the config asked for one
    audit_json: Optional[str] = None
    #: RunFailure wire dict when the run produced no data
    failure: Optional[Dict[str, Any]] = None
    #: worker-measured execution seconds (feeds the watchdog median);
    #: wall-clock, so excluded from equality
    wall_s: float = field(default=0.0, compare=False)
    #: in-process executions keep the live objects to skip re-parsing
    _data: Optional[ProfileData] = field(default=None, repr=False, compare=False)
    _run_result: Optional[RunResult] = field(default=None, repr=False, compare=False)
    _audit: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def run_failure(self) -> Optional[RunFailure]:
        if self.failure is None:
            return None
        return RunFailure.from_dict(self.failure)

    def profile_data(self) -> Optional[ProfileData]:
        if self._data is not None:
            return self._data
        if self.data_json is None:
            return None
        return ProfileData.from_json(self.data_json)

    def run_result(self) -> Optional[RunResult]:
        if self._run_result is not None:
            return self._run_result
        if self.failed:
            return None
        return RunResult(engine=None, **self.run)

    def audit_report(self):
        """The run's :class:`~repro.core.audit.AuditReport`, if audited."""
        if self._audit is not None:
            return self._audit
        if self.audit_json is None:
            return None
        from repro.core.audit import AuditReport

        return AuditReport.from_json(self.audit_json)


def _summarize(result: RunResult) -> Dict[str, Any]:
    """The picklable subset of a RunResult (everything but the engine)."""
    return {
        "runtime_ns": result.runtime_ns,
        "cpu_ns": result.cpu_ns,
        "profiler_cpu_ns": result.profiler_cpu_ns,
        "delay_ns": result.delay_ns,
        "progress_counts": dict(result.progress_counts),
        "thread_count": result.thread_count,
        "sample_count": result.sample_count,
        "events_processed": result.events_processed,
    }


def _resolve_factory(task: RunTask):
    """(factory, progress_points, latency_specs) for a task, rebuilding
    registry-referenced apps by name."""
    if task.app_ref is not None:
        spec = task.app_ref.build()
        return spec.build, tuple(spec.progress_points), tuple(spec.latency_specs)
    if task.program_factory is None:
        raise ValueError("RunTask needs an app_ref or a program_factory")
    return task.program_factory, task.progress_points, task.latency_specs


def _checkpoint_store(task: RunTask):
    """The task's checkpoint store, or ``None`` when it cannot help.

    Workers without a shared cache directory skip the store entirely: their
    in-memory cache dies with the process, so recording there is pure
    overhead (a shipped ``task.snapshot`` still resumes them warm).
    """
    if not task.checkpoint or task.checkpoint_key is None:
        return None
    in_worker = multiprocessing.parent_process() is not None
    if in_worker and task.checkpoint_dir is None:
        return None
    from repro.harness.checkpoint import CheckpointStore

    return CheckpointStore(task.checkpoint_key, directory=task.checkpoint_dir)


def _run_task(task: RunTask, keep_objects: bool = False) -> RunOutput:
    """Execute one run; mirrors the serial loop body exactly.

    Deterministic simulation failures (deadlock, injected crash, stuck
    lock-holder) become a failure-record output — they would fail
    identically on any retry, so the run is marked lost and the session
    carries on degraded.  Checkpointed tasks go through
    :func:`repro.harness.checkpoint.execute_run`, which resumes from the
    deepest stored snapshot when one exists and records fresh checkpoints
    when it doesn't — bit-identical either way, including reproducing a
    deterministic failure from a snapshot taken before the fault fired.
    """
    factory, points, latency = _resolve_factory(task)

    def build():
        profiler = None
        if task.coz_config is not None:
            cfg = replace(task.coz_config, seed=task.seed)
            profiler = CausalProfiler(cfg, points, latency)
        program = factory(task.seed)
        run_config = None
        if task.faults is not None and task.faults.any_sim_faults:
            run_config = replace(program.config, faults=task.faults)
        return program, profiler, run_config

    try:
        if task.checkpoint and task.coz_config is not None:
            from repro.harness.checkpoint import execute_run

            result, profiler = execute_run(
                build,
                task.seed,
                snapshot=task.snapshot,
                store=_checkpoint_store(task),
            )
        else:
            program, profiler, run_config = build()
            result = program.run(hook=profiler, config=run_config)
    except SimulationError as exc:
        failure = RunFailure.from_error(task.index, task.seed, exc)
        return RunOutput(index=task.index, seed=task.seed, failure=failure.to_dict())
    out = RunOutput(index=task.index, seed=task.seed, run=_summarize(result))
    if keep_objects:
        out._run_result = result
        if profiler is not None:
            out._data = profiler.data
            out._audit = profiler.auditor.report() if profiler.auditor else None
    elif profiler is not None:
        out.data_json = profiler.data.to_json()
        if profiler.auditor is not None:
            out.audit_json = profiler.auditor.report().to_json()
    return out


def _enact_worker_faults(task: RunTask, attempt: int) -> None:
    """Make the *worker process* fail, when the plan says so.

    Fires only inside pool workers (never in the parent) and only on a
    task's first attempt — the attempt number is folded into the fault
    RNG — so the executor's recovery paths are exercised and the retry
    then succeeds.
    """
    plan = task.faults
    if plan is None or not (plan.worker_kill or plan.worker_hang):
        return
    if multiprocessing.parent_process() is None:
        return
    inj = FaultInjector(plan, task.seed, attempt=attempt)
    if inj.worker_kill:
        os.kill(os.getpid(), signal.SIGKILL)
    elif inj.worker_hang:
        time.sleep(plan.worker_hang_s)


def _run_task_in_worker(task: RunTask, attempt: int = 0) -> RunOutput:
    """Worker entry point: wire-format output plus measured wall time."""
    _enact_worker_faults(task, attempt)
    start = time.perf_counter()
    out = _run_task(task, keep_objects=False)
    out.wall_s = time.perf_counter() - start
    return out


def _run_serial(
    tasks: List[RunTask],
    on_output: Optional[Callable[[RunTask, RunOutput], None]] = None,
    deadline_monotonic: Optional[float] = None,
) -> List[RunOutput]:
    outputs = []
    for t in tasks:
        if deadline_monotonic is not None and time.monotonic() >= deadline_monotonic:
            break  # deadline passed: return what completed
        out = _run_task(t, keep_objects=True)
        if on_output is not None:
            on_output(t, out)
        outputs.append(out)
    return outputs


def _warn(message: str) -> None:
    warnings.warn(message, ParallelExecutionWarning, stacklevel=3)


def _picklable(task: RunTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except (pickle.PicklingError, AttributeError, TypeError):
        return False


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung workers included.

    ``Future.cancel()`` is a no-op once a task is running and
    ``shutdown(wait=False)`` merely abandons the worker processes, which
    keep grinding (and keep queued tasks starved) until they finish on
    their own.  The only way to reclaim a hung worker is to terminate its
    process.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=1.0)


def _audit_identity(tasks, outputs, audit_report) -> None:
    """Parallel-serial-identity: re-run a sampled subset in the parent.

    Re-executes the first and last profiled task in-process and compares
    both the run summary and the profile bit-for-bit against what the
    worker shipped home.  Appends the result to ``audit_report``.
    """
    from repro.core.audit import InvariantCheck

    by_index = {t.index: t for t in tasks}
    sample = [tasks[0].index, tasks[-1].index] if len(tasks) > 1 else [tasks[0].index]
    checked = 0
    failures = 0
    detail = ""
    for idx in dict.fromkeys(sample):
        out = outputs.get(idx)
        if out is None:
            continue
        redo = _run_task(by_index[idx], keep_objects=True)
        checked += 1
        same = (
            redo.run == out.run
            and redo.failure == out.failure
            and redo.profile_data() == out.profile_data()
        )
        if not same:
            failures += 1
            if not detail:
                detail = (
                    f"run {idx} (seed {out.seed}) differs between the worker "
                    f"and an in-parent re-execution"
                )
    audit_report.add(InvariantCheck(
        name="parallel-serial-identity",
        passed=failures == 0,
        checked=checked,
        failures=failures,
        detail=detail,
    ))


class _PoolSession:
    """Mutable state of one parallel batch: pool, futures, retry ledger."""

    def __init__(self, tasks: List[RunTask], jobs: int, retry: RetryPolicy) -> None:
        self.tasks = tasks
        self.jobs = jobs
        self.retry = retry
        self.pool: Optional[ProcessPoolExecutor] = None
        self.futures: Dict[int, concurrent.futures.Future] = {}
        self.attempts: Dict[int, int] = {t.index: 0 for t in tasks}
        self.outputs: Dict[int, RunOutput] = {}
        self.consecutive_failures = 0
        self.recreations = 0
        #: pool unusable (terminated after a hang, or unrecoverably broken)
        self.dead = False
        #: breaker open: run everything remaining in the parent
        self.breaker_open = False

    def submit(self, task: RunTask) -> None:
        self.futures[task.index] = self.pool.submit(
            _run_task_in_worker, task, self.attempts[task.index]
        )

    def submit_unfinished(self) -> None:
        for t in self.tasks:
            if t.index not in self.outputs:
                self.submit(t)

    def harvest_done(self) -> None:
        """Collect every already-finished future (before a pool teardown)."""
        for t in self.tasks:
            fut = self.futures.get(t.index)
            if t.index in self.outputs or fut is None or not fut.done():
                continue
            try:
                self.outputs[t.index] = fut.result(timeout=0)
            except (KeyboardInterrupt, SystemExit):
                raise
            except (_FutureCancelled, Exception):
                pass  # it failed; the main loop will handle this task

    def shutdown(self, now: bool = False) -> None:
        if self.pool is None:
            return
        if now:
            _terminate_pool(self.pool)
        else:
            self.pool.shutdown(wait=True, cancel_futures=True)
        self.pool = None

    def note_worker_failure(self) -> bool:
        """Count a worker failure; returns True when the breaker opens."""
        self.consecutive_failures += 1
        if (
            not self.breaker_open
            and self.consecutive_failures >= self.retry.breaker_threshold
        ):
            self.breaker_open = True
            _warn(
                f"{self.consecutive_failures} consecutive worker failures: "
                f"circuit breaker open, running remaining runs serially in "
                f"the parent"
            )
        return self.breaker_open

    def rebuild_pool(self) -> bool:
        """Replace a broken pool, bounded by the retry policy."""
        if self.recreations >= self.retry.pool_recreations:
            return False
        self.recreations += 1
        try:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = ProcessPoolExecutor(max_workers=self.jobs)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            _warn(f"could not rebuild process pool ({exc!r})")
            self.pool = None
            return False
        self.submit_unfinished()
        return True


def execute_tasks(
    tasks: List[RunTask],
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit_report=None,
    retry: Optional[RetryPolicy] = None,
    watchdog: Optional[Watchdog] = None,
    on_output: Optional[Callable[[RunTask, RunOutput], None]] = None,
    deadline_monotonic: Optional[float] = None,
) -> List[RunOutput]:
    """Run every task, parallel when asked and possible, serial otherwise.

    Outputs come back in task order regardless of completion order.
    Worker failures retry per ``retry`` (default :class:`RetryPolicy`):
    in-pool with capped exponential backoff first, in the parent last, with
    a circuit breaker that degrades the whole batch to in-parent serial
    execution after repeated consecutive failures.  Waits are bounded by
    ``timeout`` when given, else by the ``watchdog`` deadline (running
    median of healthy wall-times); the first hang terminates the pool's
    processes (hung workers cannot be cancelled) and the remaining tasks
    run in the parent.  A pool that cannot start degrades the whole batch
    to serial with a warning.

    ``deadline_monotonic`` (a ``time.monotonic()`` timestamp) bounds the
    whole batch: once it passes, no further task starts, in-flight waits
    are clamped to the remaining time, the pool is torn down, and the
    completed prefix is returned — so the returned list may be *shorter*
    than ``tasks``.  The profiling service uses this to propagate a job's
    deadline into the executor's watchdog.  Without a deadline every task
    produces an output, exactly as before.

    ``on_output`` is invoked once per task with its final output, as soon
    as that output is known — the journal hook.  With an ``audit_report``
    (an :class:`~repro.core.audit.AuditReport`), a sampled subset of worker
    runs is re-executed in the parent and checked for bit-identity.
    """
    jobs = resolve_jobs(jobs, len(tasks))
    retry = retry or RetryPolicy()

    def remaining_s() -> Optional[float]:
        if deadline_monotonic is None:
            return None
        return deadline_monotonic - time.monotonic()

    if jobs <= 1 or len(tasks) <= 1:
        return _run_serial(tasks, on_output, deadline_monotonic)

    if not all(_picklable(t) for t in tasks):
        _warn(
            "profiling tasks are not picklable (closure-based program factory "
            "not in the app registry); running serially"
        )
        return _run_serial(tasks, on_output, deadline_monotonic)

    try:
        pool = ProcessPoolExecutor(max_workers=jobs)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # no fork support, no semaphores, ...
        _warn(f"could not start process pool ({exc!r}); running serially")
        return _run_serial(tasks, on_output, deadline_monotonic)

    session = _PoolSession(tasks, jobs, retry)
    session.pool = pool
    watchdog = watchdog or Watchdog()

    def finish(task: RunTask, out: RunOutput) -> None:
        session.outputs[task.index] = out
        if on_output is not None:
            on_output(task, out)

    def run_in_parent(task: RunTask, err: Optional[Exception] = None) -> None:
        if err is not None:
            _warn(
                f"run {task.index} (seed {task.seed}) failed in worker "
                f"({type(err).__name__}: {err}); retrying in parent"
            )
        finish(task, _run_task(task, keep_objects=True))

    expired = False
    try:
        session.submit_unfinished()
        for task in tasks:
            while task.index not in session.outputs:
                rem = remaining_s()
                if rem is not None and rem <= 0:
                    # deadline passed: keep what finished, reclaim the
                    # workers, and hand the partial batch back
                    expired = True
                    session.harvest_done()
                    session.shutdown(now=True)
                    session.dead = True
                    break
                if session.dead or session.breaker_open:
                    run_in_parent(task)
                    break
                fut = session.futures[task.index]
                wait_s = timeout if timeout is not None else watchdog.deadline_s()
                if rem is not None:
                    wait_s = min(wait_s, rem)
                try:
                    out = fut.result(timeout=wait_s)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except (_FutureTimeout, TimeoutError):
                    rem = remaining_s()
                    if rem is not None and rem <= 0:
                        # the wait was clamped to the deadline, not the
                        # watchdog bound: this is expiry, not a hang
                        continue
                    err = WorkerHungError(
                        f"worker exceeded its {wait_s:.1f}s deadline",
                        deadline_s=wait_s,
                    )
                    session.note_worker_failure()
                    # a hung worker cannot be cancelled: harvest what
                    # finished, reclaim the processes, finish in the parent
                    session.harvest_done()
                    session.shutdown(now=True)
                    session.dead = True
                    run_in_parent(task, err)
                except (_FutureCancelled, Exception) as exc:
                    err = WorkerCrashError(
                        f"worker failed ({type(exc).__name__}: {exc})",
                        cause=exc,
                    )
                    attempt = session.attempts[task.index]
                    session.attempts[task.index] = attempt + 1
                    if session.note_worker_failure():
                        continue  # breaker just opened; loop falls to parent
                    if isinstance(exc, (BrokenProcessPool, _FutureCancelled)):
                        # the pool died under this task (a SIGKILL-ed
                        # worker breaks every outstanding future): rebuild
                        # it a bounded number of times and resubmit all
                        # unfinished work
                        time.sleep(retry.backoff_s(attempt, task.seed))
                        if not session.rebuild_pool():
                            session.dead = True
                            run_in_parent(task, err)
                        continue
                    if session.attempts[task.index] < retry.pool_attempts:
                        time.sleep(retry.backoff_s(attempt, task.seed))
                        session.submit(task)
                        continue
                    run_in_parent(task, err)
                else:
                    session.consecutive_failures = 0
                    if not out.failed:
                        watchdog.observe(out.wall_s)
                    finish(task, out)
            if expired:
                break
    except (KeyboardInterrupt, SystemExit):
        # never swallow an interrupt — reclaim the workers and re-raise;
        # journaled records are already fsync'd, so the session is resumable
        session.shutdown(now=True)
        session.dead = True
        raise
    finally:
        if not session.dead:
            session.shutdown(now=False)
    if audit_report is not None:
        _audit_identity(tasks, session.outputs, audit_report)
    return [session.outputs[t.index] for t in tasks if t.index in session.outputs]
