"""Process-parallel execution of independent simulation runs.

Coz builds dense causal profiles by merging many short runs; each run is an
independent deterministic simulation, so the harness can fan them out over
a :class:`~concurrent.futures.ProcessPoolExecutor` without changing any
result.  Three properties make that safe:

* **seed assignment** — tasks carry the exact per-run seed the serial loop
  would have used (``base_seed + i``); workers never draw seeds themselves;
* **worker-side rebuild** — app specs hold closures that do not pickle, so
  tasks reference apps by :class:`~repro.apps.registry.AppRef` and workers
  rebuild them from :mod:`repro.apps.registry`.  Arbitrary picklable
  program factories are also accepted (the :func:`profile_program` path);
* **ordered merge** — results are reassembled in task-index order no matter
  which worker finished first, so the merged profile is bit-identical to
  the serial one.

Resilience model (typed by :mod:`repro.sim.errors`):

* **Deterministic run failures** — a run that raises
  :class:`~repro.sim.errors.SimulationError` (deadlock, injected thread
  crash, stuck lock-holder) fails identically on every retry, so it is
  *never* retried: :func:`_run_task` converts it into a
  :class:`~repro.core.profile_data.RunFailure` record carried home in the
  task's :class:`RunOutput`.  The session completes degraded instead of
  dying.
* **Environmental worker failures** — a worker that raises, dies
  (``SIGKILL`` → ``BrokenProcessPool``), or exceeds its deadline gets a
  typed :class:`~repro.sim.errors.WorkerCrashError` /
  :class:`~repro.sim.errors.WorkerHungError`.  These are retried under a
  :class:`RetryPolicy`: capped exponential backoff with seeded jitter,
  bounded in-pool attempts (a broken pool is rebuilt a bounded number of
  times), and an in-parent execution as the last resort — so the session
  completes whenever a serial session would.
* **Watchdog** — with no explicit ``timeout``, each wait is bounded by a
  deadline derived from the running median of healthy worker wall-times
  (:class:`Watchdog`), so a hung worker can never hang the session.  Hung
  futures cannot be ``cancel()``-ed and ``shutdown(wait=False)`` merely
  orphans the processes, so the first hang terminates the pool outright
  and the remaining tasks run in the parent.
* **Circuit breaker** — after ``RetryPolicy.breaker_threshold``
  *consecutive* worker failures the pool is evidently unhealthy: the
  breaker opens and every remaining task runs serially in the parent
  (one warning, not one per task).

``KeyboardInterrupt``/``SystemExit`` are never swallowed: the pool's
processes are terminated and the interrupt re-raised, and because the
session journal (:mod:`repro.harness.journal`) fsyncs every record as it
is written, a Ctrl-C'd session is immediately resumable.

Auditing: with ``coz_config.audit`` set, each task's worker attaches a
:class:`~repro.core.audit.DelayAuditor` and ships the resulting
:class:`~repro.core.audit.AuditReport` home in its wire format
(``audit_json``).  ``execute_tasks(..., audit_report=...)`` additionally
re-executes a sampled subset of worker runs in the parent and checks
bit-identity (the *parallel-serial-identity* invariant).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import random
import signal
import time
import warnings
from bisect import insort
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import CozConfig
from repro.core.profile_data import ProfileData, RunFailure
from repro.core.profiler import CausalProfiler
from repro.sim.errors import SimulationError, WorkerCrashError, WorkerHungError
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.program import Program, RunResult

#: cancelled futures raise this; BaseException on modern Pythons, so a bare
#: ``except Exception`` would miss it after a pool termination
_FutureCancelled = concurrent.futures.CancelledError

#: ``jobs`` value meaning "pick a worker count from the machine":
#: ``min(task count, os.cpu_count())``.
AUTO_JOBS = 0


class ParallelExecutionWarning(UserWarning):
    """A parallel batch degraded (fallback to serial, or a retried run)."""


def resolve_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Turn a ``jobs`` request into a concrete worker count.

    ``None`` or :data:`AUTO_JOBS` (0) means cpu-count-aware auto sizing;
    explicit values are clamped to the number of tasks.
    """
    if jobs is None or jobs == AUTO_JOBS:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return max(1, min(jobs, n_tasks))


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor retries environmental worker failures.

    Deterministic run failures (:class:`~repro.sim.errors.SimulationError`)
    are never retried — same seed, same fault — so this policy governs only
    worker crashes, pool breakage, and watchdog timeouts.
    """

    #: worker-process attempts per task before falling back to the parent
    pool_attempts: int = 2
    #: first backoff sleep; doubles per attempt up to :attr:`backoff_cap_s`
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: fraction of each backoff randomized away (seeded, deterministic)
    jitter: float = 0.5
    #: jitter stream seed
    seed: int = 0
    #: consecutive worker failures that open the circuit breaker
    breaker_threshold: int = 3
    #: times a broken pool is rebuilt before giving up on pooling
    pool_recreations: int = 1

    def backoff_s(self, attempt: int, task_seed: int) -> float:
        """Capped exponential backoff with seeded jitter for one retry."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** attempt))
        rng = random.Random(
            (self.seed << 32) ^ task_seed ^ (attempt << 8) ^ 0xBACC
        )
        return base * (1.0 - self.jitter * rng.random())


class Watchdog:
    """Per-run deadline from a running median of healthy wall-times.

    Until :attr:`min_samples` healthy runs have reported, the deadline is
    the generous absolute cap; after that it is
    ``factor * median + grace_s`` (still capped).  Only healthy worker
    runs feed the median — failed or faulted runs do not shrink it.
    """

    def __init__(
        self,
        factor: float = 8.0,
        grace_s: float = 2.0,
        min_samples: int = 3,
        max_deadline_s: float = 300.0,
    ) -> None:
        self.factor = factor
        self.grace_s = grace_s
        self.min_samples = min_samples
        self.max_deadline_s = max_deadline_s
        self._walls: List[float] = []

    def observe(self, wall_s: float) -> None:
        if wall_s > 0:
            insort(self._walls, wall_s)

    @property
    def median_s(self) -> Optional[float]:
        if not self._walls:
            return None
        n = len(self._walls)
        mid = n // 2
        if n % 2:
            return self._walls[mid]
        return (self._walls[mid - 1] + self._walls[mid]) / 2.0

    def deadline_s(self) -> float:
        return self.deadline_for(1)

    def deadline_for(self, n_runs: int) -> float:
        """Deadline for a wait covering ``n_runs`` batched runs."""
        if len(self._walls) < self.min_samples:
            return self.max_deadline_s
        bound = self.factor * self.median_s * max(1, n_runs) + self.grace_s
        return min(self.max_deadline_s, bound)


@dataclass
class RunTask:
    """One simulation run: what to build, how to seed it, what to measure.

    Exactly one of ``app_ref`` / ``program_factory`` should be set.  With
    ``coz_config`` set the run happens under a :class:`CausalProfiler`
    seeded ``replace(coz_config, seed=seed)`` — the serial loop's exact
    recipe; with ``coz_config=None`` it is a plain (unprofiled) run, as
    used by the comparison and overhead harnesses.  ``faults`` carries the
    session's :class:`~repro.sim.faults.FaultPlan` into the run (sim-level
    faults) and the worker (kill/hang faults).
    """

    index: int
    seed: int
    coz_config: Optional[CozConfig] = None
    #: picklable registry reference (:class:`repro.apps.registry.AppRef`)
    app_ref: Optional[object] = None
    #: direct factory; must be picklable to cross process boundaries
    program_factory: Optional[Callable[[int], Program]] = None
    progress_points: Tuple = ()
    latency_specs: Tuple = ()
    #: fault-injection plan for this run (``None`` = no injection)
    faults: Optional[FaultPlan] = None
    #: checkpoint fast-forward (repro.harness.checkpoint): resume this run
    #: from a stored snapshot when one exists, record one when it doesn't
    checkpoint: bool = False
    #: canonical run fingerprint the checkpoint store is keyed by
    checkpoint_key: Optional[str] = None
    #: shared on-disk checkpoint cache (workers read and populate it)
    checkpoint_dir: Optional[str] = None
    #: prefix snapshot shipped from the parent's store, so fan-out cost
    #: does not scale with warmup length (workers skip the store lookup)
    snapshot: Optional[object] = field(default=None, repr=False)


@dataclass
class RunOutput:
    """Result of one task: a run summary plus (for profiled runs) the
    profiler's data in the :meth:`ProfileData.to_json` wire format.

    A task that failed deterministically carries a ``failure`` record
    (:meth:`RunFailure.to_dict` wire form) instead of run data.
    """

    index: int
    seed: int
    run: Dict[str, Any] = field(default_factory=dict)
    data_json: Optional[str] = None
    #: binary columnar profile wire (:mod:`repro.core.binwire`) — what pool
    #: workers ship since the JSON wire became the debug/journal view; at
    #: most one of ``data_json`` / ``data_bin`` is set
    data_bin: Optional[bytes] = field(default=None, repr=False)
    #: per-run invariant audit (wire format), when the config asked for one
    audit_json: Optional[str] = None
    #: RunFailure wire dict when the run produced no data
    failure: Optional[Dict[str, Any]] = None
    #: worker-measured execution seconds (feeds the watchdog median);
    #: wall-clock, so excluded from equality
    wall_s: float = field(default=0.0, compare=False)
    #: in-process executions keep the live objects to skip re-parsing
    _data: Optional[ProfileData] = field(default=None, repr=False, compare=False)
    _run_result: Optional[RunResult] = field(default=None, repr=False, compare=False)
    _audit: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def run_failure(self) -> Optional[RunFailure]:
        if self.failure is None:
            return None
        return RunFailure.from_dict(self.failure)

    def profile_data(self) -> Optional[ProfileData]:
        if self._data is not None:
            return self._data
        if self.data_bin is not None:
            return ProfileData.from_bytes(self.data_bin)
        if self.data_json is None:
            return None
        return ProfileData.from_json(self.data_json)

    def run_result(self) -> Optional[RunResult]:
        if self._run_result is not None:
            return self._run_result
        if self.failed:
            return None
        return RunResult(engine=None, **self.run)

    def audit_report(self):
        """The run's :class:`~repro.core.audit.AuditReport`, if audited."""
        if self._audit is not None:
            return self._audit
        if self.audit_json is None:
            return None
        from repro.core.audit import AuditReport

        return AuditReport.from_json(self.audit_json)


def _summarize(result: RunResult) -> Dict[str, Any]:
    """The picklable subset of a RunResult (everything but the engine)."""
    return {
        "runtime_ns": result.runtime_ns,
        "cpu_ns": result.cpu_ns,
        "profiler_cpu_ns": result.profiler_cpu_ns,
        "delay_ns": result.delay_ns,
        "progress_counts": dict(result.progress_counts),
        "thread_count": result.thread_count,
        "sample_count": result.sample_count,
        "events_processed": result.events_processed,
    }


def _resolve_factory(task: RunTask):
    """(factory, progress_points, latency_specs) for a task, rebuilding
    registry-referenced apps by name.

    Registry rebuilds go through the process-global spec memo
    (:func:`repro.apps.registry.cached_build`): a warm pool worker builds
    each app of a session once, not once per task.
    """
    if task.app_ref is not None:
        from repro.apps.registry import cached_build

        spec = cached_build(task.app_ref)
        return spec.build, tuple(spec.progress_points), tuple(spec.latency_specs)
    if task.program_factory is None:
        raise ValueError("RunTask needs an app_ref or a program_factory")
    return task.program_factory, task.progress_points, task.latency_specs


def _checkpoint_store(task: RunTask):
    """The task's checkpoint store, or ``None`` when it cannot help.

    Workers without a shared cache directory skip the store entirely: their
    in-memory cache dies with the process, so recording there is pure
    overhead (a shipped ``task.snapshot`` still resumes them warm).
    Store instances are process-cached per (fingerprint, directory) so the
    manifest validation (makedirs + lock + read) happens once per session,
    not once per task.
    """
    if not task.checkpoint or task.checkpoint_key is None:
        return None
    in_worker = multiprocessing.parent_process() is not None
    if in_worker and task.checkpoint_dir is None:
        return None
    from repro.harness.checkpoint import CheckpointStore

    return CheckpointStore.shared(task.checkpoint_key, directory=task.checkpoint_dir)


def _run_task(task: RunTask, keep_objects: bool = False) -> RunOutput:
    """Execute one run; mirrors the serial loop body exactly.

    Deterministic simulation failures (deadlock, injected crash, stuck
    lock-holder) become a failure-record output — they would fail
    identically on any retry, so the run is marked lost and the session
    carries on degraded.  Checkpointed tasks go through
    :func:`repro.harness.checkpoint.execute_run`, which resumes from the
    deepest stored snapshot when one exists and records fresh checkpoints
    when it doesn't — bit-identical either way, including reproducing a
    deterministic failure from a snapshot taken before the fault fired.
    """
    factory, points, latency = _resolve_factory(task)

    def build():
        profiler = None
        if task.coz_config is not None:
            cfg = replace(task.coz_config, seed=task.seed)
            profiler = CausalProfiler(cfg, points, latency)
        program = factory(task.seed)
        run_config = None
        if task.faults is not None and task.faults.any_sim_faults:
            run_config = replace(program.config, faults=task.faults)
        return program, profiler, run_config

    try:
        if task.checkpoint and task.coz_config is not None:
            from repro.harness.checkpoint import execute_run, resolve_shipped

            store = _checkpoint_store(task)
            result, profiler = execute_run(
                build,
                task.seed,
                snapshot=resolve_shipped(task.snapshot, store),
                store=store,
            )
        else:
            program, profiler, run_config = build()
            result = program.run(hook=profiler, config=run_config)
    except SimulationError as exc:
        failure = RunFailure.from_error(task.index, task.seed, exc)
        return RunOutput(index=task.index, seed=task.seed, failure=failure.to_dict())
    out = RunOutput(index=task.index, seed=task.seed, run=_summarize(result))
    if keep_objects:
        out._run_result = result
        if profiler is not None:
            out._data = profiler.data
            out._audit = profiler.auditor.report() if profiler.auditor else None
    elif profiler is not None:
        out.data_bin = profiler.data.to_bytes()
        if profiler.auditor is not None:
            out.audit_json = profiler.auditor.report().to_json()
    return out


def _enact_worker_faults(task: RunTask, attempt: int) -> None:
    """Make the *worker process* fail, when the plan says so.

    Fires only inside pool workers (never in the parent) and only on a
    task's first attempt — the attempt number is folded into the fault
    RNG — so the executor's recovery paths are exercised and the retry
    then succeeds.
    """
    plan = task.faults
    if plan is None or not (plan.worker_kill or plan.worker_hang):
        return
    if multiprocessing.parent_process() is None:
        return
    inj = FaultInjector(plan, task.seed, attempt=attempt)
    if inj.worker_kill:
        os.kill(os.getpid(), signal.SIGKILL)
    elif inj.worker_hang:
        time.sleep(plan.worker_hang_s)


def _run_task_in_worker(task: RunTask, attempt: int = 0) -> RunOutput:
    """Worker entry point: wire-format output plus measured wall time."""
    _enact_worker_faults(task, attempt)
    start = time.perf_counter()
    out = _run_task(task, keep_objects=False)
    out.wall_s = time.perf_counter() - start
    return out


def _run_batch_in_worker(
    tasks: List[RunTask],
    attempts: List[int],
    deadline_monotonic: Optional[float] = None,
) -> List[RunOutput]:
    """Worker entry point for one :class:`RunBatch`: outputs in task order.

    Worker faults are enacted per member task — a kill mid-batch loses the
    whole batch's future and the parent's split-on-retry isolates the
    poisoned run.  With a session deadline the worker stops *between* runs
    once it passes and returns the completed prefix (monotonic clocks are
    system-wide on the supported platforms; a skewed clock merely shifts
    work back to the parent's deadline handling).
    """
    outs: List[RunOutput] = []
    for task, attempt in zip(tasks, attempts):
        if (
            deadline_monotonic is not None
            and outs
            and time.monotonic() >= deadline_monotonic
        ):
            break
        outs.append(_run_task_in_worker(task, attempt))
    return outs


def _run_serial(
    tasks: List[RunTask],
    on_output: Optional[Callable[[RunTask, RunOutput], None]] = None,
    deadline_monotonic: Optional[float] = None,
) -> List[RunOutput]:
    outputs = []
    for t in tasks:
        if deadline_monotonic is not None and time.monotonic() >= deadline_monotonic:
            break  # deadline passed: return what completed
        out = _run_task(t, keep_objects=True)
        if on_output is not None:
            on_output(t, out)
        outputs.append(out)
    return outputs


def _warn(message: str) -> None:
    warnings.warn(message, ParallelExecutionWarning, stacklevel=3)


#: cached picklability verdicts, keyed by task *shape* — the fields whose
#: types decide picklability (the app reference / factory), not per-run
#: payloads.  Bounded; cleared wholesale at the cap.
_PROBE_CACHE: Dict[Any, bool] = {}
_PROBE_CACHE_CAP = 128


def clear_probe_cache() -> None:
    """Forget cached picklability verdicts (tests)."""
    _PROBE_CACHE.clear()


def _probe_shape(task: RunTask) -> Any:
    """Hashable shape key for the probe cache, or ``None`` if unkeyable."""
    try:
        key = (task.app_ref, task.program_factory)
        hash(key)
        return key
    except TypeError:
        return None


def _picklable(task: RunTask) -> bool:
    """One cheap probe per task *shape*, not one ``pickle.dumps`` per task.

    Historically every task — snapshot payload included — was pickled once
    here and a second time at submission, doubling the serialization bill
    of a warm session.  Picklability is a property of the task's shape
    (which factory/app reference it carries), so the verdict is cached per
    shape and the probe itself drops the snapshot: shipped snapshots are
    wrapped in always-picklable byte/ref containers by the submit path.
    """
    shape = _probe_shape(task)
    if shape is not None and shape in _PROBE_CACHE:
        return _PROBE_CACHE[shape]
    try:
        pickle.dumps(replace(task, snapshot=None))
        verdict = True
    except (pickle.PicklingError, AttributeError, TypeError):
        verdict = False
    if shape is not None:
        if len(_PROBE_CACHE) >= _PROBE_CACHE_CAP:
            _PROBE_CACHE.clear()
        _PROBE_CACHE[shape] = verdict
    return verdict


#: auto batch sizing: a worker should see a handful of batches (so the
#: watchdog's median and straggler rebalancing still work), capped so one
#: lost batch never costs too much recomputation
_BATCH_OVERSUBSCRIBE = 4
_MAX_BATCH = 16


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


def auto_batch_size(n_tasks: int, jobs: int) -> int:
    """Runs per IPC task when the caller didn't pin ``batch_runs``.

    Aims for :data:`_BATCH_OVERSUBSCRIBE` batches per worker so finishing
    order can still rebalance stragglers.  When the machine cannot actually
    run ``jobs`` workers concurrently (fewer usable cores than workers),
    finer slicing buys no load balance — only IPC — so batches grow to
    ``ceil(n/jobs)`` instead.
    """
    if n_tasks <= 1 or jobs <= 1:
        return 1
    if jobs > _effective_cores():
        per = -(-n_tasks // jobs)
    else:
        per = n_tasks // (jobs * _BATCH_OVERSUBSCRIBE)
    return max(1, min(_MAX_BATCH, per))


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung workers included.

    ``Future.cancel()`` is a no-op once a task is running and
    ``shutdown(wait=False)`` merely abandons the worker processes, which
    keep grinding (and keep queued tasks starved) until they finish on
    their own.  The only way to reclaim a hung worker is to terminate its
    process.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=1.0)


def _audit_identity(tasks, outputs, audit_report) -> None:
    """Parallel-serial-identity: re-run a sampled subset in the parent.

    Re-executes the first and last profiled task in-process and compares
    both the run summary and the profile bit-for-bit against what the
    worker shipped home.  Appends the result to ``audit_report``.
    """
    from repro.core.audit import InvariantCheck

    by_index = {t.index: t for t in tasks}
    sample = [tasks[0].index, tasks[-1].index] if len(tasks) > 1 else [tasks[0].index]
    checked = 0
    failures = 0
    detail = ""
    for idx in dict.fromkeys(sample):
        out = outputs.get(idx)
        if out is None:
            continue
        redo = _run_task(by_index[idx], keep_objects=True)
        checked += 1
        same = (
            redo.run == out.run
            and redo.failure == out.failure
            and redo.profile_data() == out.profile_data()
        )
        if not same:
            failures += 1
            if not detail:
                detail = (
                    f"run {idx} (seed {out.seed}) differs between the worker "
                    f"and an in-parent re-execution"
                )
    audit_report.add(InvariantCheck(
        name="parallel-serial-identity",
        passed=failures == 0,
        checked=checked,
        failures=failures,
        detail=detail,
    ))


@dataclass
class RunBatch:
    """A contiguous slice of a session's tasks shipped as one IPC unit.

    The pool's unit of dispatch and retry: one future per batch.  On a
    worker failure a multi-run batch is split chunk-token style — halved
    and resubmitted — so one poisoned run cannot keep sinking its
    siblings; singletons fall back to the per-task retry ladder.
    """

    bid: int
    tasks: List[RunTask]


class _PoolSession:
    """Mutable state of one parallel session: pool, batches, retry ledger."""

    def __init__(
        self,
        tasks: List[RunTask],
        jobs: int,
        retry: RetryPolicy,
        batch_size: int = 1,
        deadline_monotonic: Optional[float] = None,
    ) -> None:
        self.tasks = tasks
        self.jobs = jobs
        self.retry = retry
        self.deadline_monotonic = deadline_monotonic
        self.pool: Optional[ProcessPoolExecutor] = None
        #: one future per live batch, keyed by batch id
        self.futures: Dict[int, concurrent.futures.Future] = {}
        self.attempts: Dict[int, int] = {t.index: 0 for t in tasks}
        self.outputs: Dict[int, RunOutput] = {}
        self.consecutive_failures = 0
        self.recreations = 0
        #: pool unusable (terminated after a hang, or unrecoverably broken)
        self.dead = False
        #: breaker open: run everything remaining in the parent
        self.breaker_open = False
        self._next_bid = 0
        self.batches: Dict[int, RunBatch] = {}
        self._task_batch: Dict[int, int] = {}
        for i in range(0, len(tasks), max(1, batch_size)):
            self._new_batch(tasks[i:i + batch_size])
        #: submit-side task forms: snapshots swapped for refs/byte wrappers
        self._wired: Dict[int, RunTask] = {}
        try:
            self._fork_workers = multiprocessing.get_start_method() == "fork"
        except Exception:  # pragma: no cover - exotic platforms
            self._fork_workers = False

    def _new_batch(self, tasks: List[RunTask]) -> RunBatch:
        batch = RunBatch(bid=self._next_bid, tasks=tasks)
        self._next_bid += 1
        self.batches[batch.bid] = batch
        for t in tasks:
            self._task_batch[t.index] = batch.bid
        return batch

    def batch_of(self, index: int) -> RunBatch:
        return self.batches[self._task_batch[index]]

    def replace_batch(
        self, batch: RunBatch, groups: List[List[RunTask]]
    ) -> List[RunBatch]:
        """Retire ``batch`` and re-cover its unfinished tasks with ``groups``."""
        self.batches.pop(batch.bid, None)
        self.futures.pop(batch.bid, None)
        return [self._new_batch(g) for g in groups if g]

    def _wire_task(self, task: RunTask) -> RunTask:
        """The submit-side form of a task: never ships a live snapshot.

        Fork-started workers inherit the parent's in-memory checkpoint
        cache, so a snapshot that is in it travels as a zero-payload
        :class:`~repro.harness.checkpoint.SnapshotRef`; otherwise it is
        pre-encoded once into a byte wrapper that every resubmission
        reuses.  Cached per task for the session's lifetime.
        """
        wired = self._wired.get(task.index)
        if wired is not None:
            return wired
        snap = task.snapshot
        from repro.harness.checkpoint import (
            SnapshotRef,
            SnapshotWire,
            snapshot_in_memory,
        )
        from repro.sim.snapshot import EngineSnapshot

        if snap is None or not isinstance(snap, EngineSnapshot):
            wired = task
        elif (
            self._fork_workers
            and task.checkpoint_key is not None
            and snapshot_in_memory(task.checkpoint_key, task.seed)
        ):
            wired = replace(
                task, snapshot=SnapshotRef(task.checkpoint_key, task.seed)
            )
        else:
            wired = replace(
                task,
                snapshot=SnapshotWire.from_snapshot(
                    snap, key=task.checkpoint_key, seed=task.seed
                ),
            )
        self._wired[task.index] = wired
        return wired

    def submit(self, batch: RunBatch) -> None:
        self.futures[batch.bid] = self.pool.submit(
            _run_batch_in_worker,
            [self._wire_task(t) for t in batch.tasks],
            [self.attempts[t.index] for t in batch.tasks],
            self.deadline_monotonic,
        )

    def submit_unfinished(self) -> None:
        for bid in sorted(self.batches):
            batch = self.batches[bid]
            if bid in self.futures:
                continue
            if any(t.index not in self.outputs for t in batch.tasks):
                self.submit(batch)

    def harvest_done(self) -> None:
        """Collect every already-finished future (before a pool teardown)."""
        for fut in list(self.futures.values()):
            if not fut.done():
                continue
            try:
                outs = fut.result(timeout=0)
            except (KeyboardInterrupt, SystemExit):
                raise
            except (_FutureCancelled, Exception):
                continue  # it failed; the main loop will handle its tasks
            for out in outs:
                if out.index not in self.outputs:
                    self.outputs[out.index] = out

    def shutdown(self, now: bool = False) -> None:
        if self.pool is None:
            return
        if now:
            _terminate_pool(self.pool)
        else:
            self.pool.shutdown(wait=True, cancel_futures=True)
        self.pool = None

    def note_worker_failure(self) -> bool:
        """Count a worker failure; returns True when the breaker opens."""
        self.consecutive_failures += 1
        if (
            not self.breaker_open
            and self.consecutive_failures >= self.retry.breaker_threshold
        ):
            self.breaker_open = True
            _warn(
                f"{self.consecutive_failures} consecutive worker failures: "
                f"circuit breaker open, running remaining runs serially in "
                f"the parent"
            )
        return self.breaker_open

    def rebuild_pool(self) -> bool:
        """Replace a broken pool, bounded by the retry policy."""
        if self.recreations >= self.retry.pool_recreations:
            return False
        self.recreations += 1
        try:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = ProcessPoolExecutor(max_workers=self.jobs)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            _warn(f"could not rebuild process pool ({exc!r})")
            self.pool = None
            return False
        self.futures.clear()
        self.submit_unfinished()
        return True


def execute_tasks(
    tasks: List[RunTask],
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit_report=None,
    retry: Optional[RetryPolicy] = None,
    watchdog: Optional[Watchdog] = None,
    on_output: Optional[Callable[[RunTask, RunOutput], None]] = None,
    deadline_monotonic: Optional[float] = None,
    batch_runs: Optional[int] = None,
) -> List[RunOutput]:
    """Run every task, parallel when asked and possible, serial otherwise.

    Outputs come back in task order regardless of completion order.
    Tasks ship to the pool in :class:`RunBatch` groups of ``batch_runs``
    (auto-sized from the run count and ``jobs`` when ``None``) so one IPC
    round trip amortizes over several runs; a failed multi-run batch is
    split in half and resubmitted, so a single poisoned run degrades to a
    singleton instead of sinking its batch-mates.
    Worker failures retry per ``retry`` (default :class:`RetryPolicy`):
    in-pool with capped exponential backoff first, in the parent last, with
    a circuit breaker that degrades the whole batch to in-parent serial
    execution after repeated consecutive failures.  Waits are bounded by
    ``timeout`` when given (scaled by the number of runs still pending in
    the awaited batch), else by the ``watchdog`` deadline (running
    median of healthy wall-times); the first hang terminates the pool's
    processes (hung workers cannot be cancelled) and the remaining tasks
    run in the parent.  A pool that cannot start degrades the whole batch
    to serial with a warning.

    ``deadline_monotonic`` (a ``time.monotonic()`` timestamp) bounds the
    whole batch: once it passes, no further task starts, in-flight waits
    are clamped to the remaining time, the pool is torn down, and the
    completed prefix is returned — so the returned list may be *shorter*
    than ``tasks``.  The profiling service uses this to propagate a job's
    deadline into the executor's watchdog.  Without a deadline every task
    produces an output, exactly as before.

    ``on_output`` is invoked once per task with its final output, as soon
    as that output is known — the journal hook.  With an ``audit_report``
    (an :class:`~repro.core.audit.AuditReport`), a sampled subset of worker
    runs is re-executed in the parent and checked for bit-identity.
    """
    jobs = resolve_jobs(jobs, len(tasks))
    retry = retry or RetryPolicy()

    def remaining_s() -> Optional[float]:
        if deadline_monotonic is None:
            return None
        return deadline_monotonic - time.monotonic()

    if jobs <= 1 or len(tasks) <= 1:
        return _run_serial(tasks, on_output, deadline_monotonic)

    if not all(_picklable(t) for t in tasks):
        _warn(
            "profiling tasks are not picklable (closure-based program factory "
            "not in the app registry); running serially"
        )
        return _run_serial(tasks, on_output, deadline_monotonic)

    try:
        pool = ProcessPoolExecutor(max_workers=jobs)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # no fork support, no semaphores, ...
        _warn(f"could not start process pool ({exc!r}); running serially")
        return _run_serial(tasks, on_output, deadline_monotonic)

    if batch_runs is not None and batch_runs >= 1:
        batch_size = batch_runs
    else:
        batch_size = auto_batch_size(len(tasks), jobs)
    session = _PoolSession(
        tasks, jobs, retry,
        batch_size=batch_size,
        deadline_monotonic=deadline_monotonic,
    )
    session.pool = pool
    watchdog = watchdog or Watchdog()

    def finish(task: RunTask, out: RunOutput) -> None:
        session.outputs[task.index] = out
        if on_output is not None:
            on_output(task, out)

    def run_in_parent(task: RunTask, err: Optional[Exception] = None) -> None:
        if err is not None:
            _warn(
                f"run {task.index} (seed {task.seed}) failed in worker "
                f"({type(err).__name__}: {err}); retrying in parent"
            )
        finish(task, _run_task(task, keep_objects=True))

    def fail_batch(
        batch: RunBatch,
        pending: List[RunTask],
        exc: BaseException,
        err: Exception,
        current: RunTask,
    ) -> None:
        """React to a worker failure that took down a whole batch future.

        Multi-run batches are halved and resubmitted (chunk-token style) so
        a single poisoned run converges to a singleton; singletons follow
        the classic per-task ladder: in-pool retries, then the parent.
        """
        if len(pending) < len(batch.tasks):
            batch = session.replace_batch(batch, [pending])[0]
        for t in pending:
            session.attempts[t.index] += 1
        if session.note_worker_failure():
            return  # breaker just opened; the loop falls to the parent
        attempt = session.attempts[current.index] - 1
        broken = isinstance(exc, (BrokenProcessPool, _FutureCancelled))
        if len(pending) > 1:
            _warn(
                f"a batch of {len(pending)} runs failed in a worker "
                f"({type(exc).__name__}: {exc}); splitting it and retrying"
            )
            mid = (len(pending) + 1) // 2
            halves = session.replace_batch(
                batch, [pending[:mid], pending[mid:]]
            )
            time.sleep(retry.backoff_s(attempt, current.seed))
            if broken:
                # a SIGKILL-ed worker breaks every outstanding future:
                # rebuild the pool (bounded) and resubmit all unfinished
                # work, halves included
                if not session.rebuild_pool():
                    session.dead = True
                    run_in_parent(current, err)
            else:
                for half in halves:
                    session.submit(half)
            return
        if broken:
            time.sleep(retry.backoff_s(attempt, current.seed))
            if not session.rebuild_pool():
                session.dead = True
                run_in_parent(current, err)
            return
        if session.attempts[current.index] < retry.pool_attempts:
            time.sleep(retry.backoff_s(attempt, current.seed))
            session.submit(batch)
            return
        run_in_parent(current, err)

    expired = False
    try:
        session.submit_unfinished()
        for task in tasks:
            while task.index not in session.outputs:
                rem = remaining_s()
                if rem is not None and rem <= 0:
                    # deadline passed: keep what finished, reclaim the
                    # workers, and hand the partial batch back
                    expired = True
                    session.harvest_done()
                    session.shutdown(now=True)
                    session.dead = True
                    break
                if session.dead or session.breaker_open:
                    run_in_parent(task)
                    break
                batch = session.batch_of(task.index)
                if batch.bid not in session.futures:
                    session.submit(batch)
                fut = session.futures[batch.bid]
                pending = [
                    t for t in batch.tasks if t.index not in session.outputs
                ]
                if timeout is not None:
                    wait_s = timeout * len(pending)
                else:
                    wait_s = watchdog.deadline_for(len(pending))
                if rem is not None:
                    wait_s = min(wait_s, rem)
                try:
                    outs = fut.result(timeout=wait_s)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except (_FutureTimeout, TimeoutError):
                    rem = remaining_s()
                    if rem is not None and rem <= 0:
                        # the wait was clamped to the deadline, not the
                        # watchdog bound: this is expiry, not a hang
                        continue
                    err = WorkerHungError(
                        f"worker exceeded its {wait_s:.1f}s deadline",
                        deadline_s=wait_s,
                    )
                    session.note_worker_failure()
                    # a hung worker cannot be cancelled: harvest what
                    # finished, reclaim the processes, finish in the parent
                    session.harvest_done()
                    session.shutdown(now=True)
                    session.dead = True
                    run_in_parent(task, err)
                except (_FutureCancelled, Exception) as exc:
                    err = WorkerCrashError(
                        f"worker failed ({type(exc).__name__}: {exc})",
                        cause=exc,
                    )
                    fail_batch(batch, pending, exc, err, task)
                else:
                    session.futures.pop(batch.bid, None)
                    got = {o.index: o for o in outs}
                    delivered = [t for t in pending if t.index in got]
                    if delivered:
                        session.consecutive_failures = 0
                    for done_task in delivered:
                        out = got[done_task.index]
                        if not out.failed:
                            watchdog.observe(out.wall_s)
                        finish(done_task, out)
                    missing = [t for t in pending if t.index not in got]
                    if missing:
                        rem = remaining_s()
                        if rem is not None and rem <= 0:
                            continue  # deadline truncation; loop top expires
                        # the worker returned early with time still on the
                        # clock: treat the undelivered tail as a crash so
                        # it retries instead of resubmitting forever
                        exc = RuntimeError(
                            f"worker returned {len(got)}/{len(pending)} "
                            f"batch runs before the session deadline"
                        )
                        err = WorkerCrashError(str(exc), cause=exc)
                        fail_batch(batch, missing, exc, err, task)
            if expired:
                break
    except (KeyboardInterrupt, SystemExit):
        # never swallow an interrupt — reclaim the workers and re-raise;
        # journaled records are already fsync'd, so the session is resumable
        session.shutdown(now=True)
        session.dead = True
        raise
    finally:
        if not session.dead:
            session.shutdown(now=False)
    if audit_report is not None:
        _audit_identity(tasks, session.outputs, audit_report)
    return [session.outputs[t.index] for t in tasks if t.index in session.outputs]
