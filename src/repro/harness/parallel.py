"""Process-parallel execution of independent simulation runs.

Coz builds dense causal profiles by merging many short runs; each run is an
independent deterministic simulation, so the harness can fan them out over
a :class:`~concurrent.futures.ProcessPoolExecutor` without changing any
result.  Three properties make that safe:

* **seed assignment** — tasks carry the exact per-run seed the serial loop
  would have used (``base_seed + i``); workers never draw seeds themselves;
* **worker-side rebuild** — app specs hold closures that do not pickle, so
  tasks reference apps by :class:`~repro.apps.registry.AppRef` and workers
  rebuild them from :mod:`repro.apps.registry`.  Arbitrary picklable
  program factories are also accepted (the :func:`profile_program` path);
* **ordered merge** — results are reassembled in task-index order no matter
  which worker finished first, so the merged profile is bit-identical to
  the serial one.

Robustness: a run that fails in a worker (raise, pool breakage after a
``SIGKILL``, per-run timeout) is retried **once, in the parent process**,
which both bounds retries and guarantees the session completes whenever a
serial session would.  On the first timeout the pool's worker processes
are terminated outright: a future stuck on a hung run cannot be
``cancel()``-ed, and a ``shutdown(wait=False)`` would orphan the workers
(and starve queued tasks into spurious timeouts of their own) — so the
remaining tasks are harvested where already done and re-run in the
parent otherwise.  If the pool itself cannot start (restricted
environments without ``fork``/semaphores) or tasks cannot be pickled, the
whole batch degrades to serial execution with a
:class:`ParallelExecutionWarning` instead of crashing.

Auditing: with ``coz_config.audit`` set, each task's worker attaches a
:class:`~repro.core.audit.DelayAuditor` and ships the resulting
:class:`~repro.core.audit.AuditReport` home in its wire format
(``audit_json``).  ``execute_tasks(..., audit_report=...)`` additionally
re-executes a sampled subset of worker runs in the parent and checks
bit-identity (the *parallel-serial-identity* invariant).
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import CozConfig
from repro.core.profile_data import ProfileData
from repro.core.profiler import CausalProfiler
from repro.sim.program import Program, RunResult

#: cancelled futures raise this; BaseException on modern Pythons, so a bare
#: ``except Exception`` would miss it after a pool termination
_FutureCancelled = concurrent.futures.CancelledError

#: ``jobs`` value meaning "pick a worker count from the machine":
#: ``min(task count, os.cpu_count())``.
AUTO_JOBS = 0


class ParallelExecutionWarning(UserWarning):
    """A parallel batch degraded (fallback to serial, or a retried run)."""


def resolve_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Turn a ``jobs`` request into a concrete worker count.

    ``None`` or :data:`AUTO_JOBS` (0) means cpu-count-aware auto sizing;
    explicit values are clamped to the number of tasks.
    """
    if jobs is None or jobs == AUTO_JOBS:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return max(1, min(jobs, n_tasks))


@dataclass
class RunTask:
    """One simulation run: what to build, how to seed it, what to measure.

    Exactly one of ``app_ref`` / ``program_factory`` should be set.  With
    ``coz_config`` set the run happens under a :class:`CausalProfiler`
    seeded ``replace(coz_config, seed=seed)`` — the serial loop's exact
    recipe; with ``coz_config=None`` it is a plain (unprofiled) run, as
    used by the comparison and overhead harnesses.
    """

    index: int
    seed: int
    coz_config: Optional[CozConfig] = None
    #: picklable registry reference (:class:`repro.apps.registry.AppRef`)
    app_ref: Optional[object] = None
    #: direct factory; must be picklable to cross process boundaries
    program_factory: Optional[Callable[[int], Program]] = None
    progress_points: Tuple = ()
    latency_specs: Tuple = ()


@dataclass
class RunOutput:
    """Result of one task: a run summary plus (for profiled runs) the
    profiler's data in the :meth:`ProfileData.to_json` wire format."""

    index: int
    seed: int
    run: Dict[str, Any] = field(default_factory=dict)
    data_json: Optional[str] = None
    #: per-run invariant audit (wire format), when the config asked for one
    audit_json: Optional[str] = None
    #: in-process executions keep the live objects to skip re-parsing
    _data: Optional[ProfileData] = field(default=None, repr=False, compare=False)
    _run_result: Optional[RunResult] = field(default=None, repr=False, compare=False)
    _audit: Optional[object] = field(default=None, repr=False, compare=False)

    def profile_data(self) -> Optional[ProfileData]:
        if self._data is not None:
            return self._data
        if self.data_json is None:
            return None
        return ProfileData.from_json(self.data_json)

    def run_result(self) -> RunResult:
        if self._run_result is not None:
            return self._run_result
        return RunResult(engine=None, **self.run)

    def audit_report(self):
        """The run's :class:`~repro.core.audit.AuditReport`, if audited."""
        if self._audit is not None:
            return self._audit
        if self.audit_json is None:
            return None
        from repro.core.audit import AuditReport

        return AuditReport.from_json(self.audit_json)


def _summarize(result: RunResult) -> Dict[str, Any]:
    """The picklable subset of a RunResult (everything but the engine)."""
    return {
        "runtime_ns": result.runtime_ns,
        "cpu_ns": result.cpu_ns,
        "profiler_cpu_ns": result.profiler_cpu_ns,
        "delay_ns": result.delay_ns,
        "progress_counts": dict(result.progress_counts),
        "thread_count": result.thread_count,
        "sample_count": result.sample_count,
        "events_processed": result.events_processed,
    }


def _resolve_factory(task: RunTask):
    """(factory, progress_points, latency_specs) for a task, rebuilding
    registry-referenced apps by name."""
    if task.app_ref is not None:
        spec = task.app_ref.build()
        return spec.build, tuple(spec.progress_points), tuple(spec.latency_specs)
    if task.program_factory is None:
        raise ValueError("RunTask needs an app_ref or a program_factory")
    return task.program_factory, task.progress_points, task.latency_specs


def _run_task(task: RunTask, keep_objects: bool = False) -> RunOutput:
    """Execute one run; mirrors the serial loop body exactly."""
    factory, points, latency = _resolve_factory(task)
    profiler = None
    if task.coz_config is not None:
        cfg = replace(task.coz_config, seed=task.seed)
        profiler = CausalProfiler(cfg, points, latency)
    result = factory(task.seed).run(hook=profiler)
    out = RunOutput(index=task.index, seed=task.seed, run=_summarize(result))
    if keep_objects:
        out._run_result = result
        if profiler is not None:
            out._data = profiler.data
            out._audit = profiler.auditor.report() if profiler.auditor else None
    elif profiler is not None:
        out.data_json = profiler.data.to_json()
        if profiler.auditor is not None:
            out.audit_json = profiler.auditor.report().to_json()
    return out


def _run_task_in_worker(task: RunTask) -> RunOutput:
    """Worker entry point: always returns the wire-format output."""
    return _run_task(task, keep_objects=False)


def _run_serial(tasks: List[RunTask]) -> List[RunOutput]:
    return [_run_task(t, keep_objects=True) for t in tasks]


def _warn(message: str) -> None:
    warnings.warn(message, ParallelExecutionWarning, stacklevel=3)


def _picklable(task: RunTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except Exception:
        return False


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung workers included.

    ``Future.cancel()`` is a no-op once a task is running and
    ``shutdown(wait=False)`` merely abandons the worker processes, which
    keep grinding (and keep queued tasks starved) until they finish on
    their own.  The only way to reclaim a hung worker is to terminate its
    process.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=1.0)


def _audit_identity(tasks, outputs, audit_report) -> None:
    """Parallel-serial-identity: re-run a sampled subset in the parent.

    Re-executes the first and last profiled task in-process and compares
    both the run summary and the profile bit-for-bit against what the
    worker shipped home.  Appends the result to ``audit_report``.
    """
    from repro.core.audit import InvariantCheck

    by_index = {t.index: t for t in tasks}
    sample = [tasks[0].index, tasks[-1].index] if len(tasks) > 1 else [tasks[0].index]
    checked = 0
    failures = 0
    detail = ""
    for idx in dict.fromkeys(sample):
        out = outputs.get(idx)
        if out is None:
            continue
        redo = _run_task(by_index[idx], keep_objects=True)
        checked += 1
        same = redo.run == out.run and redo.profile_data() == out.profile_data()
        if not same:
            failures += 1
            if not detail:
                detail = (
                    f"run {idx} (seed {out.seed}) differs between the worker "
                    f"and an in-parent re-execution"
                )
    audit_report.add(InvariantCheck(
        name="parallel-serial-identity",
        passed=failures == 0,
        checked=checked,
        failures=failures,
        detail=detail,
    ))


def execute_tasks(
    tasks: List[RunTask],
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit_report=None,
) -> List[RunOutput]:
    """Run every task, parallel when asked and possible, serial otherwise.

    Outputs come back in task order regardless of completion order.  Each
    failed or timed-out worker run is retried once in the parent; the first
    timeout terminates the pool's processes (hung workers cannot be
    cancelled) and the remaining unfinished tasks also run in the parent.
    A pool that cannot start degrades the whole batch to serial with a
    warning.  With an ``audit_report`` (an
    :class:`~repro.core.audit.AuditReport`), a sampled subset of worker
    runs is re-executed in the parent and checked for bit-identity.
    """
    jobs = resolve_jobs(jobs, len(tasks))
    if jobs <= 1 or len(tasks) <= 1:
        return _run_serial(tasks)

    if not all(_picklable(t) for t in tasks):
        _warn(
            "profiling tasks are not picklable (closure-based program factory "
            "not in the app registry); running serially"
        )
        return _run_serial(tasks)

    try:
        pool = ProcessPoolExecutor(max_workers=jobs)
    except Exception as exc:  # no fork support, no semaphores, ...
        _warn(f"could not start process pool ({exc!r}); running serially")
        return _run_serial(tasks)

    outputs: Dict[int, RunOutput] = {}
    terminated = False
    try:
        futures = {t.index: pool.submit(_run_task_in_worker, t) for t in tasks}
        for task in tasks:
            if task.index in outputs:
                continue
            try:
                outputs[task.index] = futures[task.index].result(timeout=timeout)
            except (Exception, _FutureCancelled) as exc:
                # Covers raising workers, BrokenProcessPool after a worker
                # death (which also fails every outstanding future), and
                # per-run timeouts: the single retry runs in-parent, so the
                # session completes whenever a serial session would.
                if isinstance(exc, (_FutureTimeout, TimeoutError)) and not terminated:
                    # harvest whatever already finished, then reclaim the
                    # workers; the hung run and everything still queued are
                    # re-run in the parent as this loop continues
                    for other in tasks:
                        fut = futures[other.index]
                        if other.index not in outputs and fut.done():
                            try:
                                outputs[other.index] = fut.result(timeout=0)
                            except (Exception, _FutureCancelled):
                                pass
                    _terminate_pool(pool)
                    terminated = True
                _warn(
                    f"run {task.index} (seed {task.seed}) failed in worker "
                    f"({type(exc).__name__}: {exc}); retrying in parent"
                )
                outputs[task.index] = _run_task(task, keep_objects=True)
    finally:
        if not terminated:
            pool.shutdown(wait=True, cancel_futures=True)
    if audit_report is not None:
        _audit_identity(tasks, outputs, audit_report)
    return [outputs[t.index] for t in tasks]
