"""Before/after optimization comparison (Table 3 methodology).

The paper runs each benchmark ten times before and after the optimization,
defines speedup as ``(t0 - t_opt) / t0``, computes the standard error with
Efron's bootstrap, and checks significance with the one-tailed Mann-Whitney
U test at alpha = 0.001.  :func:`compare_builds` does exactly that on two
program factories (no profiler installed: these are plain runs), reusing
the process-parallel executor when ``jobs != 1``; :func:`compare_app` is
the registry-addressed form whose runs parallelize for any bundled app.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.harness.journal import SessionJournal
from repro.harness.parallel import (
    ParallelExecutionWarning,
    RetryPolicy,
    RunTask,
    execute_tasks,
)
from repro.harness.runner import _output_from_record, journal_hook
from repro.sim.faults import FaultPlan
from repro.sim.program import Program
from repro.stats.bootstrap import SpeedupStats, speedup_stats


def measure_runtimes(
    program_factory: Callable[[int], Program],
    runs: int = 10,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    app_ref=None,
    audit_report=None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[SessionJournal] = None,
    segment: str = "runtimes",
) -> List[int]:
    """Wall-clock virtual runtimes of ``runs`` fresh executions.

    ``app_ref`` (an :class:`~repro.apps.registry.AppRef`) lets worker
    processes rebuild the program by registry name; without it, parallel
    execution needs ``program_factory`` itself to be picklable.
    ``audit_report`` (an :class:`~repro.core.audit.AuditReport`) turns on
    the executor's parallel-serial-identity spot check.  ``journal`` (an
    open :class:`~repro.harness.journal.SessionJournal`) checkpoints each
    run under ``segment`` and replays runs the journal already holds.
    Runs that fail deterministically are dropped from the returned list
    with a warning — the measurement degrades instead of dying.
    """
    tasks = [
        RunTask(
            index=i,
            seed=base_seed + i,
            coz_config=None,
            app_ref=app_ref,
            program_factory=None if app_ref is not None else program_factory,
            faults=faults,
        )
        for i in range(runs)
    ]
    outputs = {}
    if journal is not None:
        for idx, rec in journal.completed(segment).items():
            if idx < runs:
                outputs[idx] = _output_from_record(rec)
    remaining = [t for t in tasks if t.index not in outputs]
    for out in execute_tasks(
        remaining, jobs=jobs, timeout=timeout,
        audit_report=audit_report if jobs != 1 else None,
        retry=retry,
        on_output=journal_hook(journal, segment),
    ):
        outputs[out.index] = out

    # an output can be absent outright — a journal recorded for fewer runs
    # resumed against a larger ``runs``, or an executor task lost after retry
    # exhaustion — so index with .get and count the hole as a failed run
    # rather than dying on KeyError
    runtimes = []
    failed = []
    absent = []
    for i in range(runs):
        out = outputs.get(i)
        if out is None:
            absent.append(i)
        elif out.failed:
            failed.append(out.run_failure())
        else:
            runtimes.append(out.run["runtime_ns"])
    if failed or absent:
        if failed:
            first = (
                f"run {failed[0].index}, "
                f"{failed[0].error_type}: {failed[0].message}"
            )
        else:
            first = f"run {absent[0]} produced no output"
        warnings.warn(
            f"{len(failed) + len(absent)} of {runs} runs failed and were "
            f"dropped from the runtime measurement (first: {first})",
            ParallelExecutionWarning,
            stacklevel=2,
        )
    return runtimes


@dataclass
class Comparison:
    """A Table 3 row: baseline vs optimized runtimes and their statistics."""

    name: str
    baseline_ns: List[int]
    optimized_ns: List[int]
    stats: SpeedupStats

    @property
    def speedup_pct(self) -> float:
        return self.stats.speedup_pct

    def row(self) -> str:
        sig = "yes" if self.stats.significant() else "NO"
        return (
            f"{self.name:<14} {self.stats.speedup_pct:>7.2f}% "
            f"± {self.stats.se_pct:.2f}%   p={self.stats.p_value:<9.2g} "
            f"significant(a=0.001)={sig}"
        )


def compare_builds(
    name: str,
    baseline_factory: Callable[[int], Program],
    optimized_factory: Callable[[int], Program],
    runs: int = 10,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    baseline_ref=None,
    optimized_ref=None,
    audit_report=None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
) -> Comparison:
    """Run both configurations ``runs`` times and compute Table 3 statistics.

    With ``journal=`` the baseline and optimized measurements checkpoint
    into one journal file as segments ``baseline`` / ``optimized``;
    ``resume=`` replays a previous journal's completed runs first.
    """
    from repro.harness.journal import canonical

    jr: Optional[SessionJournal] = None
    if journal is not None or resume is not None:
        fingerprint = {
            "kind": "compare-session",
            "name": name,
            "runs": runs,
            "base_seed": base_seed,
            "baseline": canonical(baseline_ref),
            "optimized": canonical(optimized_ref),
            "faults": canonical(faults),
        }
        if resume is not None:
            jr = SessionJournal.resume(resume, fingerprint)
        else:
            jr = SessionJournal.create(journal, fingerprint)
    try:
        baseline = measure_runtimes(
            baseline_factory, runs=runs, base_seed=base_seed,
            jobs=jobs, timeout=timeout, app_ref=baseline_ref,
            audit_report=audit_report, faults=faults, retry=retry,
            journal=jr, segment="baseline",
        )
        optimized = measure_runtimes(
            optimized_factory, runs=runs, base_seed=base_seed + runs,
            jobs=jobs, timeout=timeout, app_ref=optimized_ref,
            audit_report=audit_report, faults=faults, retry=retry,
            journal=jr, segment="optimized",
        )
    finally:
        if jr is not None:
            jr.close()
    if not baseline or not optimized:
        empty = "baseline" if not baseline else "optimized"
        raise ValueError(
            f"compare '{name}': every {empty} run failed; no runtimes to "
            f"compare (the journal, if any, records each failure)"
        )
    stats = speedup_stats(baseline, optimized, seed=base_seed)
    return Comparison(
        name=name,
        baseline_ns=baseline,
        optimized_ns=optimized,
        stats=stats,
    )


def compare_app(
    name: str,
    runs: int = 10,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit_report=None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    **build_kwargs,
) -> Comparison:
    """Registry-addressed :func:`compare_builds`: baseline vs optimized
    variant of a bundled app, parallelizable via worker-side rebuild."""
    from repro.apps import registry

    base = registry.build(name, **build_kwargs)
    opt = registry.build(name, optimized=True, **build_kwargs)
    return compare_builds(
        name,
        base.build,
        opt.build,
        runs=runs,
        base_seed=base_seed,
        jobs=jobs,
        timeout=timeout,
        baseline_ref=base.registry_ref,
        optimized_ref=opt.registry_ref,
        audit_report=audit_report,
        faults=faults,
        retry=retry,
        journal=journal,
        resume=resume,
    )
