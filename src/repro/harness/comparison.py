"""Before/after optimization comparison (Table 3 methodology).

The paper runs each benchmark ten times before and after the optimization,
defines speedup as ``(t0 - t_opt) / t0``, computes the standard error with
Efron's bootstrap, and checks significance with the one-tailed Mann-Whitney
U test at alpha = 0.001.  :func:`compare_builds` does exactly that on two
program factories (no profiler installed: these are plain runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim.program import Program
from repro.stats.bootstrap import SpeedupStats, speedup_stats


def measure_runtimes(
    program_factory: Callable[[int], Program],
    runs: int = 10,
    base_seed: int = 0,
) -> List[int]:
    """Wall-clock virtual runtimes of ``runs`` fresh executions."""
    times = []
    for i in range(runs):
        result = program_factory(base_seed + i).run()
        times.append(result.runtime_ns)
    return times


@dataclass
class Comparison:
    """A Table 3 row: baseline vs optimized runtimes and their statistics."""

    name: str
    baseline_ns: List[int]
    optimized_ns: List[int]
    stats: SpeedupStats

    @property
    def speedup_pct(self) -> float:
        return self.stats.speedup_pct

    def row(self) -> str:
        sig = "yes" if self.stats.significant() else "NO"
        return (
            f"{self.name:<14} {self.stats.speedup_pct:>7.2f}% "
            f"± {self.stats.se_pct:.2f}%   p={self.stats.p_value:<9.2g} "
            f"significant(a=0.001)={sig}"
        )


def compare_builds(
    name: str,
    baseline_factory: Callable[[int], Program],
    optimized_factory: Callable[[int], Program],
    runs: int = 10,
    base_seed: int = 0,
) -> Comparison:
    """Run both configurations ``runs`` times and compute Table 3 statistics."""
    baseline = measure_runtimes(baseline_factory, runs=runs, base_seed=base_seed)
    optimized = measure_runtimes(optimized_factory, runs=runs, base_seed=base_seed + runs)
    stats = speedup_stats(baseline, optimized, seed=base_seed)
    return Comparison(
        name=name,
        baseline_ns=baseline,
        optimized_ns=optimized,
        stats=stats,
    )
