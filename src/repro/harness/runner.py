"""Profiling runner: execute an experiment plan, merge profiles.

Coz accumulates profile data across program executions; dense causal
profiles come from many short runs.  :class:`ProfileRequest` describes one
such multi-run session (how many runs, seeding, profiler configuration,
parallelism, fault injection, journaling, planning) and
:func:`run_profile_session` executes it as a **propose → execute →
observe loop**: the request's :class:`~repro.plan.base.Planner` proposes
batches of :class:`~repro.plan.base.ExperimentPlan`\\ s, the runner
executes each batch (fanning out over the process-parallel executor when
``jobs != 1``), and the merged :class:`~repro.core.experiment.
ExperimentResult`\\ s feed back to the planner before it proposes the next
batch.  The default :class:`~repro.plan.StaticPlanner` proposes every run
free in a single batch, which is byte-identical to the historical
schedule; the adaptive planner interleaves analysis between batches.

Per-run seeds are ``base_seed + index`` on both paths and results merge in
schedule order, so a parallel session produces a merged
:class:`ProfileData` bit-identical to the serial one.

Resilience: a run that fails deterministically (deadlock, injected fault)
becomes a :class:`~repro.core.profile_data.RunFailure` record and the
session completes *degraded* rather than dying.  With ``journal=`` set,
every completed run is fsync'd to a crash-safe JSONL journal
(:mod:`repro.harness.journal`); ``resume=`` replays a previous journal's
completed runs and executes only the remaining schedule.  Planner
decisions are a pure function of observed data, so a resumed session —
adaptive included — re-derives the identical plan sequence from the
replayed runs; the planner configuration is fingerprinted so a journal
cannot be resumed under a different planner.

:func:`profile_app` and :func:`profile_program` remain as thin
keyword-style wrappers.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.profile_data import CausalProfile, ProfileData, build_causal_profile
from repro.harness.journal import (
    DEFAULT_SEGMENT,
    JournalRecord,
    SessionJournal,
    canonical,
)
from repro.harness.parallel import RunOutput, RunTask, execute_tasks
from repro.harness.request import (
    ExecutionConfig,
    ProfileRequest,
    ResilienceConfig,
)
from repro.plan import PlanConfig, make_planner
from repro.plan.base import ExperimentPlan, PlannerState, PlanReport
from repro.sim.faults import FaultPlan
from repro.sim.program import RunResult

__all__ = [
    "ExecutionConfig",
    "ProfileOutcome",
    "ProfileRequest",
    "ResilienceConfig",
    "journal_hook",
    "output_wire_parts",
    "profile_app",
    "profile_program",
    "run_profile_session",
    "session_fingerprint",
]


@dataclass
class ProfileOutcome:
    """Merged result of a multi-run profiling session."""

    data: ProfileData
    profile: CausalProfile
    run_results: List[RunResult] = field(default_factory=list)
    #: merged invariant-audit report (``None`` unless the request audited)
    audit: Optional[object] = None
    #: how the planner spent the session (always present; the static
    #: planner reports one round of uniform spend)
    plan: Optional[PlanReport] = None
    #: the session's :attr:`~repro.harness.request.ExecutionConfig.
    #: deadline_s` passed before every scheduled run completed; the
    #: outcome holds only the completed prefix (a journaled session is
    #: resumable from exactly this point)
    deadline_exceeded: bool = False

    @property
    def experiment_count(self) -> int:
        return len(self.data.experiments)

    @property
    def degraded(self) -> bool:
        """True when at least one scheduled run produced no data."""
        return self.data.degraded


def session_fingerprint(
    spec: AppSpec, request: "ProfileRequest", coz_config: CozConfig
) -> dict:
    """Everything that determines a session's results, canonicalized.

    Execution-only knobs (``jobs``, ``timeout``, retry policy, checkpoint
    fast-forward, the observational ``audit`` flag) are excluded: a session
    may be resumed with a different worker count and still merge
    bit-identically.  The per-run seed overrides the config's ``seed``
    field, so that is normalized out too.  The plan configuration *is*
    included — replaying a journal under a different planner would feed a
    different decision process.
    """
    app = canonical(spec.registry_ref) if spec.registry_ref is not None else spec.name
    return {
        "kind": "profile-session",
        "app": app,
        "runs": request.runs,
        "base_seed": request.base_seed,
        "min_speedup_amounts": request.min_speedup_amounts,
        "coz_config": canonical(replace(coz_config, seed=0, audit=False)),
        "faults": canonical(request.faults),
        "plan": canonical(request.plan),
    }


def _output_from_record(rec: JournalRecord) -> RunOutput:
    """Rebuild a completed run's output from its journal record."""
    if rec.kind == "failure":
        return RunOutput(index=rec.index, seed=rec.seed, failure=rec.failure)
    return RunOutput(
        index=rec.index,
        seed=rec.seed,
        run=rec.run or {},
        data_json=json.dumps(rec.data) if rec.data is not None else None,
        audit_json=json.dumps(rec.audit) if rec.audit is not None else None,
    )


def output_wire_parts(out: RunOutput):
    """(data_json, audit_json) for journaling, serializing live objects
    when the output came from an in-process execution."""
    data_json = out.data_json
    if data_json is None:
        data = out.profile_data()
        data_json = data.to_json() if data is not None else None
    audit_json = out.audit_json
    if audit_json is None:
        audit = out.audit_report()
        audit_json = audit.to_json() if audit is not None else None
    return data_json, audit_json


def journal_hook(journal: Optional[SessionJournal], segment: str = DEFAULT_SEGMENT):
    """An ``execute_tasks(on_output=...)`` callback that journals each run."""
    if journal is None:
        return None

    def record(task: RunTask, out: RunOutput) -> None:
        if out.failed:
            journal.record_failure(segment, out.run_failure())
            return
        data_json, audit_json = output_wire_parts(out)
        journal.record_run(segment, out.index, out.seed, out.run, data_json, audit_json)

    return record


def run_profile_session(
    spec: AppSpec,
    request: Optional[ProfileRequest] = None,
) -> ProfileOutcome:
    """Profile an app spec per ``request``: the propose → execute →
    observe loop.

    With ``request.jobs != 1`` each batch executes in worker processes;
    specs built by :func:`repro.apps.registry.build` are rebuilt
    worker-side from their :class:`~repro.apps.registry.AppRef`, while
    unregistered specs (whose ``build`` closures cannot be pickled) fall
    back to serial with a warning.  Deterministically failed runs are
    recorded in ``outcome.data.failures`` and the session completes
    degraded.
    """
    request = request or ProfileRequest()
    coz_config = request.coz_config or CozConfig()
    if coz_config.scope.files is None and spec.scope.files is not None:
        coz_config = replace(coz_config, scope=spec.scope)
    audit_report = None
    if request.audit or coz_config.audit:
        from repro.core.audit import AuditReport

        coz_config = replace(coz_config, audit=True)
        audit_report = AuditReport()

    # Checkpoint fast-forward: only registry-referenced apps have a stable
    # identity to key the store by, and audited sessions always run cold
    # (the auditor keeps shadow books the snapshot cannot carry).  The
    # store opens here, in the parent, so a stale on-disk cache warns (and
    # is invalidated) at session start rather than deep inside a worker.
    store = None
    if (
        request.checkpoint
        and spec.registry_ref is not None
        and audit_report is None
    ):
        from repro.harness.checkpoint import CheckpointStore, checkpoint_fingerprint

        key = checkpoint_fingerprint(spec, coz_config, request.faults)
        store = CheckpointStore(key, directory=request.checkpoint_dir)

    def make_task(plan: ExperimentPlan) -> RunTask:
        # Directed runs carry a one-off config (fixed line + probe
        # schedule) whose checkpoint fingerprint no later run would ever
        # hit, so they always simulate cold; free runs share the session
        # store exactly as before.
        seed = request.base_seed + plan.index
        use_store = store is not None and not plan.is_directed
        return RunTask(
            index=plan.index,
            seed=seed,
            coz_config=plan.apply(coz_config),
            app_ref=spec.registry_ref,
            program_factory=None if spec.registry_ref is not None else spec.build,
            progress_points=tuple(spec.progress_points),
            latency_specs=tuple(spec.latency_specs),
            faults=request.faults,
            checkpoint=use_store,
            checkpoint_key=store.key if use_store else None,
            checkpoint_dir=store.directory if use_store else None,
            # ship the prefix snapshot with the task: workers resume warm
            # without a store round-trip, and the transfer happens once
            snapshot=store.get(seed) if use_store else None,
        )

    journal: Optional[SessionJournal] = None
    replayed: Dict[int, RunOutput] = {}
    if request.resume is not None:
        fingerprint = session_fingerprint(spec, request, coz_config)
        journal = SessionJournal.resume(request.resume, fingerprint)
        for idx, rec in journal.completed(DEFAULT_SEGMENT).items():
            replayed[idx] = _output_from_record(rec)
    elif request.journal is not None:
        fingerprint = session_fingerprint(spec, request, coz_config)
        journal = SessionJournal.create(request.journal, fingerprint)

    planner = make_planner(request.plan, default_runs=request.runs)
    on_output = journal_hook(journal)
    data = ProfileData()
    run_results: List[RunResult] = []
    outputs: Dict[int, RunOutput] = {}
    merged = 0
    #: non-replayed runs the session may still execute (None = unlimited)
    fresh_budget = request.stop_after_runs
    stopped = False
    deadline_exceeded = False
    deadline_monotonic = None
    if request.execution.deadline_s is not None:
        deadline_monotonic = time.monotonic() + request.execution.deadline_s

    def _deadline_passed() -> bool:
        return (
            deadline_monotonic is not None
            and time.monotonic() >= deadline_monotonic
        )

    try:
        while not stopped and not planner.done():
            state = PlannerState(
                data=data,
                primary_progress=spec.primary_progress,
                coz_config=coz_config,
                min_speedup_amounts=request.min_speedup_amounts,
                runs_completed=merged,
            )
            plans = planner.propose(state)
            if not plans:
                break
            batch = [make_task(p) for p in plans]
            fresh = [t for t in batch if t.index not in replayed]
            if fresh_budget is not None:
                fresh = fresh[:fresh_budget]
                fresh_budget -= len(fresh)
            executed = execute_tasks(
                fresh,
                jobs=request.jobs,
                timeout=request.timeout,
                audit_report=audit_report if request.jobs != 1 else None,
                retry=request.retry,
                on_output=on_output,
                deadline_monotonic=deadline_monotonic,
                batch_runs=request.execution.batch_runs,
            )
            for out in executed:
                outputs[out.index] = out

            batch_results = []
            for plan in plans:
                out = outputs.get(plan.index) or replayed.get(plan.index)
                if out is None:
                    # stop_after_runs exhausted mid-batch, or the deadline
                    # cut the batch short: return the partial session (the
                    # journal has what completed)
                    stopped = True
                    if _deadline_passed():
                        deadline_exceeded = True
                    continue
                merged += 1
                if out.failed:
                    data.add_failure(out.run_failure())
                    continue
                run_data = out.profile_data()
                batch_results.extend(run_data.experiments)
                data.merge(run_data)
                result = out.run_result()
                if result is not None:
                    run_results.append(result)
                if audit_report is not None:
                    per_run = out.audit_report()
                    if per_run is not None:
                        audit_report.merge(per_run)
            planner.observe(batch_results)
            if fresh_budget is not None and fresh_budget <= 0:
                stopped = True
    finally:
        if journal is not None:
            journal.close()

    if audit_report is not None:
        from repro.core.audit import audit_profile_data, run_accounting_check

        audit_report.merge(audit_profile_data(data))
        audit_report.add(run_accounting_check(merged, data))
    profile = build_causal_profile(
        data,
        spec.primary_progress,
        min_speedup_amounts=request.min_speedup_amounts,
        phase_correction=coz_config.phase_correction,
    )
    return ProfileOutcome(
        data=data,
        profile=profile,
        run_results=run_results,
        audit=audit_report,
        plan=planner.report(),
        deadline_exceeded=deadline_exceeded,
    )


def profile_program(
    program_factory,
    progress_points,
    primary_progress: str,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    latency_specs=(),
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit: bool = False,
    faults: Optional[FaultPlan] = None,
    plan: Optional[PlanConfig] = None,
) -> ProfileOutcome:
    """Profile ``runs`` fresh programs from ``program_factory(seed)``.

    ``jobs`` fans runs out to worker processes when the factory is
    picklable (module-level functions are; closures degrade to serial).
    """
    spec = AppSpec(
        name="<program>",
        build=program_factory,
        progress_points=list(progress_points),
        primary_progress=primary_progress,
        scope=(coz_config or CozConfig()).scope,
        latency_specs=list(latency_specs),
    )
    request = ProfileRequest(
        runs=runs,
        base_seed=base_seed,
        coz_config=coz_config,
        min_speedup_amounts=min_speedup_amounts,
        audit=audit,
        execution=ExecutionConfig(jobs=jobs, timeout=timeout),
        resilience=ResilienceConfig(faults=faults),
        plan=plan,
    )
    return run_profile_session(spec, request)


def profile_app(
    spec: AppSpec,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit: bool = False,
    faults: Optional[FaultPlan] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    plan: Optional[PlanConfig] = None,
) -> ProfileOutcome:
    """Profile an app spec with its own scope and progress points."""
    request = ProfileRequest(
        runs=runs,
        base_seed=base_seed,
        coz_config=coz_config,
        min_speedup_amounts=min_speedup_amounts,
        audit=audit,
        execution=ExecutionConfig(jobs=jobs, timeout=timeout),
        resilience=ResilienceConfig(faults=faults, journal=journal, resume=resume),
        plan=plan,
    )
    return run_profile_session(spec, request)
