"""Profiling runner: run an app under the causal profiler, merge profiles.

Coz accumulates profile data across program executions; dense causal
profiles come from many short runs.  :func:`profile_app` runs an
:class:`~repro.apps.spec.AppSpec` ``runs`` times with per-run seeds and
returns the merged :class:`~repro.core.profile_data.ProfileData` plus the
built profile for the app's primary progress point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.profile_data import CausalProfile, ProfileData, build_causal_profile
from repro.core.profiler import CausalProfiler
from repro.sim.engine import SimConfig
from repro.sim.program import Program, RunResult


@dataclass
class ProfileOutcome:
    """Merged result of a multi-run profiling session."""

    data: ProfileData
    profile: CausalProfile
    run_results: List[RunResult] = field(default_factory=list)

    @property
    def experiment_count(self) -> int:
        return len(self.data.experiments)


def profile_program(
    program_factory,
    progress_points,
    primary_progress: str,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    latency_specs=(),
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
) -> ProfileOutcome:
    """Profile ``runs`` fresh programs from ``program_factory(seed)``."""
    coz_config = coz_config or CozConfig()
    data = ProfileData()
    run_results = []
    for i in range(runs):
        cfg = replace(coz_config, seed=base_seed + i)
        profiler = CausalProfiler(cfg, progress_points, latency_specs)
        program = program_factory(base_seed + i)
        result = program.run(hook=profiler)
        run_results.append(result)
        data.merge(profiler.data)
    profile = build_causal_profile(
        data,
        primary_progress,
        min_speedup_amounts=min_speedup_amounts,
        phase_correction=coz_config.phase_correction,
    )
    return ProfileOutcome(data=data, profile=profile, run_results=run_results)


def profile_app(
    spec: AppSpec,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
) -> ProfileOutcome:
    """Profile an app spec with its own scope and progress points."""
    coz_config = coz_config or CozConfig()
    if coz_config.scope.files is None and spec.scope.files is not None:
        coz_config = replace(coz_config, scope=spec.scope)
    return profile_program(
        spec.build,
        spec.progress_points,
        spec.primary_progress,
        runs=runs,
        coz_config=coz_config,
        latency_specs=spec.latency_specs,
        min_speedup_amounts=min_speedup_amounts,
        base_seed=base_seed,
    )
