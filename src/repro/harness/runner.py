"""Profiling runner: run an app under the causal profiler, merge profiles.

Coz accumulates profile data across program executions; dense causal
profiles come from many short runs.  :class:`ProfileRequest` describes one
such multi-run session (how many runs, seeding, profiler configuration,
parallelism, fault injection, journaling) and :func:`run_profile_session`
executes it, fanning runs out over the process-parallel executor when
``jobs != 1``.  Per-run seeds are ``base_seed + i`` on both paths and
results merge in run order, so a parallel session produces a merged
:class:`ProfileData` bit-identical to the serial one.

Resilience: a run that fails deterministically (deadlock, injected fault)
becomes a :class:`~repro.core.profile_data.RunFailure` record and the
session completes *degraded* rather than dying.  With ``journal=`` set,
every completed run is fsync'd to a crash-safe JSONL journal
(:mod:`repro.harness.journal`); ``resume=`` replays a previous journal's
completed runs and executes only the remaining schedule — because run
``i`` is always seeded ``base_seed + i``, the resumed session's merged
data is bit-identical to an uninterrupted one.

:func:`profile_app` and :func:`profile_program` remain as thin
keyword-style wrappers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.profile_data import CausalProfile, ProfileData, build_causal_profile
from repro.harness.journal import (
    DEFAULT_SEGMENT,
    JournalRecord,
    SessionJournal,
    canonical,
)
from repro.harness.parallel import RetryPolicy, RunOutput, RunTask, execute_tasks
from repro.sim.faults import FaultPlan
from repro.sim.program import RunResult


@dataclass
class ProfileRequest:
    """Everything tunable about one multi-run profiling session.

    The single keyword surface shared by :func:`profile_app`,
    :func:`profile_program`, and the CLI; construct once, reuse across
    apps.
    """

    #: number of profiling runs to merge
    runs: int = 5
    #: run ``i`` is seeded ``base_seed + i`` (serial and parallel alike)
    base_seed: int = 0
    #: profiler configuration; ``None`` = defaults (scope filled from spec)
    coz_config: Optional[CozConfig] = None
    #: discard lines measured at fewer distinct speedups than this
    min_speedup_amounts: int = 2
    #: worker processes: 1 = serial, 0/None = auto (cpu-count-aware)
    jobs: int = 1
    #: per-run timeout in seconds when running in worker processes
    #: (``None`` = the executor's watchdog deadline)
    timeout: Optional[float] = None
    #: attach the invariant audit (:mod:`repro.core.audit`) to every run and
    #: merge the per-run reports into :attr:`ProfileOutcome.audit`
    audit: bool = False
    #: fault-injection plan (:class:`~repro.sim.faults.FaultPlan`); part of
    #: the session fingerprint, so a resumed chaos session re-injects the
    #: same faults
    faults: Optional[FaultPlan] = None
    #: retry/backoff/circuit-breaker policy for worker failures
    retry: Optional[RetryPolicy] = None
    #: path to write a crash-safe session journal to (fsync'd per run)
    journal: Optional[str] = None
    #: path of a journal to resume from; replays its completed runs and
    #: continues appending to the same file
    resume: Optional[str] = None
    #: testing hook: execute at most this many (non-replayed) runs, then
    #: return the partial session — simulates dying mid-session without a
    #: SIGKILL, for checkpoint/resume tests
    stop_after_runs: Optional[int] = None
    #: checkpoint fast-forward (:mod:`repro.harness.checkpoint`): resume
    #: runs from stored prefix snapshots when bit-identical ones exist and
    #: record snapshots when they don't.  Execution-only (results are
    #: bit-identical either way), so excluded from the session fingerprint.
    #: Ignored for unregistered specs and audited sessions.
    checkpoint: bool = True
    #: optional on-disk checkpoint cache shared across processes/sessions;
    #: ``None`` = in-memory only
    checkpoint_dir: Optional[str] = None


@dataclass
class ProfileOutcome:
    """Merged result of a multi-run profiling session."""

    data: ProfileData
    profile: CausalProfile
    run_results: List[RunResult] = field(default_factory=list)
    #: merged invariant-audit report (``None`` unless the request audited)
    audit: Optional[object] = None

    @property
    def experiment_count(self) -> int:
        return len(self.data.experiments)

    @property
    def degraded(self) -> bool:
        """True when at least one scheduled run produced no data."""
        return self.data.degraded


def session_fingerprint(
    spec: AppSpec, request: "ProfileRequest", coz_config: CozConfig
) -> dict:
    """Everything that determines a session's results, canonicalized.

    Execution-only knobs (``jobs``, ``timeout``, retry policy, the
    observational ``audit`` flag) are excluded: a session may be resumed
    with a different worker count and still merge bit-identically.  The
    per-run seed overrides the config's ``seed`` field, so that is
    normalized out too.
    """
    app = canonical(spec.registry_ref) if spec.registry_ref is not None else spec.name
    return {
        "kind": "profile-session",
        "app": app,
        "runs": request.runs,
        "base_seed": request.base_seed,
        "min_speedup_amounts": request.min_speedup_amounts,
        "coz_config": canonical(replace(coz_config, seed=0, audit=False)),
        "faults": canonical(request.faults),
    }


def _output_from_record(rec: JournalRecord) -> RunOutput:
    """Rebuild a completed run's output from its journal record."""
    if rec.kind == "failure":
        return RunOutput(index=rec.index, seed=rec.seed, failure=rec.failure)
    return RunOutput(
        index=rec.index,
        seed=rec.seed,
        run=rec.run or {},
        data_json=json.dumps(rec.data) if rec.data is not None else None,
        audit_json=json.dumps(rec.audit) if rec.audit is not None else None,
    )


def output_wire_parts(out: RunOutput):
    """(data_json, audit_json) for journaling, serializing live objects
    when the output came from an in-process execution."""
    data_json = out.data_json
    if data_json is None:
        data = out.profile_data()
        data_json = data.to_json() if data is not None else None
    audit_json = out.audit_json
    if audit_json is None:
        audit = out.audit_report()
        audit_json = audit.to_json() if audit is not None else None
    return data_json, audit_json


def journal_hook(journal: Optional[SessionJournal], segment: str = DEFAULT_SEGMENT):
    """An ``execute_tasks(on_output=...)`` callback that journals each run."""
    if journal is None:
        return None

    def record(task: RunTask, out: RunOutput) -> None:
        if out.failed:
            journal.record_failure(segment, out.run_failure())
            return
        data_json, audit_json = output_wire_parts(out)
        journal.record_run(segment, out.index, out.seed, out.run, data_json, audit_json)

    return record


def run_profile_session(
    spec: AppSpec,
    request: Optional[ProfileRequest] = None,
) -> ProfileOutcome:
    """Profile an app spec per ``request`` and merge the runs in order.

    With ``request.jobs != 1`` runs execute in worker processes; specs
    built by :func:`repro.apps.registry.build` are rebuilt worker-side from
    their :class:`~repro.apps.registry.AppRef`, while unregistered specs
    (whose ``build`` closures cannot be pickled) fall back to serial with a
    warning.  Deterministically failed runs are recorded in
    ``outcome.data.failures`` and the session completes degraded.
    """
    request = request or ProfileRequest()
    coz_config = request.coz_config or CozConfig()
    if coz_config.scope.files is None and spec.scope.files is not None:
        coz_config = replace(coz_config, scope=spec.scope)
    audit_report = None
    if request.audit or coz_config.audit:
        from repro.core.audit import AuditReport

        coz_config = replace(coz_config, audit=True)
        audit_report = AuditReport()

    # Checkpoint fast-forward: only registry-referenced apps have a stable
    # identity to key the store by, and audited sessions always run cold
    # (the auditor keeps shadow books the snapshot cannot carry).  The
    # store opens here, in the parent, so a stale on-disk cache warns (and
    # is invalidated) at session start rather than deep inside a worker.
    store = None
    if (
        request.checkpoint
        and spec.registry_ref is not None
        and audit_report is None
    ):
        from repro.harness.checkpoint import CheckpointStore, checkpoint_fingerprint

        key = checkpoint_fingerprint(spec, coz_config, request.faults)
        store = CheckpointStore(key, directory=request.checkpoint_dir)

    tasks = [
        RunTask(
            index=i,
            seed=request.base_seed + i,
            coz_config=coz_config,
            app_ref=spec.registry_ref,
            program_factory=None if spec.registry_ref is not None else spec.build,
            progress_points=tuple(spec.progress_points),
            latency_specs=tuple(spec.latency_specs),
            faults=request.faults,
            checkpoint=store is not None,
            checkpoint_key=store.key if store is not None else None,
            checkpoint_dir=store.directory if store is not None else None,
            # ship the prefix snapshot with the task: workers resume warm
            # without a store round-trip, and the transfer happens once
            snapshot=store.get(request.base_seed + i) if store is not None else None,
        )
        for i in range(request.runs)
    ]

    journal: Optional[SessionJournal] = None
    outputs: Dict[int, RunOutput] = {}
    if request.resume is not None:
        fingerprint = session_fingerprint(spec, request, coz_config)
        journal = SessionJournal.resume(request.resume, fingerprint)
        for idx, rec in journal.completed(DEFAULT_SEGMENT).items():
            if idx < request.runs:
                outputs[idx] = _output_from_record(rec)
    elif request.journal is not None:
        fingerprint = session_fingerprint(spec, request, coz_config)
        journal = SessionJournal.create(request.journal, fingerprint)

    remaining = [t for t in tasks if t.index not in outputs]
    if request.stop_after_runs is not None:
        remaining = remaining[: request.stop_after_runs]

    try:
        executed = execute_tasks(
            remaining,
            jobs=request.jobs,
            timeout=request.timeout,
            audit_report=audit_report if request.jobs != 1 else None,
            retry=request.retry,
            on_output=journal_hook(journal),
        )
    finally:
        if journal is not None:
            journal.close()
    for out in executed:
        outputs[out.index] = out

    data = ProfileData()
    run_results = []
    for i in range(request.runs):
        out = outputs.get(i)
        if out is None:
            continue  # stopped-early partial session (stop_after_runs)
        if out.failed:
            data.add_failure(out.run_failure())
            continue
        data.merge(out.profile_data())
        result = out.run_result()
        if result is not None:
            run_results.append(result)
        if audit_report is not None:
            per_run = out.audit_report()
            if per_run is not None:
                audit_report.merge(per_run)
    if audit_report is not None:
        from repro.core.audit import audit_profile_data, run_accounting_check

        audit_report.merge(audit_profile_data(data))
        audit_report.add(run_accounting_check(len(outputs), data))
    profile = build_causal_profile(
        data,
        spec.primary_progress,
        min_speedup_amounts=request.min_speedup_amounts,
        phase_correction=coz_config.phase_correction,
    )
    return ProfileOutcome(
        data=data, profile=profile, run_results=run_results, audit=audit_report
    )


def profile_program(
    program_factory,
    progress_points,
    primary_progress: str,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    latency_specs=(),
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit: bool = False,
    faults: Optional[FaultPlan] = None,
) -> ProfileOutcome:
    """Profile ``runs`` fresh programs from ``program_factory(seed)``.

    ``jobs`` fans runs out to worker processes when the factory is
    picklable (module-level functions are; closures degrade to serial).
    """
    spec = AppSpec(
        name="<program>",
        build=program_factory,
        progress_points=list(progress_points),
        primary_progress=primary_progress,
        scope=(coz_config or CozConfig()).scope,
        latency_specs=list(latency_specs),
    )
    request = ProfileRequest(
        runs=runs,
        base_seed=base_seed,
        coz_config=coz_config,
        min_speedup_amounts=min_speedup_amounts,
        jobs=jobs,
        timeout=timeout,
        audit=audit,
        faults=faults,
    )
    return run_profile_session(spec, request)


def profile_app(
    spec: AppSpec,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit: bool = False,
    faults: Optional[FaultPlan] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
) -> ProfileOutcome:
    """Profile an app spec with its own scope and progress points."""
    request = ProfileRequest(
        runs=runs,
        base_seed=base_seed,
        coz_config=coz_config,
        min_speedup_amounts=min_speedup_amounts,
        jobs=jobs,
        timeout=timeout,
        audit=audit,
        faults=faults,
        journal=journal,
        resume=resume,
    )
    return run_profile_session(spec, request)
