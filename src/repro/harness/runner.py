"""Profiling runner: run an app under the causal profiler, merge profiles.

Coz accumulates profile data across program executions; dense causal
profiles come from many short runs.  :class:`ProfileRequest` describes one
such multi-run session (how many runs, seeding, profiler configuration,
parallelism) and :func:`run_profile_session` executes it, fanning runs out
over the process-parallel executor when ``jobs != 1``.  Per-run seeds are
``base_seed + i`` on both paths and results merge in run order, so a
parallel session produces a merged :class:`ProfileData` bit-identical to
the serial one.  :func:`profile_app` and :func:`profile_program` remain as
thin keyword-style wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.apps.spec import AppSpec
from repro.core.config import CozConfig
from repro.core.profile_data import CausalProfile, ProfileData, build_causal_profile
from repro.harness.parallel import RunTask, execute_tasks
from repro.sim.program import RunResult


@dataclass
class ProfileRequest:
    """Everything tunable about one multi-run profiling session.

    The single keyword surface shared by :func:`profile_app`,
    :func:`profile_program`, and the CLI; construct once, reuse across
    apps.
    """

    #: number of profiling runs to merge
    runs: int = 5
    #: run ``i`` is seeded ``base_seed + i`` (serial and parallel alike)
    base_seed: int = 0
    #: profiler configuration; ``None`` = defaults (scope filled from spec)
    coz_config: Optional[CozConfig] = None
    #: discard lines measured at fewer distinct speedups than this
    min_speedup_amounts: int = 2
    #: worker processes: 1 = serial, 0/None = auto (cpu-count-aware)
    jobs: int = 1
    #: per-run timeout in seconds when running in worker processes
    timeout: Optional[float] = None
    #: attach the invariant audit (:mod:`repro.core.audit`) to every run and
    #: merge the per-run reports into :attr:`ProfileOutcome.audit`
    audit: bool = False


@dataclass
class ProfileOutcome:
    """Merged result of a multi-run profiling session."""

    data: ProfileData
    profile: CausalProfile
    run_results: List[RunResult] = field(default_factory=list)
    #: merged invariant-audit report (``None`` unless the request audited)
    audit: Optional[object] = None

    @property
    def experiment_count(self) -> int:
        return len(self.data.experiments)


def run_profile_session(
    spec: AppSpec,
    request: Optional[ProfileRequest] = None,
) -> ProfileOutcome:
    """Profile an app spec per ``request`` and merge the runs in order.

    With ``request.jobs != 1`` runs execute in worker processes; specs
    built by :func:`repro.apps.registry.build` are rebuilt worker-side from
    their :class:`~repro.apps.registry.AppRef`, while unregistered specs
    (whose ``build`` closures cannot be pickled) fall back to serial with a
    warning.
    """
    request = request or ProfileRequest()
    coz_config = request.coz_config or CozConfig()
    if coz_config.scope.files is None and spec.scope.files is not None:
        coz_config = replace(coz_config, scope=spec.scope)
    audit_report = None
    if request.audit or coz_config.audit:
        from repro.core.audit import AuditReport

        coz_config = replace(coz_config, audit=True)
        audit_report = AuditReport()

    tasks = [
        RunTask(
            index=i,
            seed=request.base_seed + i,
            coz_config=coz_config,
            app_ref=spec.registry_ref,
            program_factory=None if spec.registry_ref is not None else spec.build,
            progress_points=tuple(spec.progress_points),
            latency_specs=tuple(spec.latency_specs),
        )
        for i in range(request.runs)
    ]
    outputs = execute_tasks(
        tasks,
        jobs=request.jobs,
        timeout=request.timeout,
        audit_report=audit_report if request.jobs != 1 else None,
    )

    data = ProfileData()
    run_results = []
    for out in outputs:
        data.merge(out.profile_data())
        run_results.append(out.run_result())
        if audit_report is not None:
            per_run = out.audit_report()
            if per_run is not None:
                audit_report.merge(per_run)
    if audit_report is not None:
        from repro.core.audit import audit_profile_data

        audit_report.merge(audit_profile_data(data))
    profile = build_causal_profile(
        data,
        spec.primary_progress,
        min_speedup_amounts=request.min_speedup_amounts,
        phase_correction=coz_config.phase_correction,
    )
    return ProfileOutcome(
        data=data, profile=profile, run_results=run_results, audit=audit_report
    )


def profile_program(
    program_factory,
    progress_points,
    primary_progress: str,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    latency_specs=(),
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit: bool = False,
) -> ProfileOutcome:
    """Profile ``runs`` fresh programs from ``program_factory(seed)``.

    ``jobs`` fans runs out to worker processes when the factory is
    picklable (module-level functions are; closures degrade to serial).
    """
    spec = AppSpec(
        name="<program>",
        build=program_factory,
        progress_points=list(progress_points),
        primary_progress=primary_progress,
        scope=(coz_config or CozConfig()).scope,
        latency_specs=list(latency_specs),
    )
    request = ProfileRequest(
        runs=runs,
        base_seed=base_seed,
        coz_config=coz_config,
        min_speedup_amounts=min_speedup_amounts,
        jobs=jobs,
        timeout=timeout,
        audit=audit,
    )
    return run_profile_session(spec, request)


def profile_app(
    spec: AppSpec,
    runs: int = 5,
    coz_config: Optional[CozConfig] = None,
    min_speedup_amounts: int = 2,
    base_seed: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    audit: bool = False,
) -> ProfileOutcome:
    """Profile an app spec with its own scope and progress points."""
    request = ProfileRequest(
        runs=runs,
        base_seed=base_seed,
        coz_config=coz_config,
        min_speedup_amounts=min_speedup_amounts,
        jobs=jobs,
        timeout=timeout,
        audit=audit,
    )
    return run_profile_session(spec, request)
