"""The profiling-session request surface: grouped knobs + legacy shims.

:class:`ProfileRequest` started as a dozen flat fields and grew with every
subsystem (parallel execution, fault injection, journaling, checkpoints,
planning).  The knobs now live in three sub-configs grouped by concern:

* :class:`ExecutionConfig` — *how* runs execute (workers, timeouts, retry,
  checkpoint fast-forward).  Execution-only: never part of the session
  fingerprint, because results are bit-identical across these settings.
* :class:`ResilienceConfig` — fault injection and crash recovery (chaos
  plan, journal/resume paths, the stop-early testing hook).  The fault
  plan *is* fingerprinted (it changes results); the journal paths are not.
* :class:`~repro.plan.base.PlanConfig` — which experiment planner drives
  the session and with what budget.  Fingerprinted: replaying a journal
  under a different planner would feed a different decision process.

The original flat keyword surface (``jobs=``, ``faults=``, ``journal=``,
...) still works everywhere — construction folds legacy kwargs into the
sub-configs with a :class:`DeprecationWarning`, and read access goes
through properties — so existing call sites, tests, and fingerprints are
unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.config import CozConfig
from repro.harness.parallel import RetryPolicy
from repro.plan.base import PlanConfig
from repro.sim.faults import FaultPlan


@dataclass(frozen=True)
class ExecutionConfig:
    """How a session's runs execute (never affects *what* they compute)."""

    #: worker processes: 1 = serial, 0/None = auto (cpu-count-aware)
    jobs: int = 1
    #: per-run timeout in seconds when running in worker processes
    #: (``None`` = the executor's watchdog deadline)
    timeout: Optional[float] = None
    #: runs shipped per worker dispatch (:class:`~repro.harness.parallel.
    #: RunBatch`); ``None`` = auto-sized from the run count and ``jobs``,
    #: ``1`` = classic one-future-per-run dispatch.  Execution-only: the
    #: merged profile is bit-identical for every batch size.
    batch_runs: Optional[int] = None
    #: retry/backoff/circuit-breaker policy for worker failures
    retry: Optional[RetryPolicy] = None
    #: checkpoint fast-forward (:mod:`repro.harness.checkpoint`): resume
    #: runs from stored prefix snapshots when bit-identical ones exist and
    #: record snapshots when they don't.  Ignored for unregistered specs,
    #: audited sessions, and planner-directed runs (their one-off configs
    #: key a snapshot no later run could reuse).
    checkpoint: bool = True
    #: optional on-disk checkpoint cache shared across processes/sessions;
    #: ``None`` = in-memory only
    checkpoint_dir: Optional[str] = None
    #: soft wall-clock budget for the whole session, in seconds: once it
    #: passes, no new run starts, parallel waits are clamped to the
    #: remainder, and the session returns the completed prefix with
    #: :attr:`~repro.harness.runner.ProfileOutcome.deadline_exceeded` set.
    #: Execution-only — a journaled session cut off at its deadline resumes
    #: bit-identically.  The profiling service uses this to propagate each
    #: job's deadline into the executor watchdog.
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault injection and crash recovery."""

    #: fault-injection plan (:class:`~repro.sim.faults.FaultPlan`); part of
    #: the session fingerprint, so a resumed chaos session re-injects the
    #: same faults
    faults: Optional[FaultPlan] = None
    #: path to write a crash-safe session journal to (fsync'd per run)
    journal: Optional[str] = None
    #: path of a journal to resume from; replays its completed runs and
    #: continues appending to the same file
    resume: Optional[str] = None
    #: testing hook: execute at most this many (non-replayed) runs, then
    #: return the partial session — simulates dying mid-session without a
    #: SIGKILL, for checkpoint/resume tests
    stop_after_runs: Optional[int] = None


#: legacy flat kwarg -> (sub-config attribute on ProfileRequest, field name)
_LEGACY_FIELDS = {
    "jobs": ("execution", "jobs"),
    "timeout": ("execution", "timeout"),
    "retry": ("execution", "retry"),
    "checkpoint": ("execution", "checkpoint"),
    "checkpoint_dir": ("execution", "checkpoint_dir"),
    "faults": ("resilience", "faults"),
    "journal": ("resilience", "journal"),
    "resume": ("resilience", "resume"),
    "stop_after_runs": ("resilience", "stop_after_runs"),
}

_GROUP_DEFAULTS = {
    "execution": ExecutionConfig,
    "resilience": ResilienceConfig,
    "plan": PlanConfig,
}


class ProfileRequest:
    """Everything tunable about one multi-run profiling session.

    The single keyword surface shared by :func:`~repro.harness.runner.
    profile_app`, :func:`~repro.harness.runner.profile_program`, and the
    CLI; construct once, reuse across apps.

    Grouped construction (preferred)::

        ProfileRequest(runs=8, execution=ExecutionConfig(jobs=4),
                       plan=PlanConfig(planner="adaptive", budget=6))

    The legacy flat kwargs (``jobs=4``, ``faults=plan``, ...) are still
    accepted, folded into the sub-configs with a ``DeprecationWarning``.
    """

    def __init__(
        self,
        runs: int = 5,
        base_seed: int = 0,
        coz_config: Optional[CozConfig] = None,
        min_speedup_amounts: int = 2,
        audit: bool = False,
        execution: Optional[ExecutionConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        plan: Optional[PlanConfig] = None,
        **legacy: Any,
    ) -> None:
        #: number of profiling runs to merge (the static schedule's length
        #: and the default planner budget)
        self.runs = runs
        #: run ``i`` is seeded ``base_seed + i`` (serial and parallel alike)
        self.base_seed = base_seed
        #: profiler configuration; ``None`` = defaults (scope filled from spec)
        self.coz_config = coz_config
        #: discard lines measured at fewer distinct speedups than this
        self.min_speedup_amounts = min_speedup_amounts
        #: attach the invariant audit (:mod:`repro.core.audit`) to every run
        #: and merge per-run reports into :attr:`ProfileOutcome.audit`
        self.audit = audit

        groups: Dict[str, Any] = {
            "execution": execution,
            "resilience": resilience,
            "plan": plan,
        }
        overrides: Dict[str, Dict[str, Any]] = {g: {} for g in _GROUP_DEFAULTS}
        unknown = [k for k in legacy if k not in _LEGACY_FIELDS]
        if unknown:
            raise TypeError(
                f"ProfileRequest got unexpected keyword argument(s): "
                f"{', '.join(sorted(unknown))}"
            )
        for key, value in legacy.items():
            group, attr = _LEGACY_FIELDS[key]
            if groups[group] is not None:
                raise ValueError(
                    f"{key}= conflicts with {group}=; set it on the "
                    f"{type(groups[group]).__name__} instead"
                )
            overrides[group][attr] = value
        if legacy:
            warnings.warn(
                f"flat ProfileRequest kwargs ({', '.join(sorted(legacy))}) are "
                f"deprecated; use the grouped execution=/resilience=/plan= "
                f"sub-configs",
                DeprecationWarning,
                stacklevel=2,
            )
        for group, factory in _GROUP_DEFAULTS.items():
            if groups[group] is None:
                groups[group] = factory(**overrides[group])
        self.execution: ExecutionConfig = groups["execution"]
        self.resilience: ResilienceConfig = groups["resilience"]
        self.plan: PlanConfig = groups["plan"]

    # -- legacy read surface ---------------------------------------------------
    # every pre-grouping reader (runner internals, tests, downstream code)
    # keeps working; these are silent — only *construction* with flat
    # kwargs warns

    @property
    def jobs(self) -> int:
        return self.execution.jobs

    @property
    def timeout(self) -> Optional[float]:
        return self.execution.timeout

    @property
    def retry(self) -> Optional[RetryPolicy]:
        return self.execution.retry

    @property
    def checkpoint(self) -> bool:
        return self.execution.checkpoint

    @property
    def checkpoint_dir(self) -> Optional[str]:
        return self.execution.checkpoint_dir

    @property
    def deadline_s(self) -> Optional[float]:
        return self.execution.deadline_s

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.resilience.faults

    @property
    def journal(self) -> Optional[str]:
        return self.resilience.journal

    @property
    def resume(self) -> Optional[str]:
        return self.resilience.resume

    @property
    def stop_after_runs(self) -> Optional[int]:
        return self.resilience.stop_after_runs

    @property
    def planner(self) -> str:
        return self.plan.planner

    @property
    def budget(self) -> Optional[int]:
        return self.plan.budget

    # -- value semantics -------------------------------------------------------

    def _key(self):
        return (
            self.runs,
            self.base_seed,
            self.coz_config,
            self.min_speedup_amounts,
            self.audit,
            self.execution,
            self.resilience,
            self.plan,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProfileRequest):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:
        return (
            f"ProfileRequest(runs={self.runs}, base_seed={self.base_seed}, "
            f"coz_config={self.coz_config!r}, "
            f"min_speedup_amounts={self.min_speedup_amounts}, "
            f"audit={self.audit}, execution={self.execution!r}, "
            f"resilience={self.resilience!r}, plan={self.plan!r})"
        )
