"""Statistics used by the evaluation harness.

Implemented from scratch (and cross-checked against scipy in the test
suite): Efron's bootstrap for standard errors and confidence intervals
(Table 3's ``± SE`` columns), the one-tailed Mann-Whitney U test (Table 3's
significance claim), and ordinary least squares with slope standard error
(Coz's profile ranking metric).
"""

from repro.stats.bootstrap import bootstrap_ci, bootstrap_se, speedup_stats
from repro.stats.mannwhitney import mann_whitney_u
from repro.stats.rankcorr import RankCorrelation, rank_correlation, top_k_disagreement
from repro.stats.regression import linear_regression

__all__ = [
    "bootstrap_ci",
    "bootstrap_se",
    "speedup_stats",
    "mann_whitney_u",
    "linear_regression",
    "RankCorrelation",
    "rank_correlation",
    "top_k_disagreement",
]
