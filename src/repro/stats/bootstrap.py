"""Efron's bootstrap.

The paper (Table 3) reports speedups as ``(t0 - t_opt) / t0`` with standard
error computed by Efron's bootstrap over ten runs of each configuration.
This module reproduces that computation deterministically (seeded resampling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import Callable, Sequence, Tuple


def _resample(rng: random.Random, data: Sequence[float]) -> list:
    n = len(data)
    return [data[rng.randrange(n)] for _ in range(n)]


def bootstrap_se(
    data: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = mean,
    n_boot: int = 1000,
    seed: int = 0,
) -> float:
    """Bootstrap standard error of ``statistic`` over ``data``."""
    if len(data) < 2:
        return 0.0
    rng = random.Random(seed)
    stats = [statistic(_resample(rng, data)) for _ in range(n_boot)]
    m = mean(stats)
    var = sum((s - m) ** 2 for s in stats) / (len(stats) - 1)
    return var ** 0.5


def bootstrap_pair_se(
    a: Sequence,
    b: Sequence,
    statistic: Callable[[Sequence, Sequence], "float | None"],
    n_boot: int = 1000,
    seed: int = 0,
) -> float:
    """Bootstrap SE of a two-sample statistic, resampling both groups.

    Each iteration resamples ``a`` then ``b`` (in that order — draw order is
    part of the deterministic contract) and evaluates ``statistic`` on the
    pair; iterations where it returns ``None`` (undefined, e.g. no progress
    visits in a resample) are skipped.  Returns 0.0 when both groups are
    singletons or fewer than two iterations produced a value.
    """
    if len(a) < 2 and len(b) < 2:
        return 0.0
    rng = random.Random(seed)
    vals = []
    for _ in range(n_boot):
        ra = _resample(rng, a)
        rb = _resample(rng, b)
        s = statistic(ra, rb)
        if s is not None:
            vals.append(s)
    if len(vals) < 2:
        return 0.0
    m = mean(vals)
    return (sum((v - m) ** 2 for v in vals) / (len(vals) - 1)) ** 0.5


def bootstrap_ci(
    data: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = mean,
    n_boot: int = 1000,
    alpha: float = 0.05,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``."""
    if not data:
        raise ValueError("empty data")
    if len(data) == 1:
        return (data[0], data[0])
    rng = random.Random(seed)
    stats = sorted(statistic(_resample(rng, data)) for _ in range(n_boot))
    lo_idx = int((alpha / 2) * n_boot)
    hi_idx = min(n_boot - 1, int((1 - alpha / 2) * n_boot))
    return stats[lo_idx], stats[hi_idx]


@dataclass
class SpeedupStats:
    """Speedup of an optimized configuration over a baseline (Table 3 row)."""

    speedup: float        # (t0 - t_opt) / t0, as a fraction
    se: float             # bootstrap standard error of the speedup
    p_value: float        # one-tailed Mann-Whitney U: t_opt < t0
    baseline_mean: float
    optimized_mean: float
    n_baseline: int
    n_optimized: int

    @property
    def speedup_pct(self) -> float:
        return 100.0 * self.speedup

    @property
    def se_pct(self) -> float:
        return 100.0 * self.se

    def significant(self, alpha: float = 0.001) -> bool:
        """Is the speedup significant at the paper's 99.9% level?"""
        return self.p_value < alpha

    def __str__(self) -> str:
        return f"{self.speedup_pct:+.2f}% ± {self.se_pct:.2f}% (p={self.p_value:.2g})"


def speedup_stats(
    baseline: Sequence[float],
    optimized: Sequence[float],
    n_boot: int = 1000,
    seed: int = 0,
) -> SpeedupStats:
    """Table 3's statistics: bootstrap SE of the speedup + MWU significance.

    ``baseline`` and ``optimized`` are execution times (any unit).  Speedup
    is ``(t0 - t_opt) / t0`` computed on means; the bootstrap resamples both
    groups independently, exactly as in the paper's methodology.
    """
    from repro.stats.mannwhitney import mann_whitney_u

    if not baseline or not optimized:
        raise ValueError("need at least one run per configuration")
    t0 = mean(baseline)
    topt = mean(optimized)
    point = (t0 - topt) / t0

    se = bootstrap_pair_se(
        baseline,
        optimized,
        lambda b, o: (mean(b) - mean(o)) / mean(b),
        n_boot=n_boot,
        seed=seed,
    )

    p = mann_whitney_u(optimized, baseline, alternative="less").p_value
    return SpeedupStats(
        speedup=point,
        se=se,
        p_value=p,
        baseline_mean=t0,
        optimized_mean=topt,
        n_baseline=len(baseline),
        n_optimized=len(optimized),
    )
