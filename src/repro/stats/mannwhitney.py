"""Mann-Whitney U test (Wilcoxon rank-sum), one- or two-tailed.

The paper uses the one-tailed Mann-Whitney U test at alpha = 0.001 to claim
that every optimization in Table 3 is statistically significant; the test is
distribution-free, which matters because execution times are not normal.

Implemented with the normal approximation including tie correction and a
continuity correction — adequate for the paper's n=10-per-group setting and
cross-checked against ``scipy.stats.mannwhitneyu`` in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass
class MWUResult:
    """Result of a Mann-Whitney U test."""

    u: float            # U statistic for the first sample
    p_value: float
    alternative: str    # 'less', 'greater', or 'two-sided'
    n1: int
    n2: int


def _rank_with_ties(values: Sequence[float]):
    """Average ranks (1-based) and the tie-correction term sum(t^3 - t)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    tie_term = 0.0
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        # indices i..j are tied; average rank over the run
        avg_rank = (i + j) / 2.0 + 1.0
        run = j - i + 1
        if run > 1:
            tie_term += run ** 3 - run
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks, tie_term


def _norm_sf(z: float) -> float:
    """Survival function of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(
    x: Sequence[float],
    y: Sequence[float],
    alternative: str = "two-sided",
) -> MWUResult:
    """Mann-Whitney U test of ``x`` vs ``y``.

    ``alternative='less'`` tests whether ``x`` is stochastically smaller than
    ``y`` (the paper's direction: optimized runtimes smaller than baseline).
    """
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"bad alternative: {alternative}")
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")

    combined = list(x) + list(y)
    ranks, tie_term = _rank_with_ties(combined)
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0  # U for x
    u2 = n1 * n2 - u1

    mu = n1 * n2 / 2.0
    n = n1 + n2
    tie_adjust = tie_term / (n * (n - 1)) if n > 1 else 0.0
    sigma_sq = (n1 * n2 / 12.0) * ((n + 1) - tie_adjust)
    sigma = math.sqrt(sigma_sq) if sigma_sq > 0 else 0.0

    def p_from(u_stat: float) -> float:
        """P(U >= u_stat) with continuity correction."""
        if sigma == 0.0:
            return 1.0 if u_stat <= mu else 0.0
        z = (u_stat - mu - 0.5) / sigma
        return _norm_sf(z)

    if alternative == "greater":
        p = p_from(u1)
    elif alternative == "less":
        p = p_from(u2)
    else:
        p = min(1.0, 2.0 * p_from(max(u1, u2)))
    return MWUResult(u=u1, p_value=p, alternative=alternative, n1=n1, n2=n2)
