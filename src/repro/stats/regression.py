"""Ordinary least squares, used for Coz's profile ranking.

Coz sorts causal-profile graphs by the slope of their linear regression
(§2, "Interpreting a causal profile"): steep positive slopes are promising
optimization targets, steep negative slopes indicate contention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass
class Regression:
    """OLS fit of y = intercept + slope * x."""

    slope: float
    intercept: float
    slope_se: float     # standard error of the slope
    r2: float
    n: int

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def linear_regression(xs: Sequence[float], ys: Sequence[float]) -> Regression:
    """Fit OLS; requires at least two distinct x values."""
    if len(xs) != len(ys):
        raise ValueError("x and y must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all x values identical")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = my - slope * mx

    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - my) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    if n > 2 and sxx > 0:
        sigma_sq = ss_res / (n - 2)
        slope_se = math.sqrt(sigma_sq / sxx)
    else:
        slope_se = 0.0
    return Regression(slope=slope, intercept=intercept, slope_se=slope_se, r2=r2, n=n)
