"""Rank correlation between profiler rankings.

The differential report asks "do gprof/perf/GAPP order the code the way the
causal profile does?"  Two classical measures, implemented from scratch like
the rest of :mod:`repro.stats`:

* **Spearman's rho** — Pearson correlation on ranks.  Computed via the
  distinct-rank identity ``rho = 1 - 6 * sum(d^2) / (n^3 - n)``, valid here
  because both inputs are orderings (every rank distinct by construction —
  ties inside a profiler's scores are already broken deterministically by
  the rankings themselves).
* **Kendall's tau-a** — ``(concordant - discordant) / (n choose 2)`` pairs.

Both are computed on the *overlap* of the two orderings' key sets: a
profiler can only be judged on code it actually ranked, and the top-k
disagreement lists in the differential report cover what it missed
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def _positions(order: Sequence[str]) -> Dict[str, int]:
    pos: Dict[str, int] = {}
    for i, key in enumerate(order):
        if key not in pos:  # first occurrence wins, duplicates ignored
            pos[key] = i
    return pos


@dataclass(frozen=True)
class RankCorrelation:
    """Spearman/Kendall agreement between two orderings on their overlap."""

    overlap: int
    spearman: Optional[float]  # None when overlap < 2 (undefined)
    kendall: Optional[float]


def rank_correlation(
    order_a: Sequence[str], order_b: Sequence[str]
) -> RankCorrelation:
    """Agreement between two ranked key lists (best first).

    Keys present in only one ordering are dropped; the survivors are
    re-ranked 0..n-1 within each ordering, preserving relative order, so the
    statistics compare *relative* placement on shared keys.
    """
    pos_b = _positions(order_b)
    shared = [k for k in _positions(order_a) if k in pos_b]
    n = len(shared)
    if n < 2:
        return RankCorrelation(overlap=n, spearman=None, kendall=None)

    # rank of each shared key within the restricted orderings
    rank_a = {k: i for i, k in enumerate(shared)}  # shared is in a-order
    rank_b = {
        k: i for i, k in enumerate(sorted(shared, key=lambda k: pos_b[k]))
    }

    d2 = sum((rank_a[k] - rank_b[k]) ** 2 for k in shared)
    rho = 1.0 - (6.0 * d2) / (n * (n * n - 1))

    # b-ranks visited in a-order: concordant pairs appear ascending
    seq = [rank_b[k] for k in shared]
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if seq[j] > seq[i]:
                concordant += 1
            else:
                discordant += 1
    tau = (concordant - discordant) / (n * (n - 1) / 2)
    return RankCorrelation(overlap=n, spearman=rho, kendall=tau)


def top_k_disagreement(
    order_a: Sequence[str], order_b: Sequence[str], k: int
) -> List[str]:
    """Keys in ``order_a``'s top-k that are absent from ``order_b``'s top-k."""
    top_b = set(order_b[:k])
    return [key for key in order_a[:k] if key not in top_b]
