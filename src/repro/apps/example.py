"""The example.cpp program of Figure 1.

Two threads run busy loops of ~6.7 and ~6.4 time units.  The paper uses this
program to show that a conventional profiler's "a() is 51% of runtime, b()
is 49%" answer is misleading: optimizing ``a`` completely only speeds the
program up by 4.5% (``b`` becomes the critical path), and optimizing ``b``
has *no* effect (``a`` is the critical path).

Scaling note: the paper profiles one 13-second execution and aggregates over
many executions.  The simulator instead runs the a/b pair as long-lived
threads that repeat the loop round after round (joined by a barrier, which
has the same timing topology as Figure 1's spawn/join), with a throughput
progress point once per round.  Each round keeps the paper's 6.7 : 6.4 ratio
at 1/1000 scale (6.7 ms), so the causal profile of a round is identical in
shape to the paper's end-to-end profile:

* line ``a`` (example.cpp:2): program speedup grows ~1:1 until ``b`` becomes
  the critical path, then flattens at ~4.5%;
* line ``b`` (example.cpp:5): flat at ~0% for every virtual speedup.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import BarrierWait, Join, Progress, Spawn, Work, call
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Barrier

LINE_A = line("example.cpp:2")
LINE_B = line("example.cpp:5")
LINE_MAIN = line("example.cpp:10")

#: the paper's ratio: a() ~6.7s, b() ~6.4s, scaled 1:1000
A_NS = MS(6.7)
B_NS = MS(6.4)


def build_example(
    rounds: int = 300,
    a_ns: int = A_NS,
    b_ns: int = B_NS,
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build the Figure 1 example program.

    ``line_speedups`` scales the cost of ``LINE_A``/``LINE_B`` — e.g.
    ``{LINE_A: 0.0}`` is "optimize a() away entirely", the experiment whose
    outcome the paper bounds at 4.5%.
    """
    a_cost = scaled(a_ns, line_factor(line_speedups, LINE_A))
    b_cost = scaled(b_ns, line_factor(line_speedups, LINE_B))

    def make(seed: int = 0) -> Program:
        def main(t):
            barrier = Barrier(2, "round-barrier")

            def fn_a(t2):
                for _ in range(rounds):
                    yield from call("a", _loop(LINE_A, a_cost))
                    serial = yield BarrierWait(barrier)
                    if serial:
                        yield Progress("round")

            def fn_b(t2):
                for _ in range(rounds):
                    yield from call("b", _loop(LINE_B, b_cost))
                    serial = yield BarrierWait(barrier)
                    if serial:
                        yield Progress("round")

            ta = yield Spawn(fn_a, "a_thread")
            tb = yield Spawn(fn_b, "b_thread")
            yield Work(LINE_MAIN, 0)
            yield Join(ta)
            yield Join(tb)

        config = SimConfig(
            seed=seed,
            # keep the paper's sampling:work ratio despite the 1:1000 time
            # scale: a 6.7 ms round yields ~27 samples at a 250 us period,
            # so delay batches stay much smaller than a round
            sample_period_ns=US(250),
            quantum_ns=MS(1),
        )
        return Program(main, name="example", config=config, debug_size_kb=16)

    return AppSpec(
        name="example",
        build=make,
        progress_points=[ProgressPoint("round")],
        primary_progress="round",
        scope=Scope.only("example.cpp"),
        lines={"a": LINE_A, "b": LINE_B, "main": LINE_MAIN},
    )


def _loop(src: SourceLine, total_ns: int):
    """The volatile counting loop: all time on one source line."""
    if total_ns > 0:
        yield Work(src, total_ns)


def expected_profile_point(pct: int, a_ns: int = A_NS, b_ns: int = B_NS) -> float:
    """Analytical ground truth for virtually speeding up line ``a`` by pct%.

    The round critical path is ``max(a * (1 - pct/100), b)``; the program
    speedup is its relative change.  Rises linearly, flattens at ~4.5%.
    """
    t0 = max(a_ns, b_ns)
    t = max(a_ns * (1 - pct / 100.0), b_ns)
    return (t0 - t) / t0


def optimal_speedup_fraction(a_ns: int = A_NS, b_ns: int = B_NS) -> float:
    """Ground truth: program speedup from eliminating a() entirely (~4.5%)."""
    return expected_profile_point(100, a_ns, b_ns)
