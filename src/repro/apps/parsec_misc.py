"""The remaining PARSEC benchmarks (Table 4).

For each of the seven applications the paper lists the progress point it
inserted and the top optimization opportunity Coz found.  The models here
are deliberately small — a handful of threads looping over work whose line
weights make the table's "Top Optimization" line the dominant serial
opportunity — because Table 4 only claims *which line ranks first*, not a
quantified speedup.

Each app registers its progress point as a **breakpoint** progress point on
the paper's ``file:line`` (exercising Coz's second progress-point
mechanism, §3.3): the engine counts every time execution reaches that line,
no source modification needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.spec import AppSpec
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import Join, Spawn, Work
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line


@dataclass(frozen=True)
class Table4Entry:
    """One row of Table 4."""

    name: str
    progress_point: SourceLine
    top_line: SourceLine
    #: other lines that burn time but matter less (line, weight)
    minor_lines: Tuple[Tuple[SourceLine, float], ...]
    #: weight of the top line (fraction of per-item work)
    top_weight: float


TABLE4: List[Table4Entry] = [
    Table4Entry(
        "bodytrack",
        line("TicketDispenser.h:106"),
        line("ParticleFilter.h:262"),
        ((line("TrackingModel.cpp:205"), 0.18), (line("FlexImage.h:120"), 0.12)),
        0.50,
    ),
    Table4Entry(
        "canneal",
        line("annealer_thread.cpp:87"),
        line("netlist_elem.cpp:82"),
        ((line("annealer_thread.cpp:120"), 0.22), (line("rng.cpp:45"), 0.08)),
        0.55,
    ),
    Table4Entry(
        "facesim",
        line("taskQDistCommon.c:109"),
        line("MATRIX_3X3.h:136"),
        ((line("FACE_EXAMPLE.h:320"), 0.20), (line("DIAGONAL_MATRIX_3X3.h:80"), 0.10)),
        0.52,
    ),
    Table4Entry(
        "freqmine",
        line("fp_tree.cpp:383"),
        line("fp_tree.cpp:301"),
        ((line("fp_tree.cpp:511"), 0.25), (line("data.cpp:92"), 0.10)),
        0.48,
    ),
    Table4Entry(
        "raytrace",
        line("BinnedAllDimsSaveSpace.cxx:98"),
        line("RTEmulatedSSE.hxx:784"),
        ((line("RTTriangle.hxx:210"), 0.24), (line("BVH.hxx:512"), 0.12)),
        0.47,
    ),
    Table4Entry(
        "vips",
        line("threadgroup.c:360"),
        line("im_Lab2LabQ.c:98"),
        ((line("im_LabQ2disp.c:130"), 0.20), (line("region.c:77"), 0.12)),
        0.51,
    ),
    Table4Entry(
        "x264",
        line("encoder.c:1165"),
        line("common.c:687"),
        ((line("macroblock.c:940"), 0.25), (line("ratecontrol.c:310"), 0.10)),
        0.45,
    ),
]

TABLE4_BY_NAME: Dict[str, Table4Entry] = {e.name: e for e in TABLE4}


def build_parsec_app(
    name: str,
    n_threads: int = 4,
    n_items: int = 600,
    item_ns: int = MS(0.5),
) -> AppSpec:
    """Build one of the Table 4 PARSEC models by name."""
    entry = TABLE4_BY_NAME.get(name)
    if entry is None:
        raise ValueError(f"not a Table 4 benchmark: {name!r}")

    minor_total = sum(w for _, w in entry.minor_lines)
    other_weight = max(0.0, 1.0 - entry.top_weight - minor_total)
    other_line = line(f"{entry.progress_point.file}:1")

    def make(seed: int = 0) -> Program:
        def main(t):
            def worker(t2, wid: int):
                for _ in range(n_items // n_threads):
                    yield Work(entry.top_line, int(item_ns * entry.top_weight))
                    for src, w in entry.minor_lines:
                        yield Work(src, int(item_ns * w))
                    yield Work(other_line, int(item_ns * other_weight))
                    # reaching the progress-point line bumps the breakpoint
                    # counter; no Progress op needed
                    yield Work(entry.progress_point, US(1))

            workers = []
            for wid in range(n_threads):
                def body(t2, wid=wid):
                    yield from worker(t2, wid)
                workers.append((yield Spawn(body, f"{name}-{wid}")))
            for w in workers:
                yield Join(w)

        config = SimConfig(
            seed=seed, cores=n_threads + 1,
            sample_period_ns=US(250), quantum_ns=MS(0.5),
        )
        return Program(main, name=name, config=config, debug_size_kb=128)

    progress = ProgressPoint(
        name=str(entry.progress_point), kind="breakpoint", line=entry.progress_point
    )
    return AppSpec(
        name=name,
        build=make,
        progress_points=[progress],
        primary_progress=progress.name,
        scope=Scope.all_main(),
        lines={"top": entry.top_line, "progress": entry.progress_point},
    )
