"""Simulated applications: the paper's evaluation workloads.

Every app module exposes a builder returning an :class:`AppSpec`; the spec
carries a fresh-:class:`~repro.sim.program.Program` factory plus the
progress points and scope used in the paper's case study.  Builders accept
an ``optimized`` flag (and app-specific knobs) to produce the paper's
post-optimization variants, and a ``line_speedups`` mapping to scale the
cost of specific lines (the §4.3 accuracy methodology).
"""

from repro.apps.spec import AppSpec

__all__ = ["AppSpec"]
