"""Simulated applications: the paper's evaluation workloads.

Every app module exposes a builder returning an :class:`AppSpec`; the spec
carries a fresh-:class:`~repro.sim.program.Program` factory plus the
progress points and scope used in the paper's case study.  Builders accept
an ``optimized`` flag (and app-specific knobs) to produce the paper's
post-optimization variants, and a ``line_speedups`` mapping to scale the
cost of specific lines (the §4.3 accuracy methodology).

All bundled apps are addressable by name through :mod:`repro.apps.registry`
(re-exported here): ``build("ferret", optimized=True)`` returns a fresh
spec stamped with a picklable :class:`AppRef`, which is what lets the
parallel profiling executor rebuild apps inside worker processes.
"""

from repro.apps import registry
from repro.apps.registry import (
    AppEntry,
    AppRef,
    UnknownAppError,
    build,
    entries,
    get,
    names,
    register,
    unregister,
)
from repro.apps.spec import AppSpec

__all__ = [
    "AppSpec",
    "AppEntry",
    "AppRef",
    "UnknownAppError",
    "registry",
    "register",
    "unregister",
    "get",
    "build",
    "names",
    "entries",
]
