"""First-class application registry: the bundled apps, addressable by name.

Historically the CLI kept a private ``name -> (builder, has_optimized)``
tuple table.  The registry promotes that table to a public API with three
jobs:

* **discovery** — :func:`names` / :func:`entries` enumerate every bundled
  app (and any third-party app that called :func:`register`);
* **construction** — :func:`build` produces a fresh
  :class:`~repro.apps.spec.AppSpec` from a name, an ``optimized`` flag, and
  builder keyword arguments;
* **provenance** — every spec built here is stamped with a picklable
  :class:`AppRef` so *worker processes can rebuild the app by name*.  App
  specs carry closures (their ``build`` factories) which do not pickle; an
  ``AppRef`` is just ``(name, optimized, kwargs)`` and crosses process
  boundaries freely.  This is what makes the parallel profiling executor
  (:mod:`repro.harness.parallel`) possible.

Third-party apps register themselves with::

    from repro.apps import registry

    def build_myapp(optimized=False, **knobs) -> AppSpec: ...

    registry.register("myapp", build_myapp, has_optimized=True)

Builders registered as module-level callables work with any multiprocessing
start method; lambdas/closures still work under ``fork`` (the default on
Linux) because workers inherit the registry state.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Tuple

from repro.apps.spec import AppSpec


class UnknownAppError(KeyError):
    """Raised when a name is not in the registry."""

    def __init__(self, name: str, available: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return f"unknown app {self.name!r}; available: {', '.join(self.available)}"


@dataclass(frozen=True)
class AppEntry:
    """One registered application."""

    name: str
    builder: Callable[..., AppSpec]
    has_optimized: bool = False
    description: str = ""


@dataclass(frozen=True)
class AppRef:
    """A picklable reference to a registry-buildable app.

    ``kwargs`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    ref is hashable; values must themselves be picklable for the ref to
    cross process boundaries (all bundled-app knobs are).
    """

    name: str
    optimized: bool = False
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> AppSpec:
        """Rebuild the referenced spec (used on the worker side)."""
        return build(self.name, optimized=self.optimized, **dict(self.kwargs))


_REGISTRY: Dict[str, AppEntry] = {}

#: process-global memo of built specs, keyed by :class:`AppRef`.  Specs are
#: stateless recipes (closure factories + metadata), so one instance can
#: serve every run of a session — this is what lets a warm pool worker skip
#: the per-task rebuild.  Invalidated whenever the name is re-registered.
_SPEC_CACHE: Dict[AppRef, AppSpec] = {}
_SPEC_CACHE_CAP = 64


def cached_build(ref: AppRef) -> AppSpec:
    """Build ``ref`` once per process and memoize the spec.

    Used by hot paths that construct the same app for every run (pool
    workers, the serial executor).  Callers must treat the returned spec as
    shared and immutable; anyone who mutates specs should call
    :meth:`AppRef.build` for a private instance instead.
    """
    try:
        spec = _SPEC_CACHE.get(ref)
    except TypeError:  # unhashable kwarg values: memoization cannot apply
        return ref.build()
    if spec is None:
        spec = ref.build()
        while len(_SPEC_CACHE) >= _SPEC_CACHE_CAP:
            _SPEC_CACHE.pop(next(iter(_SPEC_CACHE)))
        _SPEC_CACHE[ref] = spec
    return spec


def _invalidate_specs(name: str) -> None:
    for ref in [r for r in _SPEC_CACHE if r.name == name]:
        del _SPEC_CACHE[ref]


def clear_spec_cache() -> None:
    """Drop every memoized spec (tests)."""
    _SPEC_CACHE.clear()


def register(
    name: str,
    builder: Callable[..., AppSpec],
    has_optimized: bool = False,
    description: str = "",
    replace: bool = False,
) -> AppEntry:
    """Register an app builder under ``name``.

    ``builder()`` must return a fresh :class:`AppSpec`; when
    ``has_optimized`` it must also accept ``optimized=True``.  Registering
    an existing name raises unless ``replace=True``.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"app {name!r} is already registered (use replace=True)")
    entry = AppEntry(
        name=name, builder=builder, has_optimized=has_optimized,
        description=description,
    )
    _REGISTRY[name] = entry
    _invalidate_specs(name)
    return entry


def unregister(name: str) -> None:
    """Remove an app from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)
    _invalidate_specs(name)


def get(name: str) -> AppEntry:
    """Look up one entry, raising :class:`UnknownAppError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAppError(name, names()) from None


def names() -> List[str]:
    """Sorted names of every registered app."""
    return sorted(_REGISTRY)


def entries() -> List[AppEntry]:
    """Every registered entry, sorted by name."""
    return [_REGISTRY[n] for n in names()]


def build(name: str, optimized: bool = False, **kwargs: Any) -> AppSpec:
    """Build a fresh spec by name, stamped with its :class:`AppRef`.

    ``kwargs`` are forwarded to the registered builder (e.g.
    ``build("ferret", n_queries=300)``).  ``optimized=True`` selects the
    app's post-optimization variant and raises :class:`ValueError` for apps
    without one.
    """
    entry = get(name)
    if optimized and not entry.has_optimized:
        raise ValueError(f"{name} has no optimized variant")
    spec = entry.builder(optimized=True, **kwargs) if optimized else entry.builder(**kwargs)
    spec.registry_ref = AppRef(
        name=name, optimized=optimized, kwargs=tuple(sorted(kwargs.items())),
    )
    return spec


# -- bundled apps ------------------------------------------------------------------

def _dedup_builder(optimized: bool = False, **kwargs: Any) -> AppSpec:
    from repro.apps.dedup import build_dedup

    return build_dedup("xor" if optimized else "original", **kwargs)


def _ferret_builder(optimized: bool = False, **kwargs: Any) -> AppSpec:
    from repro.apps.ferret import OPTIMIZED_THREADS, build_ferret

    kwargs.setdefault("threads", OPTIMIZED_THREADS if optimized else (8, 8, 8, 8))
    return build_ferret(**kwargs)


def _register_builtin() -> None:
    from repro.apps.blackscholes import build_blackscholes
    from repro.apps.example import build_example
    from repro.apps.fluidanimate import build_fluidanimate
    from repro.apps.memcached import build_memcached
    from repro.apps.parsec_misc import TABLE4, build_parsec_app
    from repro.apps.sqlite import build_sqlite
    from repro.apps.streamcluster import build_streamcluster
    from repro.apps.swaptions import build_swaptions

    register("example", build_example, description="Figure 1 two-thread example")
    register("dedup", _dedup_builder, has_optimized=True,
             description="dedup pipeline (§4.2.1)")
    register("ferret", _ferret_builder, has_optimized=True,
             description="ferret image-search pipeline (§4.2.2)")
    register("sqlite", build_sqlite, has_optimized=True,
             description="SQLite indirect-call hotspot (§4.2.3)")
    register("memcached", build_memcached, has_optimized=True,
             description="Memcached CAS contention (§4.2.4)")
    register("fluidanimate", build_fluidanimate, has_optimized=True,
             description="fluidanimate custom barrier (§4.2.5)")
    register("streamcluster", build_streamcluster, has_optimized=True,
             description="streamcluster barrier (§4.2.5)")
    register("blackscholes", build_blackscholes, has_optimized=True,
             description="blackscholes unrolled math (§4.2.6)")
    register("swaptions", build_swaptions, has_optimized=True,
             description="swaptions HJM kernel (§4.2.7)")
    for entry in TABLE4:
        register(entry.name, partial(build_parsec_app, entry.name),
                 description="Table 4 PARSEC model")


_register_builtin()
