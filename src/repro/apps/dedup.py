"""The dedup benchmark (§4.2.1): parallel file compression via deduplication.

Three pipeline stages — fine-grained fragmentation, hash computation (with
the shared chained hash table), and compression — connected by bounded
channels, each stage served by a small thread pool.  The progress point sits
immediately after a block finishes compression (``encoder.c:189``).

The hash stage looks every chunk digest up in a *real*
:class:`~repro.apps.hashtable.HashTable`; the chain traversal burns
simulated time on ``hashtable.c:217`` (the top of the while loop in
``hashtable_search``), one unit per link, exactly the line Coz flagged.

Timing calibration: with the original hash function the hash stage is the
bottleneck and is ~9% slower than the compression stage, so fixing the hash
function yields the paper's ~9% end-to-end speedup even though the chain
traversal itself gets ~96% faster (the §4.3 accuracy study).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.apps.hashtable import HASH_VARIANTS, HashTable, make_keys
from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import Join, Progress, Spawn, Work, call
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Channel

#: the chain-traversal loop in hashtable_search (the paper's finding)
LINE_HASH_LOOP = line("hashtable.c:217")
#: fragmentation inner loop
LINE_FRAGMENT = line("encoder.c:102")
#: hash computation (SHA1) of a chunk
LINE_SHA = line("hashcomp.c:45")
#: compression loop
LINE_COMPRESS = line("encoder.c:175")
#: hash/index computation before the chain walk
LINE_HASH_BASE = line("hashtable.c:210")
#: the progress point: a block finished compressing
LINE_PROGRESS = line("encoder.c:189")

PROGRESS = "block-compressed"


def build_dedup(
    variant: str = "original",
    n_blocks: int = 3000,
    threads_per_stage: int = 2,
    n_keys: int = 7000,
    buckets: int = 4096,
    fragment_ns: int = US(300),
    sha_ns: int = US(60),
    search_base_ns: int = US(40),
    search_iter_ns: int = US(3.55),
    compress_ns: int = US(400),
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build dedup with the given hash-function variant.

    ``variant``: ``original`` (the paper's 'before'), ``noshift`` (mid), or
    ``xor`` (the paper's fix; ~9% faster end to end).

    The per-iteration chain cost is calibrated so the original hash stage
    runs ~9% over the compression stage: mean chain ~96 links x 3.55 us/link
    + overheads ~ 440 us vs compression's 400 us + queue costs.
    """
    if variant not in HASH_VARIANTS:
        raise ValueError(f"unknown dedup variant: {variant}")
    ls = line_speedups

    def make(seed: int = 0) -> Program:
        def main(t):
            rng = random.Random(seed ^ 0xDED0)
            keys = make_keys(n_keys, seed=7)  # fixed corpus, like an input file
            table = HashTable(buckets=buckets, hash_fn=HASH_VARIANTS[variant])
            for k in keys:
                table.insert(k)

            frag_to_hash = Channel(32, "frag->hash")
            hash_to_comp = Channel(32, "hash->comp")

            def fragment_worker(t2):
                while True:
                    item = yield from frag_to_hash_feed.get()
                    if item is Channel.CLOSED:
                        break
                    yield from call(
                        "fragment",
                        _work(LINE_FRAGMENT, fragment_ns, ls),
                    )
                    yield from frag_to_hash.put(item)

            def hash_worker(t2, wid):
                wrng = random.Random((seed << 4) ^ wid)
                while True:
                    item = yield from frag_to_hash.get()
                    if item is Channel.CLOSED:
                        break
                    key = keys[wrng.randrange(len(keys))]
                    yield from call("sha1", _work(LINE_SHA, sha_ns, ls))
                    _value, links = table.search(key)
                    yield from call(
                        "hashtable_search",
                        _search(links, search_base_ns, search_iter_ns, ls),
                    )
                    yield from hash_to_comp.put(item)

            def compress_worker(t2):
                while True:
                    item = yield from hash_to_comp.get()
                    if item is Channel.CLOSED:
                        break
                    yield from call("compress", _work(LINE_COMPRESS, compress_ns, ls))
                    yield Work(LINE_PROGRESS, 0)
                    yield Progress(PROGRESS)

            # the input feed: fragmentation stage pulls raw blocks
            frag_to_hash_feed = Channel(32, "input")

            workers = []
            for i in range(threads_per_stage):
                workers.append((yield Spawn(fragment_worker, f"frag-{i}")))
            for i in range(threads_per_stage):
                def hash_body(t2, wid=i):
                    yield from hash_worker(t2, wid)
                workers.append((yield Spawn(hash_body, f"hash-{i}")))
            for i in range(threads_per_stage):
                workers.append((yield Spawn(compress_worker, f"comp-{i}")))

            for blk in range(n_blocks):
                yield from frag_to_hash_feed.put(blk)
            yield from frag_to_hash_feed.close()
            # wait for the fragment stage to drain, then close downstream
            for w in workers[:threads_per_stage]:
                yield Join(w)
            yield from frag_to_hash.close()
            for w in workers[threads_per_stage : 2 * threads_per_stage]:
                yield Join(w)
            yield from hash_to_comp.close()
            for w in workers[2 * threads_per_stage :]:
                yield Join(w)

        config = SimConfig(
            seed=seed,
            cores=8,
            sample_period_ns=US(250),
            quantum_ns=MS(1),
        )
        return Program(main, name=f"dedup-{variant}", config=config, debug_size_kb=160)

    return AppSpec(
        name="dedup",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("hashtable.c", "hashcomp.c", "encoder.c"),
        lines={
            "hash-loop": LINE_HASH_LOOP,
            "fragment": LINE_FRAGMENT,
            "sha": LINE_SHA,
            "compress": LINE_COMPRESS,
        },
    )


def _work(src: SourceLine, ns: int, line_speedups) -> object:
    yield Work(src, scaled(ns, line_factor(line_speedups, src)))


def _search(links: int, base_ns: int, iter_ns: int, line_speedups):
    """hashtable_search: hash/index computation plus the chain-walk loop."""
    if base_ns:
        yield Work(LINE_HASH_BASE, scaled(base_ns, line_factor(line_speedups, LINE_HASH_BASE)))
    total = links * iter_ns
    yield Work(LINE_HASH_LOOP, scaled(total, line_factor(line_speedups, LINE_HASH_LOOP)))
