"""The SQLite case study (§4.2.3, Figure 7).

The paper's workload: many threads, each rapidly inserting rows into its own
private table — theoretically independent, so any slowdown is a scalability
bottleneck in the engine itself.  Coz identified the *function prologues* of
three tiny hot functions reached through indirect calls:

* ``sqlite3MemSize``   — size of an allocation (under the allocator mutex),
* ``pthreadMutexLeave`` — SQLite's mutex-release wrapper,
* ``pcache1Fetch``     — next page from the shared page cache.

Each does almost no work, so the indirect-call overhead dominates; replacing
the indirect calls with direct calls sped SQLite up by 25.6% ± 1.0%.
Figure 7a also shows the *contention* signature: beyond ~25% virtual
speedup the predicted effect turns negative, because these functions run
inside (or at the boundary of) shared critical sections.  perf, by contrast,
attributes ~0.15% of samples to them (Figure 7b).

The model: per-insert btree/VDBE work in ordinary SQLite lines, plus calls
to the three hot functions where the *prologue line* carries the
indirect-call overhead.  ``pcache1Fetch`` and ``sqlite3MemSize`` execute
under shared mutexes (page cache and allocator); ``pthreadMutexLeave`` is
the unlock path of those mutexes.  The ``optimized`` variant shrinks the
prologue cost to the direct-call cost.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import Join, Lock, Progress, Spawn, Unlock, Work, call
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Mutex

# the three prologue lines Coz identifies (Figure 7a)
LINE_MEMSIZE = line("sqlite3.c:17225")       # sqlite3MemSize prologue
LINE_MUTEX_LEAVE = line("sqlite3.c:23456")   # pthreadMutexLeave prologue
LINE_PCACHE_FETCH = line("sqlite3.c:44895")  # pcache1Fetch prologue

# ordinary engine work
LINE_VDBE = line("sqlite3.c:78000")          # bytecode interpreter loop
LINE_BTREE = line("sqlite3.c:64100")         # b-tree insert
LINE_PCACHE_BODY = line("sqlite3.c:44920")   # page-cache lookup proper
LINE_BENCH = line("insert-bench.c:60")       # the benchmark's insert loop

PROGRESS = "row-inserted"

#: indirect-call prologue cost (the thing the optimization removes) and the
#: tiny function bodies.  One simulated call stands for a burst of calls the
#: real engine makes per insert, keeping the simulator op count low.
INDIRECT_NS = 500
DIRECT_NS = 120
BODY_NS = 90


def build_sqlite(
    optimized: bool = False,
    threads: int = 10,
    inserts_per_thread: int = 1500,
    vdbe_ns: int = US(10),
    btree_ns: int = US(10),
    pcache_body_ns: int = US(1.2),
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build the SQLite insert benchmark.

    ``optimized=True`` replaces the indirect calls with direct calls
    (the paper's 7-line change), shrinking the three prologue costs.
    """
    prologue_ns = DIRECT_NS if optimized else INDIRECT_NS
    ls = line_speedups

    def hot(src: SourceLine):
        """One call burst to a tiny function: prologue (indirect call) + body.
        The prologue line carries the whole cost — the line Coz identifies."""
        cost = scaled(prologue_ns, line_factor(ls, src)) + BODY_NS
        return Work(src, cost)

    def make(seed: int = 0) -> Program:
        def main(t):
            pcache_mutex = Mutex("pcache1")

            def worker(t2, wid: int):
                wrng = random.Random((seed << 6) ^ wid)
                for _ in range(inserts_per_thread):
                    # parse/plan + VDBE execution for the INSERT
                    yield Work(LINE_BENCH, US(0.3))
                    yield from call("sqlite3VdbeExec", _work(LINE_VDBE, _jit(wrng, vdbe_ns)))
                    # Fetch pages from the shared page cache.  The critical
                    # section is what serializes the "independent" threads:
                    # real page-cache work plus the three tiny hot functions
                    # whose *prologues* carry the indirect-call overhead.
                    yield Lock(pcache_mutex, LINE_PCACHE_FETCH)
                    yield Work(LINE_PCACHE_BODY, _jit(wrng, pcache_body_ns))
                    yield hot(LINE_PCACHE_FETCH)
                    yield hot(LINE_MEMSIZE)
                    yield hot(LINE_MUTEX_LEAVE)
                    yield Unlock(pcache_mutex, LINE_MUTEX_LEAVE)
                    # b-tree insert into the private table
                    yield from call("sqlite3BtreeInsert", _work(LINE_BTREE, _jit(wrng, btree_ns)))
                    yield Progress(PROGRESS)

            workers = []
            for wid in range(threads):
                def body(t2, wid=wid):
                    yield from worker(t2, wid)
                workers.append((yield Spawn(body, f"sqlite-{wid}")))
            for w in workers:
                yield Join(w)

        config = SimConfig(
            seed=seed,
            cores=threads + 1,
            sample_period_ns=US(250),
            quantum_ns=MS(1),
            lock_cost_ns=60,
        )
        return Program(main, name="sqlite", config=config, debug_size_kb=2048)

    return AppSpec(
        name="sqlite",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("sqlite3.c", "insert-bench.c"),
        lines={
            "memsize": LINE_MEMSIZE,
            "mutex-leave": LINE_MUTEX_LEAVE,
            "pcache-fetch": LINE_PCACHE_FETCH,
            "vdbe": LINE_VDBE,
            "btree": LINE_BTREE,
        },
    )


def _work(src: SourceLine, ns: int):
    yield Work(src, ns)


def _work2(src: SourceLine, prologue_ns: int, body_ns: int):
    yield Work(src, prologue_ns)
    if body_ns:
        yield Work(src, body_ns)


def _jit(rng: random.Random, ns: int, jitter: float = 0.1) -> int:
    return max(0, int(ns * (1.0 + jitter * (2 * rng.random() - 1.0))))
