"""The Memcached case study (§4.2.6).

The paper's benchmark (ported from the Redis benchmark) spawns 50 clients
collectively issuing SET/GET requests; the progress point sits at the end of
``process_command``.  Coz flagged several *contention* lines, one at the
start of ``item_remove``: memcached protects items with a static array of
striped locks indexed by a hash of the key, so touching one item contends
with unrelated items that hash to the same stripe.  Reference counts are
updated atomically anyway, so the lock can simply be removed — a -6/+2 line
change worth 9.39% ± 0.95%.

The model: worker threads drain a request channel fed by client threads.
Handling a request means protocol parsing, hash lookup, and ``item_remove``
— which, in the original, takes the stripe's :class:`~repro.sim.sync.
SpinMutex` (memcached's item locks spin briefly before blocking) around the
refcount update.  The optimized variant updates the refcount atomically with
no lock.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import IO, Join, Progress, Spawn, Work, call
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Channel, SpinMutex

#: the start of item_remove: the lock acquisition Coz flags as contended
LINE_ITEM_REMOVE = line("items.c:479")
#: the refcount update inside the (removable) lock
LINE_REFCOUNT = line("items.c:484")
LINE_PARSE = line("memcached.c:3829")      # protocol parsing
LINE_ASSOC = line("assoc.c:120")           # hash table lookup
LINE_RESPOND = line("memcached.c:4012")    # response construction

PROGRESS = "command-done"


def build_memcached(
    optimized: bool = False,
    n_clients: int = 50,
    n_workers: int = 8,
    n_requests: int = 20_000,
    n_stripes: int = 4,
    parse_ns: int = US(2.0),
    assoc_ns: int = US(1.6),
    refcount_ns: int = US(1.8),
    respond_ns: int = US(1.6),
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build the memcached benchmark.

    ``optimized=True`` removes the striped item lock from ``item_remove``
    and updates the reference count atomically (the paper's fix).
    """
    ls = line_speedups

    def make(seed: int = 0) -> Program:
        def main(t):
            requests = Channel(64, "requests")
            stripes = [
                SpinMutex(LINE_ITEM_REMOVE, spin_iter_ns=US(0.7), name=f"item-lock-{i}")
                for i in range(n_stripes)
            ]

            def client(t2, cid: int):
                crng = random.Random((seed << 12) ^ cid)
                per_client = n_requests // n_clients
                for _ in range(per_client):
                    yield IO(US(crng.randrange(5, 30)))  # think time / network
                    yield from requests.put(crng.randrange(1 << 30))
                return None

            def worker(t2, wid: int):
                wrng = random.Random((seed << 13) ^ wid)
                while True:
                    key = yield from requests.get()
                    if key is Channel.CLOSED:
                        break
                    yield from call("process_command", _handle(key, wrng))

            def _handle(key: int, wrng: random.Random):
                yield Work(LINE_PARSE, scaled(_jit(wrng, parse_ns), line_factor(ls, LINE_PARSE)))
                yield Work(LINE_ASSOC, scaled(_jit(wrng, assoc_ns), line_factor(ls, LINE_ASSOC)))
                # item_remove: decrement the item's reference count
                stripe = stripes[key % n_stripes]
                ref_cost = scaled(_jit(wrng, refcount_ns), line_factor(ls, LINE_REFCOUNT))
                if optimized:
                    # atomic decrement; no lock needed (the paper's fix)
                    yield Work(LINE_REFCOUNT, ref_cost)
                else:
                    yield from stripe.lock(LINE_ITEM_REMOVE)
                    yield Work(LINE_REFCOUNT, ref_cost)
                    yield from stripe.unlock(LINE_ITEM_REMOVE)
                yield Work(LINE_RESPOND, scaled(_jit(wrng, respond_ns), line_factor(ls, LINE_RESPOND)))
                yield Progress(PROGRESS)

            clients = []
            for cid in range(n_clients):
                def cbody(t2, cid=cid):
                    yield from client(t2, cid)
                clients.append((yield Spawn(cbody, f"client-{cid}")))
            workers = []
            for wid in range(n_workers):
                def wbody(t2, wid=wid):
                    yield from worker(t2, wid)
                workers.append((yield Spawn(wbody, f"worker-{wid}")))
            for c in clients:
                yield Join(c)
            yield from requests.close()
            for w in workers:
                yield Join(w)

        config = SimConfig(
            seed=seed,
            cores=n_workers + 4,  # workers + a few cores for clients
            sample_period_ns=US(250),
            quantum_ns=MS(0.5),
            interference_coeff=0.3,
        )
        return Program(main, name="memcached", config=config, debug_size_kb=320)

    return AppSpec(
        name="memcached",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("items.c", "memcached.c", "assoc.c"),
        lines={
            "item-remove": LINE_ITEM_REMOVE,
            "refcount": LINE_REFCOUNT,
            "parse": LINE_PARSE,
            "assoc": LINE_ASSOC,
            "respond": LINE_RESPOND,
        },
    )


def _jit(rng: random.Random, ns: int, jitter: float = 0.15) -> int:
    return max(0, int(ns * (1.0 + jitter * (2 * rng.random() - 1.0))))
