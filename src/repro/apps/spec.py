"""Application specification shared by all simulated workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.progress import LatencySpec, ProgressPoint
from repro.sim.engine import SimConfig
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine


@dataclass
class AppSpec:
    """Everything a harness needs to profile and evaluate one application."""

    #: application name (matches the paper's tables)
    name: str
    #: build a fresh Program; ``seed`` drives any workload randomness
    build: Callable[[int], Program]
    #: progress points to register with the profiler
    progress_points: List[ProgressPoint]
    #: the progress point used for throughput numbers
    primary_progress: str
    #: profiling scope used in the paper's case study
    scope: Scope
    #: named lines of interest ("spin", "hash-loop", ...) for tests/benches
    lines: Dict[str, SourceLine] = field(default_factory=dict)
    #: latency begin/end pairs, if the app defines any
    latency_specs: List[LatencySpec] = field(default_factory=list)
    #: machine configuration this app is meant to run on
    sim_config: Optional[SimConfig] = None
    #: provenance stamp set by :func:`repro.apps.registry.build`: a picklable
    #: :class:`~repro.apps.registry.AppRef` that lets worker processes rebuild
    #: this spec by name (``build`` itself is a closure and does not pickle)
    registry_ref: Optional[object] = None

    def line(self, key: str) -> SourceLine:
        return self.lines[key]


def scaled(ns: int, factor: float) -> int:
    """Scale a nominal duration by a line-speedup factor (>=0)."""
    if factor == 1.0:
        return ns
    return max(0, int(round(ns * factor)))


def line_factor(line_speedups: Optional[Dict[SourceLine, float]], line: SourceLine) -> float:
    """Cost multiplier for ``line`` (1.0 = unchanged, 0.5 = 2x faster)."""
    if not line_speedups:
        return 1.0
    return line_speedups.get(line, 1.0)
