"""The fluidanimate benchmark (§4.2.4, Figure 8).

An incompressible-fluid simulation: worker threads execute eight concurrent
phases per frame, separated by a barrier.  The progress point fires each
time all threads complete a phase.  Coz found *contention* — a downward-
sloping causal profile — on two lines of ``parsec_barrier.cpp``, the custom
busy-wait barrier, immediately before a loop that hammers
``pthread_mutex_trylock``.  Replacing the custom barrier with the stock
``pthread_barrier`` (a one-line change) sped fluidanimate up by
37.5% ± 0.56%.

The model: 8 workers, memory-bound physics work with per-thread imbalance
(the reason early arrivals spin), and either the PARSEC-style
:class:`~repro.sim.sync.SpinBarrier` (original) or a blocking
:class:`~repro.sim.sync.Barrier` (optimized).  Spinning threads raise the
engine's interference level, slowing the laggards' memory-bound work — the
cache-coherence feedback that makes the custom barrier so expensive.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.phases import build_phased_main, phased_sim_config
from repro.apps.spec import AppSpec
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line

#: the two barrier lines Coz flags (Figure 8)
LINE_SPIN = line("parsec_barrier.cpp:163")
LINE_SPIN2 = line("parsec_barrier.cpp:87")

# physics kernels
LINE_DENSITY = line("pthreads.cpp:502")
LINE_FORCE = line("pthreads.cpp:651")
LINE_ADVANCE = line("pthreads.cpp:730")

PROGRESS = "phase-done"


def build_fluidanimate(
    optimized: bool = False,
    n_threads: int = 8,
    n_phases: int = 400,
    work_ns: int = MS(0.9),
    imbalance: float = 0.18,
    interference_coeff: float = 0.62,
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build fluidanimate; ``optimized=True`` swaps in a pthread barrier."""

    def make(seed: int = 0) -> Program:
        main = build_phased_main(
            n_threads=n_threads,
            n_phases=n_phases,
            work_lines=[LINE_DENSITY, LINE_FORCE, LINE_ADVANCE],
            work_ns=work_ns,
            imbalance=imbalance,
            use_spin_barrier=not optimized,
            spin_line=LINE_SPIN,
            progress_name=PROGRESS,
            seed=seed,
            line_speedups=line_speedups,
        )
        return Program(
            main,
            name="fluidanimate",
            config=phased_sim_config(n_threads, seed, interference_coeff),
            debug_size_kb=96,
        )

    return AppSpec(
        name="fluidanimate",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("parsec_barrier.cpp", "pthreads.cpp"),
        lines={
            "spin": LINE_SPIN,
            "density": LINE_DENSITY,
            "force": LINE_FORCE,
            "advance": LINE_ADVANCE,
        },
    )
