"""dedup's hash table, for real (§4.2.1, Figure 4).

PARSEC's dedup indexes data chunks by their SHA1 digest in a chained hash
table.  The paper found that dedup's hash function mapped keys to just 2.3%
of the available buckets; removing its "bit shifting procedure" raised
utilization to 54.4%, and replacing the function with a bitwise XOR of
32-bit chunks of the key raised it to 82.0%, cutting the average chain from
76.7 to 2.09 entries and speeding dedup up by ~9%.

This module implements the actual data structure and the three hash
functions so Figure 4 (collisions per bucket before / mid / after) can be
regenerated from first principles:

* :func:`hash_original` — sum of the key's bytes, then a bit-shift
  "improvement" that collapses the already-narrow range;
* :func:`hash_noshift` — the same sum without the shift;
* :func:`hash_xor` — XOR of 32-bit chunks (the paper's fix).

With SHA1-like keys (uniform random 20-byte digests) the byte sum is
binomially concentrated around its mean, which is exactly why the original
function is so bad — no randomness in the *keys* can rescue a range-
collapsing hash.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: PARSEC dedup digest length (SHA1)
KEY_LEN = 20

HashFn = Callable[[bytes], int]


def hash_original(key: bytes) -> int:
    """dedup's original hash: byte sum, then the bit-shifting 'improvement'.

    The sum of 20 uniform bytes concentrates near 2550 (range ~0..5100); the
    right shift then collapses that narrow band to a handful of values.
    """
    h = sum(key)
    return h >> 5


def hash_noshift(key: bytes) -> int:
    """The mid-optimization variant: byte sum without the shift."""
    return sum(key)


def hash_xor(key: bytes) -> int:
    """The paper's fix: bitwise XOR of 32-bit chunks of the key."""
    h = 0
    for i in range(0, len(key), 4):
        chunk = int.from_bytes(key[i : i + 4].ljust(4, b"\0"), "little")
        h ^= chunk
    return h


HASH_VARIANTS: Dict[str, HashFn] = {
    "original": hash_original,
    "noshift": hash_noshift,
    "xor": hash_xor,
}


class HashTable:
    """A chained hash table with a pluggable hash function.

    ``search`` returns the number of chain links traversed — the loop-trip
    count of ``hashtable.c:217``, which the dedup workload model turns into
    simulated time on that line.
    """

    def __init__(self, buckets: int = 4096, hash_fn: HashFn = hash_original) -> None:
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.n_buckets = buckets
        self.hash_fn = hash_fn
        self.buckets: List[List[Tuple[bytes, object]]] = [[] for _ in range(buckets)]
        self.size = 0

    def _index(self, key: bytes) -> int:
        return self.hash_fn(key) % self.n_buckets

    def insert(self, key: bytes, value: object = None) -> int:
        """Insert (or update); returns chain links traversed."""
        bucket = self.buckets[self._index(key)]
        for i, (k, _v) in enumerate(bucket):
            if k == key:
                bucket[i] = (key, value)
                return i + 1
        bucket.append((key, value))
        self.size += 1
        return len(bucket)

    def search(self, key: bytes) -> Tuple[Optional[object], int]:
        """Lookup; returns (value-or-None, chain links traversed)."""
        bucket = self.buckets[self._index(key)]
        for i, (k, v) in enumerate(bucket):
            if k == key:
                return v, i + 1
        return None, len(bucket)

    # -- Figure 4 statistics ---------------------------------------------------

    def utilization(self) -> float:
        """Fraction of buckets holding at least one entry."""
        used = sum(1 for b in self.buckets if b)
        return used / self.n_buckets

    def mean_chain_length(self) -> float:
        """Average entries per *utilized* bucket (Figure 4's dashed line)."""
        used = [len(b) for b in self.buckets if b]
        if not used:
            return 0.0
        return sum(used) / len(used)

    def chain_histogram(self) -> Counter:
        """bucket-chain-length -> number of buckets (Figure 4's bars)."""
        return Counter(len(b) for b in self.buckets if b)


def make_keys(n: int, seed: int = 0) -> List[bytes]:
    """``n`` distinct SHA1-like digests (uniform random 20-byte keys)."""
    rng = random.Random(seed)
    keys = set()
    while len(keys) < n:
        keys.add(bytes(rng.getrandbits(8) for _ in range(KEY_LEN)))
    return sorted(keys)


@dataclass
class HashStats:
    """Figure 4 summary for one hash-function variant."""

    variant: str
    utilization: float
    mean_chain: float
    histogram: Counter

    def __str__(self) -> str:
        return (
            f"{self.variant:<9} utilization={100 * self.utilization:5.1f}% "
            f"mean-collisions/bucket={self.mean_chain:6.2f}"
        )


def figure4_stats(
    n_keys: int = 7000,
    buckets: int = 4096,
    seed: int = 0,
    variants: Iterable[str] = ("original", "noshift", "xor"),
) -> List[HashStats]:
    """Build the table under each hash function and collect Figure 4 stats.

    Defaults chosen to match the paper's reported numbers: ~7000 distinct
    digests over 4096 buckets give ~2% / ~54% / ~82% utilization and mean
    chains of ~77 / ~3 / ~2.1 for original / noshift / xor.
    """
    keys = make_keys(n_keys, seed=seed)
    out = []
    for variant in variants:
        table = HashTable(buckets=buckets, hash_fn=HASH_VARIANTS[variant])
        for k in keys:
            table.insert(k)
        out.append(
            HashStats(
                variant=variant,
                utilization=table.utilization(),
                mean_chain=table.mean_chain_length(),
                histogram=table.chain_histogram(),
            )
        )
    return out
