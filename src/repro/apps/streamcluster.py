"""The streamcluster benchmark (§4.2.5): online clustering of streaming data.

Same structure as fluidanimate — phased workers behind PARSEC's custom
busy-wait barrier — but with heavier imbalance and more barrier crossings,
which is why replacing the barrier was worth 68.4% ± 1.12% here versus
fluidanimate's 37.5%.  Coz also flagged a call to a random number generator
whose replacement with a lightweight PRNG yielded a further ~2%.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.apps.phases import build_phased_main, phased_sim_config
from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.ops import Work
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line

LINE_SPIN = line("parsec_barrier.cpp:163")
LINE_GAIN = line("streamcluster.cpp:985")   # pgain distance computation
LINE_SHUFFLE = line("streamcluster.cpp:640")
LINE_RNG = line("streamcluster.cpp:1120")   # the heavyweight RNG call

PROGRESS = "phase-done"

#: heavyweight libc RNG vs the lightweight replacement (~2% end to end)
RNG_HEAVY_NS = US(28)
RNG_LIGHT_NS = US(3)


def build_streamcluster(
    optimized: bool = False,
    light_rng: Optional[bool] = None,
    n_threads: int = 8,
    n_phases: int = 400,
    work_ns: int = MS(0.55),
    imbalance: float = 0.45,
    interference_coeff: float = 1.05,
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build streamcluster.

    ``optimized=True`` swaps in the pthread barrier (the 68.4% fix);
    ``light_rng`` controls the RNG replacement independently (defaults to
    following ``optimized``).
    """
    if light_rng is None:
        light_rng = optimized
    rng_ns = RNG_LIGHT_NS if light_rng else RNG_HEAVY_NS

    def extra(wid: int, wrng: random.Random):
        dur = scaled(rng_ns, line_factor(line_speedups, LINE_RNG))
        yield Work(LINE_RNG, dur)

    def make(seed: int = 0) -> Program:
        main = build_phased_main(
            n_threads=n_threads,
            n_phases=n_phases,
            work_lines=[LINE_GAIN, LINE_SHUFFLE],
            work_ns=work_ns,
            imbalance=imbalance,
            use_spin_barrier=not optimized,
            spin_line=LINE_SPIN,
            progress_name=PROGRESS,
            seed=seed,
            line_speedups=line_speedups,
            extra_per_phase=extra,
        )
        return Program(
            main,
            name="streamcluster",
            config=phased_sim_config(n_threads, seed, interference_coeff),
            debug_size_kb=64,
        )

    return AppSpec(
        name="streamcluster",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("parsec_barrier.cpp", "streamcluster.cpp"),
        lines={
            "spin": LINE_SPIN,
            "gain": LINE_GAIN,
            "shuffle": LINE_SHUFFLE,
            "rng": LINE_RNG,
        },
    )
