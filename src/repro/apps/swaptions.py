"""The swaptions benchmark (§4.2.8).

A Monte Carlo swaption pricer.  The progress point fires after each
iteration of the worker threads' main loop (``HJM_Securities.cpp:99``).
Coz identified three nested loops over a large multidimensional array:

* a loop zeroing consecutive values (replaceable by ``memset``),
* a loop filling the array from a distribution function (left alone),
* an irregular-order traversal (fixed by reordering the loops).

Reordering and the memset replacement gave 15.8% ± 1.10%.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import Join, Progress, Spawn, Work
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line

LINE_ZERO = line("HJM_SimPath_Forward_Blocking.cpp:72")      # zeroing loop
LINE_FILL = line("HJM_SimPath_Forward_Blocking.cpp:96")      # RNG fill loop
LINE_TRAVERSE = line("HJM_SimPath_Forward_Blocking.cpp:139")  # irregular order
LINE_PRICE = line("HJM_Securities.cpp:91")                    # pricing proper
LINE_PROGRESS_SRC = line("HJM_Securities.cpp:99")

PROGRESS = "swaption-iter"

#: memset is ~10x faster than the scalar zeroing loop
ZERO_OPT_FACTOR = 0.1
#: cache-friendly traversal order is ~2x faster
TRAVERSE_OPT_FACTOR = 0.5


def build_swaptions(
    optimized: bool = False,
    n_threads: int = 8,
    n_iters: int = 400,
    zero_ns: int = US(180),
    fill_ns: int = US(300),
    traverse_ns: int = US(260),
    price_ns: int = US(1100),
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build swaptions; ``optimized=True`` applies memset + loop reorder."""
    ls = line_speedups
    z = int(zero_ns * (ZERO_OPT_FACTOR if optimized else 1.0))
    tr = int(traverse_ns * (TRAVERSE_OPT_FACTOR if optimized else 1.0))

    def make(seed: int = 0) -> Program:
        def main(t):
            def worker(t2, wid: int):
                for _ in range(n_iters):
                    yield Work(LINE_ZERO, scaled(z, line_factor(ls, LINE_ZERO)))
                    yield Work(LINE_FILL, scaled(fill_ns, line_factor(ls, LINE_FILL)))
                    yield Work(LINE_TRAVERSE, scaled(tr, line_factor(ls, LINE_TRAVERSE)))
                    yield Work(LINE_PRICE, scaled(price_ns, line_factor(ls, LINE_PRICE)))
                    yield Work(LINE_PROGRESS_SRC, 0)
                    yield Progress(PROGRESS)

            workers = []
            for wid in range(n_threads):
                def body(t2, wid=wid):
                    yield from worker(t2, wid)
                workers.append((yield Spawn(body, f"swap-{wid}")))
            for w in workers:
                yield Join(w)

        config = SimConfig(
            seed=seed, cores=n_threads + 1,
            sample_period_ns=US(250), quantum_ns=MS(0.5),
        )
        return Program(main, name="swaptions", config=config, debug_size_kb=32)

    return AppSpec(
        name="swaptions",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("HJM_SimPath_Forward_Blocking.cpp", "HJM_Securities.cpp"),
        lines={
            "zero": LINE_ZERO,
            "fill": LINE_FILL,
            "traverse": LINE_TRAVERSE,
            "price": LINE_PRICE,
        },
    )


def expected_speedup() -> float:
    """Analytic end-to-end speedup of the paper's optimization."""
    base = 180 + 300 + 260 + 1100
    opt = 18 + 300 + 130 + 1100
    return (base - opt) / base
