"""Shared scaffolding for barrier-phased PARSEC workloads.

fluidanimate and streamcluster share the same pathology (§4.2.4-4.2.5):
worker threads compute in phases separated by a *custom busy-wait barrier*
(``parsec_barrier.cpp``) whose spin loop hammers ``pthread_mutex_trylock``.
Spinning wastes CPU and generates cache-coherence traffic that slows the
still-working threads — so the barrier both shows up as a contention
signature in the causal profile (downward slope, Figure 8) and costs a lot
of real time.  Replacing it with a plain ``pthread_barrier`` was a one-line
change worth 37.5% (fluidanimate) and 68.4% (streamcluster).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, List, Optional

from repro.apps.spec import line_factor, scaled
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import BarrierWait, Join, Progress, Spawn, Work
from repro.sim.source import SourceLine
from repro.sim.sync import Barrier, SpinBarrier


def build_phased_main(
    n_threads: int,
    n_phases: int,
    work_lines: List[SourceLine],
    work_ns: int,
    imbalance: float,
    use_spin_barrier: bool,
    spin_line: SourceLine,
    progress_name: str,
    seed: int,
    line_speedups: Optional[Dict[SourceLine, float]] = None,
    extra_per_phase: Optional[Callable[[int, random.Random], Generator]] = None,
    spin_iter_ns: int = US(2),
):
    """Build a main generator: N workers x P phases, barrier per phase.

    Per phase each worker does ``work_ns`` (+/- ``imbalance`` jitter) of
    *memory-bound* work spread over ``work_lines``, optionally runs
    ``extra_per_phase`` (e.g. streamcluster's RNG), then waits at the
    barrier.  The serial thread fires the progress point once per phase.
    """

    def main(t):
        if use_spin_barrier:
            barrier = SpinBarrier(n_threads, spin_line, spin_iter_ns=spin_iter_ns)
            wait = barrier.wait
        else:
            pbarrier = Barrier(n_threads)

            def wait():
                serial = yield BarrierWait(pbarrier)
                return serial

        def worker(t2, wid: int):
            wrng = random.Random((seed << 10) ^ wid)
            for _phase in range(n_phases):
                jitter = 1.0 + imbalance * (2 * wrng.random() - 1.0)
                for src in work_lines:
                    dur = scaled(
                        int(work_ns * jitter / len(work_lines)),
                        line_factor(line_speedups, src),
                    )
                    yield Work(src, dur, memory_bound=True)
                if extra_per_phase is not None:
                    yield from extra_per_phase(wid, wrng)
                serial = yield from wait()
                if serial:
                    yield Progress(progress_name)

        workers = []
        for wid in range(n_threads):
            def body(t2, wid=wid):
                yield from worker(t2, wid)
            workers.append((yield Spawn(body, f"worker-{wid}")))
        for w in workers:
            yield Join(w)

    return main


def phased_sim_config(n_threads: int, seed: int, interference_coeff: float) -> SimConfig:
    return SimConfig(
        seed=seed,
        cores=n_threads + 1,
        sample_period_ns=US(250),
        quantum_ns=MS(0.5),
        interference_coeff=interference_coeff,
    )
