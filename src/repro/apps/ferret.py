"""The ferret benchmark (§4.2.2): content-based image similarity search.

A six-stage pipeline: input -> segmentation -> feature extraction ->
indexing -> ranking -> output.  The four middle stages have thread pools;
input and output are single threads (Figure 5).  The paper gives each middle
stage an equal share of threads; Coz showed that the queries in the indexing
(``ferret-parallel.c:320``) and ranking (``:358``) stages plus image
segmentation (``:255``) dominate, while feature extraction barely matters.
Re-allocating the same total threads as 20/1/22/21 produced a 21.27% ±
0.17% speedup, and Coz's profile *predicted* 21.4% for the 27% line-320
throughput increase — the paper's flagship accuracy result (§4.3).

Fidelity notes:

* stage work executes in out-of-scope "library" lines (``cass/*.c``,
  ``image/*.c``) called from the in-scope ``ferret-parallel.c`` callsites,
  so Coz's callchain attribution (§3.4.2) is what makes lines 255/320/358
  appear in the profile — exactly as in the real system;
* the simulator halves the paper's scale (8 threads per middle stage rather
  than 16, service times scaled to match); the optimized allocation
  10/1/11/10 keeps the same total, like the paper's 20/1/22/21.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import IO, Join, Progress, Spawn, Work, call
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Channel

# in-scope callsites (the lines the paper's Figure 6 shows)
LINE_SEG = line("ferret-parallel.c:255")     # call to image_segment
LINE_EXTRACT = line("ferret-parallel.c:280")  # call to feature extraction
LINE_INDEX = line("ferret-parallel.c:320")    # call to cass_table_query (indexing)
LINE_RANK = line("ferret-parallel.c:358")     # call to cass_table_query (ranking)
LINE_OUT = line("ferret-parallel.c:398")      # output stage, the progress point

# out-of-scope library code actually burning the time
_LIB_SEG = line("image/segment.c:310")
_LIB_EXTRACT = line("image/extract.c:88")
_LIB_INDEX = line("cass/query.c:1502")
_LIB_RANK = line("cass/query.c:1502")

PROGRESS = "query-done"

#: per-item service times; ratios chosen so the paper's optimal allocation
#: (proportional to 20:1:22:21) applies
SEG_NS = MS(3.0)
EXTRACT_NS = US(150)
INDEX_NS = MS(3.3)
RANK_NS = MS(3.15)

#: the paper's original allocation, halved: equal threads per middle stage
DEFAULT_THREADS: Sequence[int] = (8, 8, 8, 8)
#: the paper's tuned allocation (20/1/22/21), halved
OPTIMIZED_THREADS: Sequence[int] = (10, 1, 11, 10)


def build_ferret(
    threads: Sequence[int] = DEFAULT_THREADS,
    n_queries: int = 1200,
    line_speedups: Optional[Dict[SourceLine, float]] = None,
    work_jitter: float = 0.15,
) -> AppSpec:
    """Build ferret with the given (seg, extract, index, rank) pool sizes."""
    if len(threads) != 4 or any(n < 1 for n in threads):
        raise ValueError("threads must be four positive pool sizes")
    ls = line_speedups
    stage_info = [
        ("segment", LINE_SEG, _LIB_SEG, "image_segment", SEG_NS, threads[0]),
        ("extract", LINE_EXTRACT, _LIB_EXTRACT, "feature_extract", EXTRACT_NS, threads[1]),
        ("index", LINE_INDEX, _LIB_INDEX, "cass_table_query", INDEX_NS, threads[2]),
        ("rank", LINE_RANK, _LIB_RANK, "cass_table_query", RANK_NS, threads[3]),
    ]

    def make(seed: int = 0) -> Program:
        def main(t):
            rng = random.Random(seed ^ 0xFE33E7)
            # queues between the six stages
            queues = [Channel(20, f"q{i}") for i in range(5)]

            def input_thread(t2):
                for q in range(n_queries):
                    yield IO(US(10))  # read the next image
                    yield from queues[0].put(q)
                yield from queues[0].close()

            def make_stage_worker(idx, callsite, lib_line, func, service_ns, wid):
                wrng = random.Random((seed << 8) ^ (idx << 4) ^ wid)

                def worker(t2):
                    inq, outq = queues[idx], queues[idx + 1]
                    while True:
                        item = yield from inq.get(callsite)
                        if item is Channel.CLOSED:
                            break
                        base = scaled(service_ns, line_factor(ls, callsite))
                        jitter = 1.0 + work_jitter * (2 * wrng.random() - 1.0)
                        dur = max(0, int(base * jitter))
                        yield from call(func, _lib_work(lib_line, dur), callsite)
                        yield from outq.put(item, callsite)

                return worker

            def output_thread(t2):
                done = 0
                while True:
                    item = yield from queues[4].get(LINE_OUT)
                    if item is Channel.CLOSED:
                        break
                    yield Work(LINE_OUT, US(15))
                    yield Progress(PROGRESS)
                    done += 1

            workers = []
            tin = yield Spawn(input_thread, "input")
            for idx, (name, callsite, lib, func, service, n) in enumerate(stage_info):
                for wid in range(n):
                    worker = make_stage_worker(idx, callsite, lib, func, service, wid)
                    workers.append((yield Spawn(worker, f"{name}-{wid}")))
            tout = yield Spawn(output_thread, "output")

            yield Join(tin)
            # close each queue when the upstream pool has fully drained
            offset = 0
            for idx, (name, _cs, _lib, _fn, _svc, n) in enumerate(stage_info):
                for w in workers[offset : offset + n]:
                    yield Join(w)
                offset += n
                yield from queues[idx + 1].close()
            yield Join(tout)

        total_threads = sum(threads) + 3
        config = SimConfig(
            seed=seed,
            cores=total_threads,  # the paper's 64-core box never starves ferret
            sample_period_ns=US(250),
            quantum_ns=MS(1),
        )
        return Program(main, name="ferret", config=config, debug_size_kb=512)

    return AppSpec(
        name="ferret",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("ferret-parallel.c"),
        lines={
            "segment": LINE_SEG,
            "extract": LINE_EXTRACT,
            "index": LINE_INDEX,
            "rank": LINE_RANK,
            "output": LINE_OUT,
        },
    )


def _lib_work(src: SourceLine, ns: int):
    if ns > 0:
        yield Work(src, ns)


def expected_throughput_period(threads: Sequence[int]) -> float:
    """Analytic bottleneck period (ns/item) for a thread allocation."""
    services = (SEG_NS, EXTRACT_NS, INDEX_NS, RANK_NS)
    return max(s / n for s, n in zip(services, threads))
