"""The blackscholes benchmark (§4.2.7).

Embarrassingly parallel option pricing: each thread solves the
Black-Scholes PDE for a slice of the portfolio, with a progress point after
each round of the iterative approximation (``blackscholes.c:259``).  Coz
identified many lines in ``CNDF`` and ``BlkSchlsEqEuroNoDiv`` with small
individual impact; manually eliminating common subexpressions and fusing 61
piecewise calculations into 4 expressions gave 2.56% ± 0.41%.

The model splits each round's numeric work across the CNDF/BlkSchls lines;
the optimized variant shrinks exactly those lines by the calibrated factor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.spec import AppSpec, line_factor, scaled
from repro.core.progress import ProgressPoint
from repro.sim.clock import MS, US
from repro.sim.engine import SimConfig
from repro.sim.ops import BarrierWait, Join, Progress, Spawn, Work
from repro.sim.program import Program
from repro.sim.source import Scope, SourceLine, line
from repro.sim.sync import Barrier

LINE_CNDF1 = line("blackscholes.c:110")
LINE_CNDF2 = line("blackscholes.c:128")
LINE_BLK1 = line("blackscholes.c:211")
LINE_BLK2 = line("blackscholes.c:225")
LINE_LOOP = line("blackscholes.c:253")
LINE_PROGRESS_SRC = line("blackscholes.c:259")

PROGRESS = "round-done"

#: the numeric kernel lines and their per-round share of work
KERNEL_LINES = (LINE_CNDF1, LINE_CNDF2, LINE_BLK1, LINE_BLK2)

#: fusing 61 piecewise calculations into 4 shrinks the kernel lines by ~4.6%,
#: which is ~2.56% of the whole round (the paper's end-to-end result)
OPTIMIZED_KERNEL_FACTOR = 0.954


def build_blackscholes(
    optimized: bool = False,
    n_threads: int = 8,
    n_rounds: int = 300,
    round_ns: int = MS(1.6),
    kernel_share: float = 0.56,
    line_speedups: Optional[Dict[SourceLine, float]] = None,
) -> AppSpec:
    """Build blackscholes; ``optimized=True`` applies the CSE/fusion fix."""
    ls = line_speedups
    factor = OPTIMIZED_KERNEL_FACTOR if optimized else 1.0
    kernel_ns = int(round_ns * kernel_share * factor / len(KERNEL_LINES))
    loop_ns = int(round_ns * (1.0 - kernel_share))

    def make(seed: int = 0) -> Program:
        def main(t):
            barrier = Barrier(n_threads)

            def worker(t2, wid: int):
                for _ in range(n_rounds):
                    for src in KERNEL_LINES:
                        yield Work(src, scaled(kernel_ns, line_factor(ls, src)))
                    yield Work(LINE_LOOP, scaled(loop_ns, line_factor(ls, LINE_LOOP)))
                    serial = yield BarrierWait(barrier)
                    if serial:
                        yield Work(LINE_PROGRESS_SRC, 0)
                        yield Progress(PROGRESS)

            workers = []
            for wid in range(n_threads):
                def body(t2, wid=wid):
                    yield from worker(t2, wid)
                workers.append((yield Spawn(body, f"bs-{wid}")))
            for w in workers:
                yield Join(w)

        config = SimConfig(
            seed=seed, cores=n_threads + 1,
            sample_period_ns=US(250), quantum_ns=MS(0.5),
        )
        return Program(main, name="blackscholes", config=config, debug_size_kb=24)

    return AppSpec(
        name="blackscholes",
        build=make,
        progress_points=[ProgressPoint(PROGRESS)],
        primary_progress=PROGRESS,
        scope=Scope.only("blackscholes.c"),
        lines={
            "cndf1": LINE_CNDF1,
            "cndf2": LINE_CNDF2,
            "blk1": LINE_BLK1,
            "blk2": LINE_BLK2,
            "loop": LINE_LOOP,
        },
    )
