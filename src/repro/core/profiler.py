"""The causal profiler (§2-3): experiment coordination on the simulator.

:class:`CausalProfiler` is the simulator-world equivalent of Coz's
LD_PRELOADed runtime plus its dedicated profiler thread:

* it turns on per-thread IP sampling and charges the corresponding overhead
  (startup debug-info processing, per-thread perf_event setup, per-sample
  processing cost) so the Figure 9 overhead study is meaningful;
* it runs performance experiments: pick a line (the first in-scope sampled
  line, or a fixed line for focused/planner-directed studies), pick a
  virtual speedup (0% half the time), insert delays via the counter
  protocol for a fixed duration, log progress-point deltas, cool off,
  repeat.  The line/speedup selection policy itself lives in
  :class:`repro.plan.schedule.RunScheduler` — the profiler executes
  whatever schedule its configuration (free or planner-directed) implies;
* if an experiment sees fewer than ``min_visits`` progress visits, the
  experiment length doubles for the rest of the run (§2).

One profiler instance profiles one run; merge the resulting
:class:`~repro.core.profile_data.ProfileData` across runs for denser
profiles (the harness does this).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from collections import Counter

from repro.core.config import CozConfig
from repro.core.experiment import ExperimentResult
from repro.core.profile_data import ProfileData, RunInfo
from repro.core.progress import LatencySpec, ProgressPoint, ProgressTracker
from repro.core.speedup import DelayEngine
from repro.plan.schedule import RunScheduler
from bisect import bisect_left

from repro.sim.hooks import HookAction, ProfilerHook
from repro.sim.sampler import SEG_AFFINE, SEG_LITERAL, Sample
from repro.sim.source import SourceLine
from repro.sim.thread import VThread

_WAIT = "wait"          # waiting to select a line for the next experiment
_RUNNING = "running"    # an experiment is in flight
_COOLOFF = "cooloff"    # draining samples between experiments


class _ProfTimer:
    """A pending profiler timer as a named, serializable callable.

    The experiment-end and cooloff timers used to be lambdas, which a
    checkpoint snapshot (repro.sim.snapshot) cannot carry across the
    capture/restore boundary.  This object is behaviourally identical but
    exposes ``snapshot_ref()`` so the recorder can serialize the pending
    timer and the profiler can rebuild it on restore.
    """

    __slots__ = ("profiler", "kind", "token")

    #: experiment-duration elapsed -> _end_experiment(token)
    END = "end"
    #: cooloff elapsed -> _leave_cooloff(token)
    COOL = "cool"

    def __init__(self, profiler: "CausalProfiler", kind: str, token: int) -> None:
        self.profiler = profiler
        self.kind = kind
        self.token = token

    def __call__(self) -> None:
        if self.kind == _ProfTimer.END:
            self.profiler._end_experiment(self.token)
        else:
            self.profiler._leave_cooloff(self.token)

    def snapshot_ref(self):
        return (self.kind, self.token)


class CausalProfiler(ProfilerHook):
    """Coz as a simulator hook."""

    wants_samples = True
    #: aggregate straight from columnar segment buffers (repro.sim.sampler):
    #: under the columnar pipeline `on_samples` never materializes Sample
    #: tuples — attribution, tracker counts, and experiment hits are all
    #: computed per run-length segment
    accepts_columnar = True

    def __init__(
        self,
        config: Optional[CozConfig] = None,
        progress_points: Sequence[ProgressPoint] = (),
        latency_specs: Sequence[LatencySpec] = (),
        auditor=None,
    ) -> None:
        self.cfg = config or CozConfig()
        self.cfg.validate()
        self.tracker = ProgressTracker(list(progress_points))
        self.latency_specs = list(latency_specs)
        self.auditor = auditor
        if self.auditor is None and self.cfg.audit:
            from repro.core.audit import DelayAuditor

            self.auditor = DelayAuditor()
        self.delays = DelayEngine(
            minimal=self.cfg.minimal_delays,
            jitter_ns=self.cfg.nanosleep_jitter_ns,
            seed=self.cfg.seed ^ 0x5EED,
            auditor=self.auditor,
        )
        self.rng = random.Random(self.cfg.seed)
        # line/speedup selection policy (repro.plan.schedule); shares the
        # profiler's RNG so free runs keep the historical draw order
        self.scheduler = RunScheduler(self.cfg, self.rng)
        self.data = ProfileData()
        # hot-path bindings (see the before_block/before_wake_op trampolines)
        self.before_block = self.delays.reconcile
        self.before_wake_op = self.delays.reconcile

        self.engine = None
        self.state = _WAIT
        self.experiment_duration = self.cfg.experiment_duration_ns
        self._experiment_token = 0
        self._run_delay_ns = 0

        # per-run sampling totals (attributed lines), for the phase correction
        self.line_samples: Counter = Counter()

        # current experiment state
        self._line: Optional[SourceLine] = None
        self._pct: int = 0
        self._delay_ns: int = 0
        self._start_ns: int = 0
        self._counts_before = {}
        self._s_obs = 0

    # ------------------------------------------------------------------ lifecycle

    def attach(self, engine) -> None:
        self.engine = engine

    def on_run_start(self, engine) -> None:
        if self.cfg.enable_sampling:
            engine.enable_sampling()
        for line in self.tracker.breakpoint_lines:
            engine.watch_line(line)
        # startup: process debug information for the whole binary (§3.1)
        program = getattr(engine, "program", None)
        if program is not None and engine.main_thread is not None:
            cost = program.debug_size_kb * self.cfg.startup_cost_per_kb_ns
            engine.main_thread.pending_cpu_ns += cost

    def on_run_end(self, engine) -> None:
        if self.state == _RUNNING:
            # program ended mid-experiment; Coz discards the partial result,
            # but its delays are already in the timeline — leaving them off
            # the books would overcount total_effective_ns (the T of eq. 8)
            count = self.delays.end()
            self._run_delay_ns += count * self._delay_ns
        # nanosleep overshoot that was inserted but never compensated is real
        # timeline delay beyond the required count x delay bookkeeping;
        # threads pause concurrently, so the critical-path (largest
        # per-thread) share is what stretched the run
        self._run_delay_ns += self.delays.max_outstanding_excess_ns(engine.threads)
        self.data.add_run(
            RunInfo(
                runtime_ns=engine.now,
                total_delay_ns=self._run_delay_ns,
                line_samples=self.line_samples,
            )
        )
        if self.auditor is not None:
            self.auditor.on_profiler_run_end(self, engine)

    def on_thread_created(self, thread: VThread, parent: Optional[VThread]) -> None:
        self.delays.on_thread_created(thread, parent)
        if self.cfg.enable_sampling:
            # starting perf_event sampling in the new thread costs CPU (§4.4)
            thread.pending_cpu_ns += self.cfg.thread_attach_cost_ns

    # ------------------------------------------------------------------ samples

    def on_samples(self, thread: VThread, samples) -> HookAction:
        if type(samples) is not list:
            # columnar pipeline: aggregate per segment, never per sample
            return self._on_samples_columnar(thread, samples)
        cfg = self.cfg
        cost = len(samples) * cfg.sample_process_cost_ns

        hits = 0
        in_scope: List[SourceLine] = []
        first_in_scope = cfg.scope.first_in_scope
        line_samples = self.line_samples
        # inlined tracker.on_sample_line (one call per sample otherwise)
        sampled_lines_get = self.tracker._sampled_lines.get
        tracker_counts = self.tracker.counts
        running = self.state == _RUNNING
        waiting = self.state == _WAIT  # in_scope only feeds selection
        exp_line = self._line
        start_ns = self._start_ns
        prev_chain = prev_attr = None
        for s in samples:
            chain = s.callchain
            if chain is prev_chain:
                attributed = prev_attr
            else:
                prev_chain = chain
                attributed = prev_attr = first_in_scope(chain)
            if attributed is None:
                continue
            line_samples[attributed] = line_samples.get(attributed, 0) + 1
            name = sampled_lines_get(attributed)
            if name is not None:
                tracker_counts[name] += 1
            if waiting:
                in_scope.append(attributed)
            # only samples taken after the experiment started count as hits;
            # stale buffered samples from before the experiment must not
            # trigger delays (this is what Coz's cooloff period is for)
            if running and attributed == exp_line and s.time >= start_ns:
                hits += 1

        pause = 0
        if self.state == _RUNNING:
            self._s_obs += hits
            pause = self.delays.on_hits(thread, hits)
        elif self.state == _WAIT:
            cap = self.cfg.max_experiments
            if cap is None or len(self.data.experiments) < cap:
                selected = self.scheduler.select_line(in_scope, bool(samples))
                if selected is not None:
                    self._start_experiment(selected)
        return HookAction(pause_ns=pause, cpu_ns=cost)

    def _on_samples_columnar(self, thread: VThread, batch) -> HookAction:
        """Segment-wise twin of the scalar ``on_samples`` loop.

        Each columnar segment carries one (line, callchain, func) for ``n``
        consecutive samples, so attribution, per-line totals, tracker
        counts, and the in-scope selection pool (which must preserve
        duplicate multiplicity — ``select_line`` draws uniformly over
        *samples*, not lines) are all O(1) per segment.  Experiment hits
        need the ``time >= start_ns`` cut: closed form for affine
        timestamp segments, a binary search over the (nondecreasing)
        expanded times for rescaled ones.  Byte-identical to the scalar
        loop by construction; the golden-trace matrix and the sampler
        property tests are the referees.
        """
        cfg = self.cfg
        cost = batch.n * cfg.sample_process_cost_ns

        hits = 0
        in_scope: List[SourceLine] = []
        first_in_scope = cfg.scope.first_in_scope
        line_samples = self.line_samples
        sampled_lines_get = self.tracker._sampled_lines.get
        tracker_counts = self.tracker.counts
        running = self.state == _RUNNING
        waiting = self.state == _WAIT  # in_scope only feeds selection
        exp_line = self._line
        start_ns = self._start_ns
        prev_chain = prev_attr = None
        for seg in batch.segs:
            kind = seg[0]
            if kind == SEG_LITERAL:
                # snapshot-restored pre-materialized samples: scalar walk
                for s in seg[2]:
                    chain = s.callchain
                    if chain is prev_chain:
                        attributed = prev_attr
                    else:
                        prev_chain = chain
                        attributed = prev_attr = first_in_scope(chain)
                    if attributed is None:
                        continue
                    line_samples[attributed] = line_samples.get(attributed, 0) + 1
                    name = sampled_lines_get(attributed)
                    if name is not None:
                        tracker_counts[name] += 1
                    if waiting:
                        in_scope.append(attributed)
                    if running and attributed == exp_line and s.time >= start_ns:
                        hits += 1
                continue
            n = seg[1]
            chain = seg[4]
            if chain is prev_chain:
                attributed = prev_attr
            else:
                prev_chain = chain
                attributed = prev_attr = first_in_scope(chain)
            if attributed is None:
                continue
            line_samples[attributed] = line_samples.get(attributed, 0) + n
            name = sampled_lines_get(attributed)
            if name is not None:
                tracker_counts[name] += n
            if waiting:
                in_scope.extend([attributed] * n)
            if running and attributed == exp_line:
                # only samples taken after the experiment started count as
                # hits (stale buffered samples must not trigger delays)
                if kind == SEG_AFFINE:
                    base, period = seg[6], seg[7]
                    if base + period >= start_ns:
                        hits += n  # the first sample already passes the cut
                    else:
                        kmin = -(-(start_ns - base) // period)
                        if kmin <= n:
                            hits += n - kmin + 1
                else:
                    times = batch.seg_times(seg)
                    hits += n - bisect_left(times, start_ns)

        pause = 0
        if self.state == _RUNNING:
            self._s_obs += hits
            pause = self.delays.on_hits(thread, hits)
        elif self.state == _WAIT:
            cap = self.cfg.max_experiments
            if cap is None or len(self.data.experiments) < cap:
                selected = self.scheduler.select_line(in_scope, bool(batch))
                if selected is not None:
                    self._start_experiment(selected)
        return HookAction(pause_ns=pause, cpu_ns=cost)

    # ------------------------------------------------------------------ experiments

    def _start_experiment(self, line: SourceLine) -> None:
        engine = self.engine
        self._line = line
        self._pct = self.scheduler.choose_speedup()
        delay_ns = self._pct * engine.cfg.sample_period_ns // 100
        self._delay_ns = delay_ns
        self._start_ns = engine.now
        self._counts_before = self.tracker.snapshot()
        self._s_obs = 0
        self.delays.begin(delay_ns, (t for t in engine.threads if t.alive))
        self.state = _RUNNING
        self._experiment_token += 1
        token = self._experiment_token
        engine.call_after(
            self.experiment_duration, _ProfTimer(self, _ProfTimer.END, token)
        )

    def _end_experiment(self, token: int) -> None:
        if token != self._experiment_token or self.state != _RUNNING:
            return
        engine = self.engine
        # Settle the books: every runnable thread executes its outstanding
        # required delays now, so the effective-duration subtraction
        # (delay_count x delay) matches pauses actually inserted.  Blocked
        # threads are excluded: their wake is delayed by the waker's pauses,
        # which is exactly the credit rule.
        from repro.sim.thread import ThreadState

        for t in engine.threads:
            if t.alive and t.state is not ThreadState.BLOCKED:
                pause = self.delays.reconcile(t)
                if pause > 0:
                    t.pending_pause_ns += pause
        count = self.delays.end()
        counts_after = self.tracker.snapshot()
        visits = ProgressTracker.delta(self._counts_before, counts_after)
        delay_ns = self._delay_ns
        result = ExperimentResult(
            line=self._line,
            speedup_pct=self._pct,
            delay_ns=delay_ns,
            start_ns=self._start_ns,
            end_ns=engine.now,
            delay_count=count,
            selected_samples=self._s_obs,
            visits=visits,
            counts_before=self._counts_before,
            counts_after=counts_after,
        )
        self.data.add_experiment(result)
        self._run_delay_ns += result.inserted_delay_ns

        # Adaptive experiment length (§2): too few progress visits => double
        max_visits = max(visits.values(), default=0)
        if max_visits < self.cfg.min_visits:
            self.experiment_duration *= 2

        self.state = _COOLOFF
        cooloff = self.cfg.resolved_cooloff(
            engine.cfg.sample_period_ns, engine.cfg.sample_batch
        )
        self._experiment_token += 1
        cool_token = self._experiment_token
        engine.call_after(cooloff, _ProfTimer(self, _ProfTimer.COOL, cool_token))

    def _leave_cooloff(self, token: int) -> None:
        if token != self._experiment_token or self.state != _COOLOFF:
            return
        self.state = _WAIT

    # ------------------------------------------------------------------ snapshot

    # Checkpoint fast-forward protocol (repro.sim.snapshot): the recorder
    # captures the profiler's state alongside the engine's, and restore()
    # rehydrates a *fresh* profiler from it.  Per-thread delay bookkeeping
    # (coz_local / coz_excess) lives in VThread.prof and is carried by the
    # engine-side thread overlays, not here.

    def snapshot_state(self):
        from repro.sim.snapshot import SnapshotError

        if self.auditor is not None:
            # the auditor keeps its own shadow books mid-run; audited
            # sessions always run cold
            raise SnapshotError("audited profiler runs are not snapshot-aware")
        return {
            "data": self.data.to_json(),
            "tracker_counts": dict(self.tracker.counts),
            "line_samples": dict(self.line_samples),
            "state": self.state,
            "experiment_duration": self.experiment_duration,
            "schedule_idx": self.scheduler.schedule_idx,
            "experiment_token": self._experiment_token,
            "run_delay_ns": self._run_delay_ns,
            "line": self._line,
            "pct": self._pct,
            "delay_ns": self._delay_ns,
            "start_ns": self._start_ns,
            "counts_before": dict(self._counts_before),
            "s_obs": self._s_obs,
            "rng": self.rng.getstate(),
            "delays": {
                "active": self.delays.active,
                "delay_ns": self.delays.delay_ns,
                "global_count": self.delays.global_count,
                "total_inserted_ns": self.delays.total_inserted_ns,
                "total_required_ns": self.delays.total_required_ns,
                "rng": self.delays._rng.getstate(),
            },
        }

    def restore_state(self, state, engine) -> None:
        from repro.sim.snapshot import SnapshotError

        if self.auditor is not None:
            raise SnapshotError("audited profiler runs are not snapshot-aware")
        self.data = ProfileData.from_json(state["data"])
        self.tracker.counts = Counter(state["tracker_counts"])
        self.line_samples = Counter(state["line_samples"])
        self.state = state["state"]
        self.experiment_duration = state["experiment_duration"]
        self.scheduler.schedule_idx = state["schedule_idx"]
        self._experiment_token = state["experiment_token"]
        self._run_delay_ns = state["run_delay_ns"]
        self._line = state["line"]
        self._pct = state["pct"]
        self._delay_ns = state["delay_ns"]
        self._start_ns = state["start_ns"]
        self._counts_before = dict(state["counts_before"])
        self._s_obs = state["s_obs"]
        self.rng.setstate(state["rng"])
        d = state["delays"]
        self.delays.active = d["active"]
        self.delays.delay_ns = d["delay_ns"]
        self.delays.global_count = d["global_count"]
        self.delays.total_inserted_ns = d["total_inserted_ns"]
        self.delays.total_required_ns = d["total_required_ns"]
        self.delays._rng.setstate(d["rng"])

    def restore_timer(self, ref):
        kind, token = ref
        if kind not in (_ProfTimer.END, _ProfTimer.COOL):
            from repro.sim.snapshot import SnapshotError

            raise SnapshotError(f"unknown profiler timer kind {kind!r}")
        return _ProfTimer(self, kind, token)

    # ------------------------------------------------------------------ delay edges

    # before_block / before_wake_op are pure trampolines into the delay
    # engine; __init__ rebinds them as instance attributes pointing straight
    # at delays.reconcile so each sync-op edge costs one call, not two.
    def before_block(self, thread: VThread) -> int:
        return self.delays.reconcile(thread)

    def before_wake_op(self, thread: VThread) -> int:
        return self.delays.reconcile(thread)

    def on_unblock(self, thread: VThread, waker: Optional[VThread]) -> int:
        if waker is not None:
            self.delays.credit(thread)
            return 0
        return self.delays.reconcile(thread)

    # ------------------------------------------------------------------ progress

    def on_progress(self, thread: VThread, name: str) -> None:
        self.tracker.on_source_visit(name)

    def on_line_visit(self, thread: VThread, line: SourceLine) -> None:
        self.tracker.on_line_visit(line)

    # ------------------------------------------------------------------ stats

    @property
    def experiments_run(self) -> int:
        return len(self.data.experiments)
