"""Performance-experiment records (§3.2).

Each experiment virtually speeds up one line by one amount and measures the
rate of visits to every progress point.  The profiler logs, per experiment:
the selected line, the speedup, the wall-clock duration, the number of
delays inserted (so the *effective* duration can be computed), the number of
samples observed in the selected line (``s_obs``, for the phase correction),
and the per-progress-point visit deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.sim.source import SourceLine, intern_line


@dataclass
class ExperimentResult:
    """Outcome of a single performance experiment."""

    line: SourceLine
    speedup_pct: int
    #: per-sample delay used (speedup% x sampling period), ns
    delay_ns: int
    #: virtual time when the experiment started / ended
    start_ns: int
    end_ns: int
    #: global delay count at experiment end (delays each thread had to take)
    delay_count: int
    #: samples attributed to the selected line during the experiment (s_obs)
    selected_samples: int
    #: visits to each progress point during the experiment
    visits: Dict[str, int] = field(default_factory=dict)
    #: absolute progress counters at start/end (for latency via Little's law)
    counts_before: Dict[str, int] = field(default_factory=dict)
    counts_after: Dict[str, int] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Wall-clock experiment length (t_obs)."""
        return self.end_ns - self.start_ns

    @property
    def inserted_delay_ns(self) -> int:
        """Total required delay per thread timeline: count x delay size."""
        return self.delay_count * self.delay_ns

    @property
    def effective_ns(self) -> int:
        """Duration with inserted delays backed out — the virtual-speedup
        timeline ('runtime minus the total inserted delay', §2)."""
        return self.duration_ns - self.inserted_delay_ns

    def rate(self, point: str) -> float:
        """Progress-point visits per effective nanosecond."""
        eff = self.effective_ns
        if eff <= 0:
            return 0.0
        return self.visits.get(point, 0) / eff

    def period(self, point: str) -> Optional[float]:
        """Effective ns per progress visit (p in §3.2), None if no visits."""
        v = self.visits.get(point, 0)
        if v <= 0:
            return None
        return self.effective_ns / v

    def in_flight(self, begin: str, end: str) -> float:
        """Average number of in-progress requests between two points (L)."""
        l0 = self.counts_before.get(begin, 0) - self.counts_before.get(end, 0)
        l1 = self.counts_after.get(begin, 0) - self.counts_after.get(end, 0)
        return (l0 + l1) / 2.0

    def latency_ns(self, begin: str, end: str) -> Optional[float]:
        """Average latency via Little's law: W = L / lambda (§3.3)."""
        arrivals = self.visits.get(begin, 0)
        eff = self.effective_ns
        if arrivals <= 0 or eff <= 0:
            return None
        lam = arrivals / eff            # arrival rate per effective ns
        return self.in_flight(begin, end) / lam

    # -- wire format (cross-process result transfer) -------------------------------

    def to_dict(self, lines: Optional[Dict[SourceLine, int]] = None) -> Dict[str, Any]:
        """JSON-safe dict; every field is an int, str, or str-keyed dict.

        With ``lines`` (a shared SourceLine -> index intern table owned by
        the enclosing document), ``"line"`` is an index into that table;
        without it, the inline ``[file, lineno]`` pair of wire version 1.
        """
        if lines is None:
            line_key: Any = [self.line.file, self.line.lineno]
        else:
            line_key = lines.setdefault(self.line, len(lines))
        return {
            "line": line_key,
            "speedup_pct": self.speedup_pct,
            "delay_ns": self.delay_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "delay_count": self.delay_count,
            "selected_samples": self.selected_samples,
            "visits": dict(self.visits),
            "counts_before": dict(self.counts_before),
            "counts_after": dict(self.counts_after),
        }

    @classmethod
    def from_dict(
        cls, d: Dict[str, Any], lines: Optional[list] = None
    ) -> "ExperimentResult":
        key = d["line"]
        if isinstance(key, int):  # wire v2: index into the document's table
            line = lines[key]  # type: ignore[index]
        else:  # wire v1: inline [file, lineno]
            file, lineno = key
            line = intern_line(file, lineno)
        return cls(
            line=line,
            speedup_pct=d["speedup_pct"],
            delay_ns=d["delay_ns"],
            start_ns=d["start_ns"],
            end_ns=d["end_ns"],
            delay_count=d["delay_count"],
            selected_samples=d["selected_samples"],
            visits=dict(d["visits"]),
            counts_before=dict(d["counts_before"]),
            counts_after=dict(d["counts_after"]),
        )
