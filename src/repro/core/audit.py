"""Invariant audit for the delay-accounting algebra.

Coz's correctness rests on delay bookkeeping: effective duration is
"runtime minus the total inserted delay" (§2) and the phase correction
(eq. 8) divides by whole-run effective time, so any drift between *delays
actually inserted* and *delays accounted* silently skews every reported
speedup.  This module is an always-available checker that rides alongside
:class:`~repro.core.profiler.CausalProfiler` /
:class:`~repro.core.speedup.DelayEngine` and verifies the algebra
end-to-end:

* **local-count-identity** — the §3.4.3 invariant: for every thread,
  ``local count == inherited + samples-in-line + pauses`` (paid or
  credited), checked at every experiment end;
* **run-delay-reconciliation** — :class:`RunInfo.total_delay_ns` equals the
  audit's independent replay of every ``DelayEngine.end()`` (completed and
  partial experiments alike) plus the critical-path share of uncompensated
  nanosleep excess;
* **excess-algebra** — ``total_inserted_ns == total_required_ns +
  outstanding excess`` across all threads;
* **engine-delay-consistency** — pauses the delay engine decided equal
  pauses the simulator actually applied (modulo still-pending pauses);
* **effective-nonnegative** — ``effective_ns >= 0`` for every run and every
  experiment;
* **wire-roundtrip** — ``ProfileData.from_json(to_json(d)) == d``;
* **parallel-serial-identity** — a sampled subset of worker-process runs is
  re-executed in the parent and compared bit-for-bit (the full-session
  variant is checked by :func:`run_doctor`);
* **backend-identity** (:func:`run_doctor` only) — a full serial session
  under the compiled engine backend is bit-identical to one under the pure
  reference loop (passes with ``checked=0`` when the core is not built).

The auditor is strictly observational (no RNG, no cost, no scheduling
effect), so attaching it never changes a profiling result — parallel and
serial sessions stay bit-identical under audit.  Results travel as
:class:`AuditReport`, which has its own JSON wire format so parallel
workers ship audit results home alongside their profiles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.profile_data import ProfileData
from repro.sim.hooks import AuditHook


@dataclass
class InvariantCheck:
    """Outcome of one invariant over some number of checked instances."""

    name: str
    passed: bool
    checked: int = 0
    failures: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "checked": self.checked,
            "failures": self.failures,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "InvariantCheck":
        return cls(
            name=d["name"],
            passed=d["passed"],
            checked=d.get("checked", 0),
            failures=d.get("failures", 0),
            detail=d.get("detail", ""),
        )


def _check(name: str, ok: bool, checked: int = 1, detail: str = "") -> InvariantCheck:
    return InvariantCheck(
        name=name,
        passed=ok,
        checked=checked,
        failures=0 if ok else 1,
        detail="" if ok else detail,
    )


@dataclass
class AuditReport:
    """Merged invariant results, one row per invariant name."""

    checks: List[InvariantCheck] = field(default_factory=list)

    WIRE_VERSION = 1

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failures(self) -> List[InvariantCheck]:
        return [c for c in self.checks if not c.passed]

    def get(self, name: str) -> Optional[InvariantCheck]:
        for c in self.checks:
            if c.name == name:
                return c
        return None

    def add(self, check: InvariantCheck) -> "AuditReport":
        """Add a check, folding into an existing row of the same name."""
        mine = self.get(check.name)
        if mine is None:
            self.checks.append(check)
            return self
        mine.passed = mine.passed and check.passed
        mine.checked += check.checked
        mine.failures += check.failures
        if not mine.detail and check.detail:
            mine.detail = check.detail
        return self

    def merge(self, other: "AuditReport") -> "AuditReport":
        """Fold another report's rows into this one (by invariant name)."""
        for c in other.checks:
            self.add(InvariantCheck.from_dict(c.to_dict()))
        return self

    # -- wire format (cross-process result transfer) -------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to the wire format (a JSON document)."""
        return json.dumps(
            {
                "version": self.WIRE_VERSION,
                "checks": [c.to_dict() for c in self.checks],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "AuditReport":
        """Rebuild from :meth:`to_json` output."""
        doc = json.loads(text)
        version = doc.get("version")
        if version != cls.WIRE_VERSION:
            raise ValueError(f"unsupported AuditReport wire version: {version!r}")
        report = cls()
        for cd in doc["checks"]:
            report.add(InvariantCheck.from_dict(cd))
        return report


class DelayAuditor(AuditHook):
    """Per-run delay-accounting auditor.

    Rebuilds the §3.4 counter algebra from the :class:`AuditHook` event
    stream alone, then compares against what the profiler booked.  One
    auditor audits one run (like one profiler profiles one run).
    """

    def __init__(self) -> None:
        self._delays = None
        #: per-thread counters for the current experiment
        self._threads: Dict[Any, Dict[str, int]] = {}
        self._local_checked = 0
        self._local_failures = 0
        self._local_detail = ""
        #: every DelayEngine.end(): (final global count, delay_ns)
        self._end_log: List = []
        self._run_checks: List[InvariantCheck] = []

    # -- event stream ----------------------------------------------------------

    def _entry(self, thread) -> Dict[str, int]:
        return self._threads.setdefault(
            thread, {"inherited": 0, "hits": 0, "paid": 0, "credited": 0}
        )

    def on_delay_begin(self, delays, delay_ns: int, threads) -> None:
        self._delays = delays
        self._threads = {}
        for t in threads:
            self._entry(t)

    def on_delay_hits(self, thread, hits: int) -> None:
        self._entry(thread)["hits"] += hits

    def on_delay_pause(self, thread, count_delta, required_ns, inserted_ns) -> None:
        self._entry(thread)["paid"] += count_delta

    def on_delay_credit(self, thread, count_delta: int) -> None:
        self._entry(thread)["credited"] += count_delta

    def on_delay_inherit(self, thread, local_count: int) -> None:
        self._entry(thread)["inherited"] = local_count

    def on_delay_end(self, count: int, delay_ns: int) -> None:
        self._end_log.append((count, delay_ns))
        for thread, c in self._threads.items():
            expected = c["inherited"] + c["hits"] + c["paid"] + c["credited"]
            actual = self._delays.local_count(thread)
            self._local_checked += 1
            if actual != expected:
                self._local_failures += 1
                if not self._local_detail:
                    self._local_detail = (
                        f"thread {thread.name!r}: local={actual} != "
                        f"inherited {c['inherited']} + hits {c['hits']} + "
                        f"pauses {c['paid'] + c['credited']}"
                    )

    def on_profiler_run_end(self, profiler, engine) -> None:
        delays = profiler.delays
        threads = engine.threads
        info = profiler.data.runs[-1]

        expected_delay = sum(count * d for count, d in self._end_log)
        expected_delay += delays.max_outstanding_excess_ns(threads)
        self._run_checks.append(_check(
            "run-delay-reconciliation",
            info.total_delay_ns == expected_delay,
            detail=(
                f"RunInfo booked {info.total_delay_ns} ns but the audited "
                f"replay of {len(self._end_log)} experiment(s) says "
                f"{expected_delay} ns"
            ),
        ))

        outstanding = delays.outstanding_excess_ns(threads)
        self._run_checks.append(_check(
            "excess-algebra",
            delays.total_inserted_ns == delays.total_required_ns + outstanding,
            detail=(
                f"inserted {delays.total_inserted_ns} != required "
                f"{delays.total_required_ns} + outstanding excess {outstanding}"
            ),
        ))

        pending = sum(t.pending_pause_ns for t in threads)
        self._run_checks.append(_check(
            "engine-delay-consistency",
            delays.total_inserted_ns == engine.total_delay_ns + pending,
            detail=(
                f"delay engine decided {delays.total_inserted_ns} ns of "
                f"pauses but the simulator applied {engine.total_delay_ns} ns "
                f"(+{pending} ns still pending)"
            ),
        ))

        self._run_checks.append(_check(
            "effective-nonnegative",
            info.effective_ns >= 0,
            detail=(
                f"run effective_ns = {info.runtime_ns} - "
                f"{info.total_delay_ns} < 0"
            ),
        ))

    # -- results ---------------------------------------------------------------

    def report(self) -> AuditReport:
        """The run's audit results as a shippable report."""
        rep = AuditReport()
        rep.add(InvariantCheck(
            name="local-count-identity",
            passed=self._local_failures == 0,
            checked=self._local_checked,
            failures=self._local_failures,
            detail=self._local_detail,
        ))
        for c in self._run_checks:
            rep.add(c)
        return rep


def audit_profile_data(data: ProfileData) -> AuditReport:
    """Data-level invariants: nonnegative effective times, lossless wire."""
    rep = AuditReport()

    bad_runs = sum(1 for r in data.runs if r.effective_ns < 0)
    bad_exps = sum(1 for e in data.experiments if e.effective_ns < 0)
    rep.add(_check(
        "effective-nonnegative",
        bad_runs + bad_exps == 0,
        checked=len(data.runs) + len(data.experiments),
        detail=(
            f"{bad_runs} run(s) and {bad_exps} experiment(s) have "
            f"negative effective duration"
        ),
    ))
    # _check collapses failures to 1; record the real count
    if bad_runs + bad_exps > 0:
        rep.get("effective-nonnegative").failures = bad_runs + bad_exps

    try:
        ok = ProfileData.from_json(data.to_json()) == data
        detail = "decoded document differs from the original"
    except Exception as exc:
        ok, detail = False, f"round trip raised {type(exc).__name__}: {exc}"
    rep.add(_check("wire-roundtrip", ok, detail=detail))
    return rep


def run_accounting_check(attempted: int, data: ProfileData) -> InvariantCheck:
    """Every attempted run is accounted for: a RunInfo or a RunFailure.

    This is the no-silent-drop invariant of the resilience layer — a run
    may succeed or be recorded as failed, but it may never vanish.
    """
    accounted = len(data.runs) + len(data.failures)
    return _check(
        "run-accounting",
        accounted == attempted,
        checked=attempted,
        detail=(
            f"{attempted} run(s) attempted but only {len(data.runs)} "
            f"succeeded + {len(data.failures)} recorded as failed"
        ),
    )


def run_doctor(
    app_name: str,
    runs: int = 3,
    jobs: int = 2,
    base_seed: int = 0,
    experiment_ms: float = 40.0,
    jitter_ns: int = 2000,
    **build_kwargs: Any,
) -> AuditReport:
    """Run the full invariant suite against a registered app.

    Three audited profiling sessions: a serial one (delay accounting + data
    invariants), a jitter-enabled one (exercises the nanosleep-excess
    reconciliation), and a parallel one (worker-shipped audits, a sampled
    in-parent re-execution, and full-session bit-identity against the
    serial run).  On top of those it checks journal resume, planner
    identity/replay (an explicit StaticPlanner session must be bit-identical
    to the default session; an adaptive session must replay identically
    through a journal interruption), and checkpoint fast-forward identity.
    Returns the merged report; ``repro doctor`` renders it.

    ``jobs`` counts worker processes for the parallel session; 0 (the
    CLI's auto value) forces two workers so the cross-process path is
    exercised even on a single-CPU machine.
    """
    from dataclasses import replace

    from repro.apps import registry
    from repro.core.config import CozConfig
    from repro.harness.request import ExecutionConfig, ResilienceConfig
    from repro.harness.runner import ProfileRequest, run_profile_session
    from repro.sim.clock import MS

    if jobs == 0:
        jobs = 2
    spec = registry.build(app_name, **build_kwargs)
    cfg = CozConfig(scope=spec.scope, experiment_duration_ns=MS(experiment_ms))
    serial_exec = ExecutionConfig(jobs=1)
    report = AuditReport()

    serial = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg,
        execution=serial_exec, audit=True,
    ))
    report.merge(serial.audit)

    jittered = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed,
        coz_config=replace(cfg, nanosleep_jitter_ns=jitter_ns),
        execution=serial_exec, audit=True,
    ))
    report.merge(jittered.audit)

    parallel = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg,
        execution=ExecutionConfig(jobs=jobs), audit=True,
    ))
    report.merge(parallel.audit)
    report.add(_check(
        "parallel-serial-full-identity",
        parallel.data == serial.data,
        detail=(
            f"parallel session ({len(parallel.data.runs)} runs) is not "
            f"bit-identical to the serial session"
        ),
    ))

    # batched dispatch (repro.harness.parallel.RunBatch): shipping several
    # runs per worker round trip is execution-only, so a session forced to
    # multi-run batches must be bit-identical to the serial one
    batched = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg,
        execution=ExecutionConfig(jobs=jobs, batch_runs=max(2, runs // jobs)),
        audit=True,
    ))
    report.merge(batched.audit)
    report.add(_check(
        "batched-dispatch-identity",
        batched.data == serial.data,
        detail=(
            f"batched parallel session ({len(batched.data.runs)} runs, "
            f"batch size {max(2, runs // jobs)}) is not bit-identical to "
            f"the serial session"
        ),
    ))

    # binary wire (repro.core.binwire): the compact columnar encoding must
    # be a lossless involution — decode(encode(data)) renders the same
    # JSON bytes as data itself
    from repro.core.profile_data import ProfileData as _PD

    wire_json = serial.data.to_json()
    try:
        decoded_json = _PD.from_bytes(serial.data.to_bytes()).to_json()
        wire_ok = decoded_json == wire_json
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        wire_ok = False
    report.add(_check(
        "binary-wire-identity",
        wire_ok,
        detail="ProfileData.from_bytes(to_bytes()) does not reproduce the "
               "JSON wire byte-for-byte",
    ))

    # checkpoint/resume: journal a session, stop it midway, resume it, and
    # demand bit-identity with the uninterrupted serial session
    import os
    import tempfile

    half = max(1, runs // 2)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "session.journal")
        run_profile_session(spec, ProfileRequest(
            runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
            resilience=ResilienceConfig(journal=path, stop_after_runs=half),
        ))
        resumed = run_profile_session(spec, ProfileRequest(
            runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
            resilience=ResilienceConfig(resume=path),
        ))
    report.add(_check(
        "journal-resume-identity",
        resumed.data == serial.data,
        detail=(
            f"session resumed after {half} of {runs} journaled runs is not "
            f"bit-identical to an uninterrupted session"
        ),
    ))

    # planner API (repro.plan): an explicit static planner must be a no-op
    # relative to the default session, and the adaptive planner — whose
    # schedule is derived from observed data — must replay deterministically
    # through a journal interruption
    from repro.plan import PlanConfig

    static_plan = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
        plan=PlanConfig(planner="static"),
    ))
    report.add(_check(
        "planner-static-identity",
        static_plan.data == serial.data,
        detail="explicit StaticPlanner session is not bit-identical to the "
               "default (plan-less) session",
    ))

    adaptive_req = dict(
        runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
        plan=PlanConfig(planner="adaptive", budget=runs),
    )
    adaptive = run_profile_session(spec, ProfileRequest(**adaptive_req))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "adaptive.journal")
        run_profile_session(spec, ProfileRequest(
            **adaptive_req,
            resilience=ResilienceConfig(journal=path, stop_after_runs=half),
        ))
        adaptive_resumed = run_profile_session(spec, ProfileRequest(
            **adaptive_req,
            resilience=ResilienceConfig(resume=path),
        ))
    same_data = adaptive_resumed.data == adaptive.data
    same_plan = (
        adaptive_resumed.plan is not None and adaptive.plan is not None
        and adaptive_resumed.plan.to_dict() == adaptive.plan.to_dict()
    )
    report.add(_check(
        "planner-resume-identity",
        same_data and same_plan,
        detail=(
            f"adaptive session resumed after {half} of {runs} journaled runs "
            f"diverged from an uninterrupted one "
            f"(data identical: {same_data}, plan identical: {same_plan}) — "
            f"the planner's decisions are not a pure function of observed data"
        ),
    ))

    # checkpoint fast-forward (repro.harness.checkpoint): populate a
    # snapshot store, then demand that warm-resumed sessions — serial from
    # memory, parallel from a shared disk cache, and under chaos faults —
    # are bit-identical to cold runs
    from repro.harness.checkpoint import clear_memory_cache
    from repro.sim.faults import FaultPlan

    cold = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg,
        execution=ExecutionConfig(jobs=1, checkpoint=False),
    ))
    with tempfile.TemporaryDirectory() as tmp:
        clear_memory_cache()
        run_profile_session(spec, ProfileRequest(   # cold populate pass
            runs=runs, base_seed=base_seed, coz_config=cfg,
            execution=ExecutionConfig(jobs=1, checkpoint_dir=tmp),
        ))
        warm = run_profile_session(spec, ProfileRequest(
            runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
        ))
        report.add(_check(
            "checkpoint-cold-identity",
            warm.data == cold.data,
            detail="snapshot-resumed serial session is not bit-identical "
                   "to a cold session",
        ))
        clear_memory_cache()  # force the workers/parent onto the disk cache
        warm_parallel = run_profile_session(spec, ProfileRequest(
            runs=runs, base_seed=base_seed, coz_config=cfg,
            execution=ExecutionConfig(jobs=jobs, checkpoint_dir=tmp),
        ))
        report.add(_check(
            "checkpoint-parallel-identity",
            warm_parallel.data == cold.data,
            detail="snapshot-resumed parallel session is not bit-identical "
                   "to a cold serial session",
        ))

    plan = FaultPlan.chaos(seed=base_seed, intensity=0.5)
    clear_memory_cache()
    chaos_cold = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg,
        execution=ExecutionConfig(jobs=1, checkpoint=False),
        resilience=ResilienceConfig(faults=plan),
    ))
    run_profile_session(spec, ProfileRequest(       # chaos populate pass
        runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
        resilience=ResilienceConfig(faults=plan),
    ))
    chaos_warm = run_profile_session(spec, ProfileRequest(
        runs=runs, base_seed=base_seed, coz_config=cfg, execution=serial_exec,
        resilience=ResilienceConfig(faults=plan),
    ))
    report.add(_check(
        "checkpoint-chaos-identity",
        chaos_warm.data == chaos_cold.data,
        detail="snapshot-resumed chaos session (injected faults) is not "
               "bit-identical to a cold chaos session",
    ))

    # backend identity (repro.sim.backend): one full serial session under
    # each execution backend — compiled core vs pure reference — must
    # produce identical ProfileData.  Cold on both sides so the compiled
    # loop runs the whole session rather than a checkpoint tail.  Without
    # the compiled core built there is nothing to compare; the invariant
    # passes with checked=0 so doctor output still lists it.
    from repro.sim import backend as backend_mod

    if backend_mod.accel_available():
        def _session_under(backend: str):
            prior = os.environ.get(backend_mod.BACKEND_ENV)
            os.environ[backend_mod.BACKEND_ENV] = backend
            try:
                return run_profile_session(spec, ProfileRequest(
                    runs=runs, base_seed=base_seed, coz_config=cfg,
                    execution=ExecutionConfig(jobs=1, checkpoint=False),
                ))
            finally:
                if prior is None:
                    del os.environ[backend_mod.BACKEND_ENV]
                else:
                    os.environ[backend_mod.BACKEND_ENV] = prior

        pure_out = _session_under("pure")
        accel_out = _session_under("accel")
        report.add(_check(
            "backend-identity",
            pure_out.data == accel_out.data,
            detail="accel-backend session is not bit-identical to the "
                   "pure-backend session",
        ))
    else:
        report.add(_check(
            "backend-identity", True, checked=0,
            detail="compiled core not built; pure backend only",
        ))
    return report
