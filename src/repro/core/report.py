"""Rendering causal profiles: text tables, ASCII graphs, CSV, and the real
Coz profile format.

``to_coz_format`` emits the on-disk format the real ``coz`` tool writes
(``startup`` / ``experiment`` / ``progress-point`` records), so profiles from
the simulator can be inspected with the stock Coz plot viewer.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.core.analysis import summarize
from repro.core.profile_data import CausalProfile, LineProfile, ProfileData


def render_audit(report) -> str:
    """Pass/fail table for an :class:`~repro.core.audit.AuditReport`."""
    buf = io.StringIO()
    verdict = "PASS" if report.passed else "FAIL"
    buf.write(f"Invariant audit: {verdict}\n")
    buf.write(f"{'status':<6} {'invariant':<32} {'checked':>8} {'failed':>7}\n")
    for c in report.checks:
        status = "ok" if c.passed else "FAIL"
        buf.write(f"{status:<6} {c.name:<32} {c.checked:>8} {c.failures:>7}\n")
        if not c.passed and c.detail:
            buf.write(f"       ^ {c.detail}\n")
    return buf.getvalue()


def render_failures(data: ProfileData) -> str:
    """Degraded-session summary: one row per lost run."""
    total = len(data.runs) + len(data.failures)
    buf = io.StringIO()
    buf.write(
        f"DEGRADED session: {len(data.failures)} of {total} run(s) "
        f"produced no data\n"
    )
    buf.write(f"{'run':>4} {'seed':>6} {'error':<22} detail\n")
    for f in sorted(data.failures, key=lambda f: f.index):
        message = f.message if len(f.message) <= 80 else f.message[:77] + "..."
        buf.write(f"{f.index:>4} {f.seed:>6} {f.error_type:<22} {message}\n")
    return buf.getvalue()


def render_profile(
    profile: CausalProfile, top: Optional[int] = 10, plan=None
) -> str:
    """The ranked-table view of a causal profile.

    With a :class:`~repro.plan.base.PlanReport` (``plan=``), two planner
    columns are appended: experiments spent on the line and why its
    measurement stopped (``schedule`` / ``converged`` / ``eliminated`` /
    ``budget``).
    """
    buf = io.StringIO()
    buf.write(f"Causal profile for progress point '{profile.point}'\n")
    buf.write(
        f"{'rank':>4}  {'line':<28} {'slope':>8} {'max speedup':>12} {'kind':<11}"
    )
    if plan is not None:
        buf.write(f" {'spent':>6} {'stopped':<10}")
    buf.write("\n")
    for opp in summarize(profile, top=top):
        buf.write(
            f"{opp.rank:>4}  {str(opp.line):<28} {opp.slope:>+8.3f} "
            f"{100 * opp.max_program_speedup:>+11.2f}% {opp.kind:<11}"
        )
        if plan is not None:
            buf.write(f" {plan.spend(opp.line):>6} {plan.reason(opp.line):<10}")
        buf.write("\n")
    return buf.getvalue()


def render_plan(plan) -> str:
    """The planner's session narration (:class:`~repro.plan.base.PlanReport`)."""
    buf = io.StringIO()
    buf.write(
        f"Planner '{plan.planner}': {plan.runs_planned} of {plan.budget} "
        f"budgeted run(s) over {plan.rounds} round(s)\n"
    )
    for line in plan.decisions:
        buf.write(f"  {line}\n")
    return buf.getvalue()


def render_line_graph(lp: LineProfile, width: int = 50, height: int = 12) -> str:
    """An ASCII rendition of one line's causal-profile plot (Figure 2b)."""
    pts = sorted(lp.points, key=lambda p: p.speedup_pct)
    ys = [p.program_speedup_pct for p in pts]
    lo = min(0.0, min(ys))
    hi = max(0.0, max(ys))
    if hi == lo:
        hi = lo + 1.0
    rows = [[" "] * (width + 1) for _ in range(height + 1)]
    for p in pts:
        col = round(p.speedup_pct / 100 * width)
        row = height - round((p.program_speedup_pct - lo) / (hi - lo) * height)
        rows[row][col] = "*"
    zero_row = height - round((0.0 - lo) / (hi - lo) * height)
    for c in range(width + 1):
        if rows[zero_row][c] == " ":
            rows[zero_row][c] = "-"
    buf = io.StringIO()
    buf.write(f"{lp.line}  (slope {lp.slope:+.3f})\n")
    buf.write(f"program speedup %  [{lo:+.1f} .. {hi:+.1f}]\n")
    for row in rows:
        buf.write("".join(row) + "\n")
    buf.write("0%" + " " * (width - 6) + "100%  line speedup\n")
    return buf.getvalue()


def to_csv(profile: CausalProfile) -> str:
    """Flat CSV of every (line, speedup, program speedup, se) point."""
    buf = io.StringIO()
    buf.write("line,progress_point,speedup_pct,program_speedup_pct,se_pct,n_experiments,visits\n")
    for lp in profile.ranked():
        for p in sorted(lp.points, key=lambda p: p.speedup_pct):
            buf.write(
                f"{lp.line},{profile.point},{p.speedup_pct},"
                f"{p.program_speedup_pct:.4f},{100 * p.se:.4f},"
                f"{p.n_experiments},{p.visits}\n"
            )
    return buf.getvalue()


def to_coz_format(data: ProfileData, runtime_ns: Optional[int] = None) -> str:
    """Serialize raw experiments in the real Coz profile file format.

    Each experiment becomes an ``experiment`` record followed by one
    ``progress-point`` record per measured progress point, mirroring what
    ``coz run`` writes to ``profile.coz``.
    """
    buf = io.StringIO()
    start = 0
    if data.runs:
        start = data.runs[0].runtime_ns
    buf.write(f"startup\ttime={start if runtime_ns is None else runtime_ns}\n")
    for e in data.experiments:
        buf.write(
            f"experiment\tselected={e.line}\tspeedup={e.speedup_pct / 100:.2f}\t"
            f"duration={e.duration_ns}\tselected-samples={e.selected_samples}\n"
        )
        for name in sorted(e.visits):
            buf.write(
                f"progress-point\tname={name}\ttype=source\tdelta={e.visits[name]}\n"
            )
    return buf.getvalue()
