"""Configuration for the causal profiler.

Defaults mirror the paper's: 1 ms sampling period, batches of ten samples,
a 10 ms cooloff between experiments, a minimum of five progress-point visits
per experiment (doubling the experiment length otherwise), virtual speedups
selected from {0, 5, 10, ..., 100} % with 0 % chosen half the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.sim.clock import MS, US
from repro.sim.source import Scope, SourceLine

#: the paper's speedup grid: multiples of 5% from 0 to 100
DEFAULT_SPEEDUPS: Tuple[int, ...] = tuple(range(0, 105, 5))


@dataclass
class CozConfig:
    """Everything tunable about a causal-profiling run."""

    # --- scope & selection --------------------------------------------------
    #: which source files experiments may select lines from (§3.1)
    scope: Scope = field(default_factory=Scope.all_main)
    #: candidate virtual-speedup percentages
    speedup_values: Tuple[int, ...] = DEFAULT_SPEEDUPS
    #: probability of selecting the 0% baseline speedup (§3.2)
    zero_speedup_prob: float = 0.5
    #: profile only this line instead of sampling-driven random selection
    #: (used for focused accuracy studies, §4.3)
    fixed_line: Optional[SourceLine] = None
    #: cycle deterministically through these speedups instead of sampling
    #: randomly (dense sweeps for figure regeneration)
    speedup_schedule: Optional[Sequence[int]] = None
    #: stop starting experiments after this many have completed in the run
    #: (None = unlimited); lets a planner budget directed runs at
    #: experiment granularity
    max_experiments: Optional[int] = None
    #: RNG seed for line/speedup selection
    seed: int = 0

    # --- experiment pacing ----------------------------------------------------
    #: initial experiment length (doubles when visits are too few)
    experiment_duration_ns: int = MS(50)
    #: minimum progress-point visits per experiment before doubling
    min_visits: int = 5
    #: cooloff between experiments; None = batch_size x sample period (§3.2)
    cooloff_ns: Optional[int] = None

    # --- mechanisms (overhead-study switches, Figure 9 configurations) -------
    #: sample the program at all (off = "startup-only" configuration)
    enable_sampling: bool = True
    #: insert virtual-speedup delays (off = "sampling-only": all speedups 0)
    enable_delays: bool = True
    #: use the minimal-delay optimization of §3.4.3 (off = naive: the thread
    #: that executed the selected line also pauses)
    minimal_delays: bool = True
    #: apply the phase correction factor of eq. (8)
    phase_correction: bool = True
    #: attach the invariant-audit layer (:mod:`repro.core.audit`): the
    #: profiler narrates its delay accounting to a purely-observational
    #: checker and ships an :class:`~repro.core.audit.AuditReport` alongside
    #: the profile.  Never perturbs results.
    audit: bool = False

    # --- overhead model (drives Figure 9) -------------------------------------
    #: startup cost of processing debug information, per notional KB
    startup_cost_per_kb_ns: int = US(12)
    #: CPU cost of processing one sample
    sample_process_cost_ns: int = US(2)
    #: CPU cost of starting/stopping perf_event sampling in a new thread
    thread_attach_cost_ns: int = US(40)
    #: nanosleep overshoot: inserted pauses run long by up to this much, and
    #: the excess is subtracted from future pauses (§3.4 "accurate timing")
    nanosleep_jitter_ns: int = 0

    def resolved_cooloff(self, sample_period_ns: int, sample_batch: int) -> int:
        """The inter-experiment cooloff (default: one sample batch, 10 ms)."""
        if self.cooloff_ns is not None:
            return self.cooloff_ns
        return sample_period_ns * sample_batch

    def validate(self) -> None:
        if not 0.0 <= self.zero_speedup_prob <= 1.0:
            raise ValueError("zero_speedup_prob must be in [0, 1]")
        if self.experiment_duration_ns <= 0:
            raise ValueError("experiment duration must be positive")
        if any(not 0 <= s <= 100 for s in self.speedup_values):
            raise ValueError("speedup percentages must be in [0, 100]")
        if 0 not in self.speedup_values and self.speedup_schedule is None:
            raise ValueError("speedup_values must include the 0% baseline")
        if self.min_visits < 1:
            raise ValueError("min_visits must be >= 1")
        if self.max_experiments is not None and self.max_experiments < 1:
            raise ValueError("max_experiments must be >= 1")
