"""Progress points (§3.3).

Coz supports three progress-point mechanisms, all reproduced here:

* **source-level** — the ``COZ_PROGRESS`` macro; in the simulator, a
  :class:`~repro.sim.ops.Progress` op with a matching name;
* **breakpoint** — a counter incremented whenever execution *reaches* a given
  source line (the engine reports Work ops starting on watched lines);
* **sampled** — no exact counts: the number of IP samples attributed to the
  line stands in for visits (rates still compare across experiments).

A :class:`LatencySpec` names a begin/end pair of progress points; average
latency is inferred from Little's law (L = lambda x W) in the analysis stage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.source import SourceLine


@dataclass(frozen=True)
class ProgressPoint:
    """Declaration of one progress point."""

    name: str
    kind: str = "source"                 # 'source' | 'breakpoint' | 'sampled'
    line: Optional[SourceLine] = None    # required for breakpoint/sampled

    def __post_init__(self) -> None:
        if self.kind not in ("source", "breakpoint", "sampled"):
            raise ValueError(f"unknown progress point kind: {self.kind}")
        if self.kind in ("breakpoint", "sampled") and self.line is None:
            raise ValueError(f"{self.kind} progress point needs a line")


@dataclass(frozen=True)
class LatencySpec:
    """A begin/end progress-point pair for latency profiling."""

    name: str
    begin: str   # name of the begin progress point
    end: str     # name of the end progress point


class ProgressTracker:
    """Runtime visit counters for all registered progress points."""

    def __init__(self, points: List[ProgressPoint]) -> None:
        self.points = list(points)
        self.counts: Counter = Counter()
        self._source_names = {p.name for p in points if p.kind == "source"}
        self._breakpoint_lines: Dict[SourceLine, str] = {
            p.line: p.name for p in points if p.kind == "breakpoint"
        }
        self._sampled_lines: Dict[SourceLine, str] = {
            p.line: p.name for p in points if p.kind == "sampled"
        }

    # -- event feeds ---------------------------------------------------------

    def on_source_visit(self, name: str) -> None:
        """A Progress op ran. Unregistered names are counted too, so apps can
        declare progress points lazily (Coz counts every COZ_PROGRESS)."""
        self.counts[name] += 1

    def on_line_visit(self, line: SourceLine) -> None:
        name = self._breakpoint_lines.get(line)
        if name is not None:
            self.counts[name] += 1

    def on_sample_line(self, line: Optional[SourceLine]) -> None:
        if line is None:
            return
        name = self._sampled_lines.get(line)
        if name is not None:
            self.counts[name] += 1

    # -- queries ------------------------------------------------------------------

    @property
    def breakpoint_lines(self) -> List[SourceLine]:
        return list(self._breakpoint_lines)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters (taken at experiment boundaries)."""
        return dict(self.counts)

    @staticmethod
    def delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        """Per-point visit deltas between two snapshots."""
        keys = set(before) | set(after)
        return {k: after.get(k, 0) - before.get(k, 0) for k in keys}
