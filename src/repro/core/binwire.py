"""Binary columnar wire format for :class:`~repro.core.profile_data.ProfileData`.

The JSON wire (``ProfileData.to_json``) is the debugging/journal view: it
is self-describing and diffable, but a sample-heavy session pays for every
repeated key name and every decimal digit of its nanosecond counters.  The
binary wire stores the same document *columnar*: one string table, one
interned line table, and each experiment/run field as a packed integer
column with an adaptively chosen width (i8/i16/i32/i64) and optional
delta pre-coding for the monotonic timestamp columns.  The whole body is
deflate-compressed when that pays.

Layout (version 1, little-endian throughout)::

    magic  b"RPDB"
    u8     version (= 1)
    u8     flags   (bit 0: body is zlib-compressed)
    body:
      strings   u32 count, then per string: u32 byte-length + UTF-8
                (file names first, then progress-point names; one table)
      lines     column file_string_idx, column lineno
      u32 n_experiments
      columns   line_idx, speedup_pct, delay_ns, start_ns, end_ns,
                delay_count, selected_samples
      3 sparse dict blocks (visits, counts_before, counts_after), each:
                column per-experiment entry count,
                column flattened key_string_idx, column flattened value
      u32 n_runs
      columns   runtime_ns, total_delay_ns
      sparse    per-run pair count, flattened line_idx, flattened count
      failures  u32 byte-length + JSON UTF-8 (empty = no failures)

    column := u8 code + u32 count + payload
              code & 0x0F: element width in bytes (1/2/4/8, signed)
              code & 0x10: values are delta-encoded (cumsum to decode)
              code == 0x7F: JSON fallback (ints outside i64)

Ordering mirrors ``to_json`` exactly — line-table indices are assigned
first-encounter over experiments then runs, per-experiment dict keys keep
insertion order, per-run line samples are sorted — so
``decode_profile(encode_profile(d)).to_json() == d.to_json()``
byte-for-byte.  Packing uses numpy when available and falls back to
:mod:`struct`; both produce identical bytes.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Optional

from repro.core.experiment import ExperimentResult
from repro.core.profile_data import ProfileData, RunFailure, RunInfo
from repro.sim.source import SourceLine, intern_line

try:  # pragma: no cover - exercised via both branches in tests
    import numpy as _np
except Exception:  # pragma: no cover - numpy is normally available
    _np = None

MAGIC = b"RPDB"
VERSION = 1

#: body sizes below this stay uncompressed (zlib overhead beats the win)
_COMPRESS_MIN = 512

_JSON_CODE = 0x7F
_DELTA_FLAG = 0x10
_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63 - 1
_WIDTH_FMT = {1: "b", 2: "h", 4: "i", 8: "q"}
_WIDTH_BOUNDS = {
    1: (-(2 ** 7), 2 ** 7 - 1),
    2: (-(2 ** 15), 2 ** 15 - 1),
    4: (-(2 ** 31), 2 ** 31 - 1),
}


class BinaryWireError(ValueError):
    """The blob is not a (supported) ProfileData binary document."""


def _width_for(lo: int, hi: int) -> int:
    for width in (1, 2, 4):
        wlo, whi = _WIDTH_BOUNDS[width]
        if wlo <= lo and hi <= whi:
            return width
    return 8


def _raw_pack(values: List[int], width: int) -> bytes:
    if _np is not None:
        return _np.asarray(values, dtype=f"<i{width}").tobytes()
    return struct.pack(f"<{len(values)}{_WIDTH_FMT[width]}", *values)


def _raw_unpack(payload: bytes, count: int, width: int) -> List[int]:
    if _np is not None:
        return _np.frombuffer(payload, dtype=f"<i{width}", count=count).tolist()
    return list(struct.unpack(f"<{count}{_WIDTH_FMT[width]}", payload))


def pack_ints(values: List[int], delta: bool = False) -> bytes:
    """One packed column: code byte, u32 count, adaptive-width payload.

    ``delta`` stores successive differences (the first value verbatim) —
    smaller widths and better deflate runs for near-monotonic columns like
    experiment timestamps.  Falls back to a JSON payload for ints outside
    the i64 range (arbitrary-precision Python ints are legal field values,
    if never seen in practice).
    """
    n = len(values)
    if n == 0:
        return bytes([1]) + struct.pack("<I", 0)
    lo, hi = min(values), max(values)
    if lo < _I64_MIN or hi > _I64_MAX:
        payload = json.dumps(values, separators=(",", ":")).encode("utf-8")
        return bytes([_JSON_CODE]) + struct.pack("<I", n) + payload
    code = 0
    if delta:
        deltas = [values[0]]
        prev = values[0]
        for v in values[1:]:
            deltas.append(v - prev)
            prev = v
        dlo, dhi = min(deltas), max(deltas)
        if _I64_MIN <= dlo and dhi <= _I64_MAX:
            dwidth = _width_for(dlo, dhi)
            if dwidth < _width_for(lo, hi):
                values, lo, hi = deltas, dlo, dhi
                code = _DELTA_FLAG
    width = _width_for(lo, hi)
    return bytes([code | width]) + struct.pack("<I", n) + _raw_pack(values, width)


class _Reader:
    """Cursor over one body; every read advances it."""

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise BinaryWireError("truncated ProfileData binary document")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def ints(self) -> List[int]:
        code = self.take(1)[0]
        n = self.u32()
        if n == 0:
            return []
        if code == _JSON_CODE:
            # JSON payload runs to a self-delimiting bracket; scan via loads
            # of the remaining buffer is unsafe, so length-prefix it instead
            raise BinaryWireError("JSON column without length prefix")
        width = code & 0x0F
        if width not in _WIDTH_FMT:
            raise BinaryWireError(f"bad column width code {code:#x}")
        values = _raw_unpack(self.take(n * width), n, width)
        if code & _DELTA_FLAG:
            total = 0
            out = []
            for v in values:
                total += v
                out.append(total)
            return out
        return values

    def blob(self) -> bytes:
        return self.take(self.u32())

    def string(self) -> str:
        return self.blob().decode("utf-8")


# the JSON-fallback column needs a length prefix to be skippable; emit it
# as blob-wrapped and route reads through this pair instead of raw ints
def _put_column(out: List[bytes], values: List[int], delta: bool = False) -> None:
    col = pack_ints(values, delta=delta)
    if col[0] == _JSON_CODE:
        out.append(bytes([_JSON_CODE]) + struct.pack("<I", len(col) - 5) + col[5:])
    else:
        out.append(col)


def _read_column(r: _Reader) -> List[int]:
    if r.buf[r.pos] == _JSON_CODE:
        r.take(1)
        return [int(v) for v in json.loads(r.blob().decode("utf-8"))]
    return r.ints()


def _put_str(out: List[bytes], s: str) -> None:
    b = s.encode("utf-8")
    out.append(struct.pack("<I", len(b)))
    out.append(b)


def _put_dicts(
    out: List[bytes], dicts: List[Dict[str, int]], strings: Dict[str, int]
) -> None:
    lens: List[int] = []
    keys: List[int] = []
    vals: List[int] = []
    for d in dicts:
        lens.append(len(d))
        for k, v in d.items():
            keys.append(strings.setdefault(k, len(strings)))
            vals.append(v)
    _put_column(out, lens)
    _put_column(out, keys)
    _put_column(out, vals)


def _read_dicts(r: _Reader, n: int, names: List[str]) -> List[Dict[str, int]]:
    lens = _read_column(r)
    keys = _read_column(r)
    vals = _read_column(r)
    if len(lens) != n or len(keys) != len(vals) or sum(lens) != len(keys):
        raise BinaryWireError("inconsistent dict block")
    dicts: List[Dict[str, int]] = []
    pos = 0
    for ln in lens:
        d: Dict[str, int] = {}
        for i in range(pos, pos + ln):
            d[names[keys[i]]] = vals[i]
        pos += ln
        dicts.append(d)
    return dicts


def encode_profile(data: ProfileData) -> bytes:
    """Serialize ``data`` to the binary columnar wire (see module doc)."""
    lines: Dict[SourceLine, int] = {}
    strings: Dict[str, int] = {}

    exps = data.experiments
    line_idx = [lines.setdefault(e.line, len(lines)) for e in exps]

    runs_sorted = [sorted(r.line_samples.items()) for r in data.runs]
    # reserve line-table slots in to_json's first-encounter order
    for samples in runs_sorted:
        for src, _ in samples:
            lines.setdefault(src, len(lines))
    # file strings in line-table order, before any progress-point names
    for src in lines:
        strings.setdefault(src.file, len(strings))

    exp_block: List[bytes] = []
    _put_column(exp_block, line_idx)
    _put_column(exp_block, [e.speedup_pct for e in exps])
    _put_column(exp_block, [e.delay_ns for e in exps])
    _put_column(exp_block, [e.start_ns for e in exps], delta=True)
    _put_column(exp_block, [e.end_ns for e in exps], delta=True)
    _put_column(exp_block, [e.delay_count for e in exps])
    _put_column(exp_block, [e.selected_samples for e in exps])
    _put_dicts(exp_block, [e.visits for e in exps], strings)
    _put_dicts(exp_block, [e.counts_before for e in exps], strings)
    _put_dicts(exp_block, [e.counts_after for e in exps], strings)

    run_block: List[bytes] = []
    _put_column(run_block, [r.runtime_ns for r in data.runs])
    _put_column(run_block, [r.total_delay_ns for r in data.runs])
    _put_column(run_block, [len(s) for s in runs_sorted])
    _put_column(run_block, [lines[src] for s in runs_sorted for src, _ in s])
    _put_column(run_block, [n for s in runs_sorted for _, n in s])

    out: List[bytes] = []
    str_list = list(strings)
    out.append(struct.pack("<I", len(str_list)))
    for s in str_list:
        _put_str(out, s)
    _put_column(out, [strings[src.file] for src in lines])
    _put_column(out, [src.lineno for src in lines])
    out.append(struct.pack("<I", len(exps)))
    out.extend(exp_block)
    out.append(struct.pack("<I", len(data.runs)))
    out.extend(run_block)
    if data.failures:
        fail = json.dumps(
            [f.to_dict() for f in data.failures], separators=(",", ":")
        ).encode("utf-8")
    else:
        fail = b""
    out.append(struct.pack("<I", len(fail)))
    out.append(fail)

    payload = b"".join(out)
    flags = 0
    if len(payload) >= _COMPRESS_MIN:
        packed = zlib.compress(payload, 6)
        if len(packed) < len(payload):
            payload = packed
            flags |= 1
    return MAGIC + bytes([VERSION, flags]) + payload


def is_profile_blob(blob: bytes) -> bool:
    """True when ``blob`` starts like a binary ProfileData document."""
    return len(blob) >= 6 and blob[:4] == MAGIC


def decode_profile(blob: bytes) -> ProfileData:
    """Rebuild a :class:`ProfileData` from :func:`encode_profile` output."""
    if len(blob) < 6 or blob[:4] != MAGIC:
        raise BinaryWireError("not a ProfileData binary document")
    version, flags = blob[4], blob[5]
    if version != VERSION:
        raise BinaryWireError(
            f"unsupported ProfileData binary version: {version}"
        )
    payload = blob[6:]
    if flags & 1:
        payload = zlib.decompress(payload)
    r = _Reader(payload)

    names = [r.string() for _ in range(r.u32())]
    file_idx = _read_column(r)
    linenos = _read_column(r)
    if len(file_idx) != len(linenos):
        raise BinaryWireError("inconsistent line table")
    table = [
        intern_line(names[fi], ln) for fi, ln in zip(file_idx, linenos)
    ]

    data = ProfileData()
    n_exp = r.u32()
    line_i = _read_column(r)
    speedup = _read_column(r)
    delay_ns = _read_column(r)
    start_ns = _read_column(r)
    end_ns = _read_column(r)
    delay_count = _read_column(r)
    selected = _read_column(r)
    visits = _read_dicts(r, n_exp, names)
    before = _read_dicts(r, n_exp, names)
    after = _read_dicts(r, n_exp, names)
    cols = (line_i, speedup, delay_ns, start_ns, end_ns, delay_count, selected)
    if any(len(c) != n_exp for c in cols):
        raise BinaryWireError("inconsistent experiment columns")
    for i in range(n_exp):
        data.add_experiment(ExperimentResult(
            line=table[line_i[i]],
            speedup_pct=speedup[i],
            delay_ns=delay_ns[i],
            start_ns=start_ns[i],
            end_ns=end_ns[i],
            delay_count=delay_count[i],
            selected_samples=selected[i],
            visits=visits[i],
            counts_before=before[i],
            counts_after=after[i],
        ))

    n_runs = r.u32()
    runtime = _read_column(r)
    total_delay = _read_column(r)
    sample_lens = _read_column(r)
    sample_lines = _read_column(r)
    sample_counts = _read_column(r)
    if (
        len(runtime) != n_runs
        or len(total_delay) != n_runs
        or len(sample_lens) != n_runs
        or sum(sample_lens) != len(sample_lines)
        or len(sample_lines) != len(sample_counts)
    ):
        raise BinaryWireError("inconsistent run columns")
    pos = 0
    for i in range(n_runs):
        info = RunInfo(runtime_ns=runtime[i], total_delay_ns=total_delay[i])
        for j in range(pos, pos + sample_lens[i]):
            info.line_samples[table[sample_lines[j]]] = sample_counts[j]
        pos += sample_lens[i]
        data.add_run(info)

    fail = r.blob()
    if fail:
        for fd in json.loads(fail.decode("utf-8")):
            data.add_failure(RunFailure.from_dict(fd))
    return data
