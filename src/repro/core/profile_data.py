"""Combining experiments into a causal profile (§2, "Producing a causal
profile").

Rules from the paper, all implemented here:

* experiments with the same independent variables (line, speedup) are
  combined by *adding* progress-point visits and effective durations;
* lines without a 0% baseline measurement are discarded — the baseline is
  measured separately per line so line-dependent overhead cancels;
* lines with fewer than ``min_speedup_amounts`` distinct speedups are
  discarded (default five, like Coz);
* program speedup for a (line, speedup) group is the percent change in the
  progress period versus that line's baseline: ``1 - p_s / p_0``;
* the phase correction (eq. 8) scales each measured speedup by
  ``(t_obs / s_obs) * (s / T)`` where ``s`` is the line's whole-run sample
  count and ``T`` the whole-run effective duration.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.experiment import ExperimentResult
from repro.core.progress import LatencySpec
from repro.sim.source import SourceLine, intern_line
from repro.stats.bootstrap import bootstrap_pair_se
from repro.stats.regression import Regression, linear_regression


@dataclass
class RunInfo:
    """Whole-run context needed by the phase correction."""

    runtime_ns: int
    total_delay_ns: int
    #: samples per attributed source line over the entire run
    line_samples: Counter = field(default_factory=Counter)

    @property
    def effective_ns(self) -> int:
        return self.runtime_ns - self.total_delay_ns

    def to_dict(self, lines: Optional[Dict[SourceLine, int]] = None) -> Dict[str, Any]:
        """JSON-safe dict.

        With ``lines`` (the document's shared SourceLine -> index intern
        table), line samples are ``[index, count]`` pairs; without it, the
        inline ``[file, lineno, count]`` triples of wire version 1.
        """
        if lines is None:
            samples = [
                [src.file, src.lineno, n] for src, n in sorted(self.line_samples.items())
            ]
        else:
            samples = [
                [lines.setdefault(src, len(lines)), n]
                for src, n in sorted(self.line_samples.items())
            ]
        return {
            "runtime_ns": self.runtime_ns,
            "total_delay_ns": self.total_delay_ns,
            "line_samples": samples,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any], lines: Optional[List] = None) -> "RunInfo":
        info = cls(runtime_ns=d["runtime_ns"], total_delay_ns=d["total_delay_ns"])
        for entry in d["line_samples"]:
            if len(entry) == 2:  # wire v2: [index, count]
                idx, n = entry
                info.line_samples[lines[idx]] = n  # type: ignore[index]
            else:  # wire v1: [file, lineno, count]
                file, lineno, n = entry
                info.line_samples[intern_line(file, lineno)] = n
        return info


@dataclass
class RunFailure:
    """Record of a scheduled run that produced no usable data.

    Failed runs contribute nothing to the causal profile — a partially
    executed run's experiments would skew the phase correction — but they
    are first-class session output: reports, the audit layer, and resumed
    sessions all see exactly which runs failed and why.
    """

    #: index of the run in the session schedule
    index: int
    #: the run's seed (base seed + index)
    seed: int
    #: concrete error class name (``ThreadCrashFault``, ``WorkerHungError``…)
    error_type: str
    message: str
    #: virtual time the run reached before failing (0 when unknown)
    virtual_ns: int = 0
    #: executor attempts consumed before giving up
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "virtual_ns": self.virtual_ns,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunFailure":
        return cls(
            index=d["index"],
            seed=d["seed"],
            error_type=d["error_type"],
            message=d["message"],
            virtual_ns=d.get("virtual_ns", 0),
            attempts=d.get("attempts", 1),
        )

    @classmethod
    def from_error(
        cls, index: int, seed: int, err: BaseException, attempts: int = 1
    ) -> "RunFailure":
        return cls(
            index=index,
            seed=seed,
            error_type=type(err).__name__,
            message=str(err),
            virtual_ns=getattr(err, "virtual_ns", 0),
            attempts=attempts,
        )


class ProfileData:
    """Raw profiler output: experiments plus per-run sampling totals.

    ``failures`` records scheduled runs that produced no data; a session
    with any recorded failure is *degraded* — its profile is built from
    fewer runs than requested and reports must say so.
    """

    def __init__(self) -> None:
        self.experiments: List[ExperimentResult] = []
        self.runs: List[RunInfo] = []
        self.failures: List[RunFailure] = []

    def add_experiment(self, result: ExperimentResult) -> None:
        self.experiments.append(result)

    def add_run(self, info: RunInfo) -> None:
        self.runs.append(info)

    def add_failure(self, failure: RunFailure) -> None:
        self.failures.append(failure)

    @property
    def degraded(self) -> bool:
        """True when the session lost at least one scheduled run."""
        return bool(self.failures)

    def merge(self, other: "ProfileData") -> "ProfileData":
        """Accumulate another profiling run's data (same program!)."""
        self.experiments.extend(other.experiments)
        self.runs.extend(other.runs)
        self.failures.extend(other.failures)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProfileData):
            return NotImplemented
        return (
            self.experiments == other.experiments
            and self.runs == other.runs
            and self.failures == other.failures
        )

    def __repr__(self) -> str:
        tail = f", {len(self.failures)} failed" if self.failures else ""
        return (
            f"ProfileData({len(self.experiments)} experiments, "
            f"{len(self.runs)} runs{tail})"
        )

    # -- wire format (cross-process result transfer) -------------------------------
    #
    # Every field of ExperimentResult and RunInfo is an int, a string, or a
    # container of those, so the JSON round trip is lossless: merging
    # deserialized copies yields data equal to merging the originals.  This
    # is what the parallel executor ships back from worker processes.
    #
    # Version 2 interns source locations: a top-level ``"lines"`` table of
    # ``[file, lineno]`` pairs (first-encounter order over experiments then
    # runs), with experiments' ``"line"`` and runs' ``"line_samples"`` keyed
    # by index.  A session profiles a handful of lines across hundreds of
    # experiments, so the table collapses the dominant repeated strings in
    # the payload workers ship back.  ``from_json`` still accepts version 1
    # (inline pairs) — journals and on-disk profiles recorded before the
    # table existed stay readable.

    WIRE_VERSION = 2

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to the wire format (a JSON document)."""
        lines: Dict[SourceLine, int] = {}
        experiments = [e.to_dict(lines) for e in self.experiments]
        runs = [r.to_dict(lines) for r in self.runs]
        doc: Dict[str, Any] = {
            "version": self.WIRE_VERSION,
            "lines": [[src.file, src.lineno] for src in lines],
            "experiments": experiments,
            "runs": runs,
        }
        # emitted only when present: a clean session's wire form is
        # byte-identical to pre-failure-record versions (golden traces)
        if self.failures:
            doc["failures"] = [f.to_dict() for f in self.failures]
        return json.dumps(doc, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ProfileData":
        """Rebuild from :meth:`to_json` output (wire version 1 or 2)."""
        doc = json.loads(text)
        version = doc.get("version")
        if version not in (1, cls.WIRE_VERSION):
            raise ValueError(f"unsupported ProfileData wire version: {version!r}")
        table = [intern_line(file, lineno) for file, lineno in doc.get("lines", [])]
        data = cls()
        for ed in doc["experiments"]:
            data.add_experiment(ExperimentResult.from_dict(ed, table))
        for rd in doc["runs"]:
            data.add_run(RunInfo.from_dict(rd, table))
        for fd in doc.get("failures", []):
            data.add_failure(RunFailure.from_dict(fd))
        return data

    def to_bytes(self) -> bytes:
        """Serialize to the binary columnar wire (:mod:`repro.core.binwire`).

        The compact counterpart of :meth:`to_json` — same document, packed
        integer columns instead of text.  ``from_bytes(to_bytes(d)).to_json()``
        is byte-identical to ``d.to_json()``.
        """
        from repro.core import binwire

        return binwire.encode_profile(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ProfileData":
        """Rebuild from :meth:`to_bytes` output."""
        from repro.core import binwire

        return binwire.decode_profile(blob)

    # -- whole-run totals ----------------------------------------------------------

    def total_effective_ns(self) -> int:
        return sum(r.effective_ns for r in self.runs)

    def total_line_samples(self, line: SourceLine) -> int:
        return sum(r.line_samples.get(line, 0) for r in self.runs)

    def progress_names(self) -> List[str]:
        names = set()
        for e in self.experiments:
            names.update(e.visits)
        return sorted(names)

    def lines(self) -> List[SourceLine]:
        return sorted({e.line for e in self.experiments})


@dataclass
class ProfilePoint:
    """One (virtual speedup, program speedup) point of a line's graph."""

    speedup_pct: int
    program_speedup: float      # fraction: 0.045 = 4.5% program speedup
    se: float                   # bootstrap standard error (fraction)
    n_experiments: int
    visits: int                 # combined progress visits in the group

    @property
    def program_speedup_pct(self) -> float:
        return 100.0 * self.program_speedup


@dataclass
class LineProfile:
    """The causal profile graph of one source line for one progress point."""

    line: SourceLine
    progress_point: str
    points: List[ProfilePoint]
    #: eq. 8 correction factor that was applied (1.0 when disabled)
    phase_factor: float
    #: whole-run samples attributed to this line (s in eq. 6)
    total_samples: int

    _regression: Optional[Regression] = field(default=None, repr=False)

    @property
    def slope(self) -> float:
        """Coz's ranking metric: OLS slope of program speedup vs. speedup.

        Both axes as fractions, so a slope of 1.0 means program speedup
        tracks line speedup one-for-one (a perfectly serial line).
        """
        return self.regression.slope

    @property
    def regression(self) -> Regression:
        if self._regression is None:
            xs = [p.speedup_pct / 100.0 for p in self.points]
            ys = [p.program_speedup for p in self.points]
            self._regression = linear_regression(xs, ys)
        return self._regression

    @property
    def max_program_speedup(self) -> float:
        return max(p.program_speedup for p in self.points)

    def point_at(self, speedup_pct: int) -> Optional[ProfilePoint]:
        for p in self.points:
            if p.speedup_pct == speedup_pct:
                return p
        return None

    def is_contended(self, threshold: float = 0.05) -> bool:
        """Downward-sloping profile: optimizing this line *hurts* (§2)."""
        return self.slope < -threshold


def _combined_period(group: Sequence[ExperimentResult], point: str):
    """Combined progress period over a group of same-variable experiments."""
    visits = sum(e.visits.get(point, 0) for e in group)
    eff = sum(e.effective_ns for e in group)
    if visits <= 0 or eff <= 0:
        return None, visits
    return eff / visits, visits


def _group_speedup(
    baseline: Sequence[ExperimentResult],
    group: Sequence[ExperimentResult],
    point: str,
) -> Optional[float]:
    p0, _ = _combined_period(baseline, point)
    ps, _ = _combined_period(group, point)
    if p0 is None or ps is None:
        return None
    return 1.0 - ps / p0


def build_line_profile(
    data: ProfileData,
    line: SourceLine,
    point: str,
    phase_correction: bool = True,
    n_boot: int = 200,
    seed: int = 0,
) -> Optional[LineProfile]:
    """Build one line's causal profile graph, or None if data is unusable."""
    by_speedup: Dict[int, List[ExperimentResult]] = defaultdict(list)
    for e in data.experiments:
        if e.line == line:
            by_speedup[e.speedup_pct].append(e)
    baseline = by_speedup.get(0)
    if not baseline:
        return None  # no 0% measurement: cannot normalize (paper rule)

    # phase correction factor (eq. 8), shared across the line's groups
    factor = 1.0
    total_s = data.total_line_samples(line)
    if phase_correction:
        t_obs = sum(e.duration_ns for e in data.experiments if e.line == line)
        s_obs = sum(e.selected_samples for e in data.experiments if e.line == line)
        total_t = data.total_effective_ns()
        if s_obs > 0 and total_t > 0:
            factor = min(1.0, (t_obs / s_obs) * (total_s / total_t))

    points: List[ProfilePoint] = []
    for pct in sorted(by_speedup):
        group = by_speedup[pct]
        raw = _group_speedup(baseline, group, point)
        if raw is None:
            continue
        se = _bootstrap_group_se(baseline, group, point, n_boot, seed + pct)
        points.append(
            ProfilePoint(
                speedup_pct=pct,
                program_speedup=raw * factor,
                se=se * factor,
                n_experiments=len(group),
                visits=sum(e.visits.get(point, 0) for e in group),
            )
        )
    if len(points) < 2:
        return None
    return LineProfile(
        line=line,
        progress_point=point,
        points=points,
        phase_factor=factor,
        total_samples=total_s,
    )


def _bootstrap_group_se(
    baseline: Sequence[ExperimentResult],
    group: Sequence[ExperimentResult],
    point: str,
    n_boot: int,
    seed: int,
) -> float:
    """SE of the group speedup by resampling experiments in both groups."""
    return bootstrap_pair_se(
        baseline,
        group,
        lambda b, g: _group_speedup(b, g, point),
        n_boot=n_boot,
        seed=seed,
    )


class CausalProfile:
    """All line graphs for one progress point, ranked Coz-style."""

    def __init__(self, point: str, lines: List[LineProfile]) -> None:
        self.point = point
        self.lines = lines

    def ranked(self) -> List[LineProfile]:
        """Sorted by regression slope, steepest upward first (§2)."""
        return sorted(self.lines, key=lambda lp: lp.slope, reverse=True)

    def contended(self, threshold: float = 0.05) -> List[LineProfile]:
        """Lines whose profiles slope downward: contention signatures."""
        return sorted(
            (lp for lp in self.lines if lp.is_contended(threshold)),
            key=lambda lp: lp.slope,
        )

    def get(self, line: SourceLine) -> Optional[LineProfile]:
        for lp in self.lines:
            if lp.line == line:
                return lp
        return None

    def __len__(self) -> int:
        return len(self.lines)


def build_causal_profile(
    data: ProfileData,
    point: str,
    min_speedup_amounts: int = 5,
    phase_correction: bool = True,
    n_boot: int = 200,
    seed: int = 0,
) -> CausalProfile:
    """Build the full causal profile for one progress point.

    ``min_speedup_amounts`` is Coz's default filter: lines measured at fewer
    than five distinct virtual speedups are discarded (a plot showing only a
    75% speedup is not useful, §2).
    """
    lines = []
    for line in data.lines():
        lp = build_line_profile(
            data, line, point, phase_correction=phase_correction,
            n_boot=n_boot, seed=seed,
        )
        if lp is None:
            continue
        if len(lp.points) < min_speedup_amounts:
            continue
        lines.append(lp)
    return CausalProfile(point, lines)


@dataclass
class LatencyPoint:
    """One (virtual speedup, latency change) point."""

    speedup_pct: int
    latency_ns: float
    latency_reduction: float  # fraction: positive = latency improved
    n_experiments: int


def build_latency_profile(
    data: ProfileData,
    line: SourceLine,
    spec: LatencySpec,
) -> Optional[List[LatencyPoint]]:
    """Latency-vs-speedup series for one line via Little's law (§3.3)."""
    by_speedup: Dict[int, List[ExperimentResult]] = defaultdict(list)
    for e in data.experiments:
        if e.line == line:
            by_speedup[e.speedup_pct].append(e)
    if 0 not in by_speedup:
        return None

    def combined_latency(group: Sequence[ExperimentResult]) -> Optional[float]:
        lat = [e.latency_ns(spec.begin, spec.end) for e in group]
        lat = [v for v in lat if v is not None]
        if not lat:
            return None
        return sum(lat) / len(lat)

    w0 = combined_latency(by_speedup[0])
    if w0 is None or w0 <= 0:
        return None
    out = []
    for pct in sorted(by_speedup):
        w = combined_latency(by_speedup[pct])
        if w is None:
            continue
        out.append(
            LatencyPoint(
                speedup_pct=pct,
                latency_ns=w,
                latency_reduction=1.0 - w / w0,
                n_experiments=len(by_speedup[pct]),
            )
        )
    return out if len(out) >= 2 else None
