"""The causal profiler: the paper's primary contribution.

Public surface:

* :class:`~repro.core.profiler.CausalProfiler` — the profiler hook; install
  it on a :class:`~repro.sim.program.Program` run;
* :class:`~repro.core.config.CozConfig` — all tunables (sampling, experiment
  pacing, speedup grid, overhead model);
* :class:`~repro.core.progress.ProgressPoint` / :class:`~repro.core.progress.
  LatencySpec` — throughput and latency progress points;
* :func:`~repro.core.profile_data.build_causal_profile` — turn raw
  experiments into ranked line graphs;
* :mod:`~repro.core.analysis` / :mod:`~repro.core.report` — interpretation
  and rendering.
"""

from repro.core.analysis import Opportunity, predict_program_speedup, summarize, top_line
from repro.core.config import DEFAULT_SPEEDUPS, CozConfig
from repro.core.experiment import ExperimentResult
from repro.core.profile_data import (
    CausalProfile,
    LatencyPoint,
    LineProfile,
    ProfileData,
    ProfilePoint,
    RunFailure,
    RunInfo,
    build_causal_profile,
    build_latency_profile,
    build_line_profile,
)
from repro.core.profiler import CausalProfiler
from repro.core.progress import LatencySpec, ProgressPoint, ProgressTracker
from repro.core.report import render_line_graph, render_profile, to_coz_format, to_csv
from repro.core.speedup import DelayEngine

__all__ = [
    "Opportunity",
    "predict_program_speedup",
    "summarize",
    "top_line",
    "DEFAULT_SPEEDUPS",
    "CozConfig",
    "ExperimentResult",
    "CausalProfile",
    "LatencyPoint",
    "LineProfile",
    "ProfileData",
    "ProfilePoint",
    "RunFailure",
    "RunInfo",
    "build_causal_profile",
    "build_latency_profile",
    "build_line_profile",
    "CausalProfiler",
    "LatencySpec",
    "ProgressPoint",
    "ProgressTracker",
    "render_line_graph",
    "render_profile",
    "to_coz_format",
    "to_csv",
    "DelayEngine",
]
