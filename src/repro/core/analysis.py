"""Interpreting causal profiles (§2 'Interpreting a causal profile', §4.3).

Ranking and contention detection live on
:class:`~repro.core.profile_data.CausalProfile`; this module adds the
cross-cutting analyses the paper's evaluation performs:

* predicting the program speedup of a *concrete* optimization that speeds a
  line up by x% (the §4.3 accuracy methodology: ferret's +27% line speedup
  => predicted 21.4% program speedup);
* summarizing a profile into the "top optimization opportunities" view used
  in Table 4.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional

from repro.core.profile_data import CausalProfile, LineProfile
from repro.sim.source import SourceLine


def predict_program_speedup(profile: LineProfile, line_speedup_pct: float) -> float:
    """Predicted program speedup (fraction) if the line gets ``pct`` faster.

    Linearly interpolates between measured virtual-speedup points; clamps to
    the measured range (Coz never extrapolates beyond 100%).
    """
    pts = sorted(profile.points, key=lambda p: p.speedup_pct)
    if not pts:
        raise ValueError("profile has no points")
    x = max(pts[0].speedup_pct, min(line_speedup_pct, pts[-1].speedup_pct))
    xs = [p.speedup_pct for p in pts]
    i = bisect_left(xs, x)
    if i < len(xs) and xs[i] == x:
        return pts[i].program_speedup
    lo, hi = pts[i - 1], pts[i]
    frac = (x - lo.speedup_pct) / (hi.speedup_pct - lo.speedup_pct)
    return lo.program_speedup + frac * (hi.program_speedup - lo.program_speedup)


@dataclass
class Opportunity:
    """One ranked entry of a profile summary."""

    rank: int
    line: SourceLine
    slope: float
    max_program_speedup: float
    contended: bool
    n_points: int

    @property
    def kind(self) -> str:
        if self.contended:
            return "contention"
        if self.slope > 0.02:
            return "optimize"
        return "no-impact"


def summarize(
    profile: CausalProfile,
    top: Optional[int] = None,
    contention_threshold: float = 0.05,
) -> List[Opportunity]:
    """Ranked optimization opportunities, Coz's default presentation."""
    out = []
    for i, lp in enumerate(profile.ranked()):
        out.append(
            Opportunity(
                rank=i + 1,
                line=lp.line,
                slope=lp.slope,
                max_program_speedup=lp.max_program_speedup,
                contended=lp.is_contended(contention_threshold),
                n_points=len(lp.points),
            )
        )
    return out[:top] if top is not None else out


def top_line(profile: CausalProfile) -> Optional[SourceLine]:
    """The single best optimization opportunity (Table 4's right column)."""
    ranked = profile.ranked()
    return ranked[0].line if ranked else None
