"""Virtual speedup delay accounting (§3.4).

The sampled virtual-speedup protocol, exactly as in the paper:

* every sample that falls in the selected line means *all other threads*
  must pause for ``delay_ns`` (= speedup% x sampling period, eq. 4);
* inter-thread pausing is mediated by counters, not signals: a shared
  **global** count of required pauses, and a per-thread **local** count of
  pauses already executed (or credited);
* the *minimal delay* optimization (§3.4.3): a thread that executed the
  selected line increments only its **local** count — so if every thread
  runs the line equally often, nobody pauses at all.  The invariant is
  ``local count == samples-in-line + pauses`` for every thread;
* a thread must catch up (``local < global`` => pause) after processing its
  samples, before any potentially blocking call (Table 2), and before any
  potentially waking call (Table 1);
* a thread woken by a peer is *credited*: ``local = global`` with no pause;
  a thread woken by a timer (sleep/IO) pays its accumulated delays;
* nanosleep may overshoot; the excess is tracked per thread and subtracted
  from future pauses ("Ensuring accurate timing").

Accounting instrumentation: alongside ``total_inserted_ns`` (pauses
actually taken) the engine tracks ``total_required_ns`` (nominal
count x delay pauses owed) so the excess algebra
``inserted == required + outstanding excess`` is checkable at any time, and
every counter mutation is narrated to an optional
:class:`~repro.sim.hooks.AuditHook` for the invariant audit layer
(:mod:`repro.core.audit`).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.sim.hooks import AuditHook
from repro.sim.thread import VThread

_LOCAL = "coz_local"
_EXCESS = "coz_excess"


class DelayEngine:
    """Counter-based delay coordination for one experiment at a time."""

    def __init__(
        self,
        minimal: bool = True,
        jitter_ns: int = 0,
        seed: int = 0,
        auditor: Optional[AuditHook] = None,
    ) -> None:
        self.minimal = minimal
        self.jitter_ns = jitter_ns
        self._rng = random.Random(seed)
        self.active = False
        self.delay_ns = 0
        self.global_count = 0
        #: pauses actually inserted, in ns, across all threads (diagnostics)
        self.total_inserted_ns = 0
        #: nominal pauses owed (count x delay), before excess/jitter adjustment
        self.total_required_ns = 0
        self.auditor = auditor

    # -- experiment lifecycle --------------------------------------------------

    def begin(self, delay_ns: int, threads: Iterable[VThread]) -> None:
        """Start an experiment with a per-sample delay of ``delay_ns``."""
        self.active = True
        self.delay_ns = delay_ns
        self.global_count = 0
        threads = list(threads)
        for t in threads:
            t.prof[_LOCAL] = 0
        if self.auditor is not None:
            self.auditor.on_delay_begin(self, delay_ns, threads)

    def end(self) -> int:
        """Stop inserting delays; returns the final global count."""
        self.active = False
        count = self.global_count
        if self.auditor is not None:
            self.auditor.on_delay_end(count, self.delay_ns)
        self.delay_ns = 0
        return count

    # -- per-thread protocol ---------------------------------------------------

    def on_hits(self, thread: VThread, hits: int) -> int:
        """``hits`` processed samples fell in the selected line.

        Returns the pause to insert in *this* thread right now (normally 0
        under the minimal-delay scheme, since executing the line is self-
        crediting).
        """
        if not self.active or hits <= 0:
            return self.reconcile(thread)
        thread.prof[_LOCAL] = thread.prof.get(_LOCAL, 0) + hits
        if self.auditor is not None:
            self.auditor.on_delay_hits(thread, hits)
        if not self.minimal:
            # pre-optimization scheme (ablation): the global count rises on
            # every hit, so *all* other threads pause even when they execute
            # the selected line just as often (num_threads - 1 pauses/hit).
            self.global_count += hits
        # minimal scheme (§3.4.3): only the local count was incremented; the
        # reconcile below raises the global when local exceeds it, so other
        # threads pause — but a thread that runs the line itself is
        # self-credited and never pauses for its own executions.
        return self.reconcile(thread)

    def reconcile(self, thread: VThread) -> int:
        """Catch a thread up with the global count; returns pause ns."""
        if not self.active:
            return 0
        local = thread.prof.get(_LOCAL, 0)
        if local > self.global_count:
            self.global_count = local
            return 0
        if local == self.global_count:
            return 0
        count_delta = self.global_count - local
        required = count_delta * self.delay_ns
        thread.prof[_LOCAL] = self.global_count
        pause = self._apply_excess(thread, required)
        if self.auditor is not None:
            self.auditor.on_delay_pause(thread, count_delta, required, pause)
        return pause

    def credit(self, thread: VThread) -> None:
        """Thread was woken by a peer: its waker already paid the delays."""
        if self.active:
            count_delta = self.global_count - thread.prof.get(_LOCAL, 0)
            thread.prof[_LOCAL] = self.global_count
            if self.auditor is not None:
                self.auditor.on_delay_credit(thread, count_delta)

    def on_thread_created(self, child: VThread, parent: Optional[VThread]) -> None:
        """A new thread inherits its parent's local count (§3.4, 'Thread
        creation'): delays inserted into the parent also delayed the spawn."""
        if not self.active:
            return
        if parent is not None:
            child.prof[_LOCAL] = parent.prof.get(_LOCAL, 0)
        else:
            child.prof[_LOCAL] = self.global_count
        if self.auditor is not None:
            self.auditor.on_delay_inherit(child, child.prof[_LOCAL])

    def local_count(self, thread: VThread) -> int:
        """A thread's local delay count (diagnostics/audit)."""
        return thread.prof.get(_LOCAL, 0)

    # -- nanosleep excess ----------------------------------------------------------

    def outstanding_excess_ns(self, threads: Iterable[VThread]) -> int:
        """Total nanosleep overshoot inserted but not yet compensated."""
        return sum(t.prof.get(_EXCESS, 0) for t in threads)

    def max_outstanding_excess_ns(self, threads: Iterable[VThread]) -> int:
        """Largest per-thread uncompensated overshoot (critical-path share)."""
        return max((t.prof.get(_EXCESS, 0) for t in threads), default=0)

    def _apply_excess(self, thread: VThread, required: int) -> int:
        """Adjust a required pause for previously-overshot sleeps."""
        self.total_required_ns += required
        excess = thread.prof.get(_EXCESS, 0)
        if excess >= required:
            thread.prof[_EXCESS] = excess - required
            return 0
        pause = required - excess
        thread.prof[_EXCESS] = 0
        if self.jitter_ns > 0:
            overshoot = self._rng.randrange(self.jitter_ns + 1)
            thread.prof[_EXCESS] = overshoot
            pause += overshoot
        self.total_inserted_ns += pause
        return pause
