"""Reproduction of "Coz: Finding Code that Counts with Causal Profiling".

The package has four layers:

* :mod:`repro.sim` — a deterministic discrete-event execution simulator
  (virtual threads, cores, synchronization, per-thread IP sampling): the
  substrate standing in for Linux + perf_event + pthreads;
* :mod:`repro.core` — the causal profiler itself: performance experiments,
  sampled virtual speedups with counter-based delay coordination, progress
  points (throughput and latency), phase correction, profile analysis;
* :mod:`repro.plan` — pluggable experiment planners: the default static
  round-robin schedule, and an adaptive successive-halving planner with
  variance-aware early stopping;
* :mod:`repro.baselines` — gprof- and perf-style conventional profilers;
* :mod:`repro.apps` + :mod:`repro.harness` — the paper's evaluation:
  simulated Memcached, SQLite, and PARSEC workloads with their
  pre/post-optimization variants, and the machinery regenerating every
  table and figure.

Quickstart::

    from repro import CausalProfiler, CozConfig, ProgressPoint
    from repro.apps.example import build_example

    spec = build_example()
    profiler = CausalProfiler(CozConfig(scope=spec.scope), spec.progress_points)
    spec.build(seed=0).run(hook=profiler)
"""

from repro.core import (
    CausalProfile,
    CausalProfiler,
    CozConfig,
    LatencySpec,
    LineProfile,
    ProfileData,
    ProgressPoint,
    build_causal_profile,
    predict_program_speedup,
    render_line_graph,
    render_profile,
    summarize,
    to_coz_format,
    top_line,
)
from repro.harness.comparison import compare_app
from repro.harness.request import ExecutionConfig, ResilienceConfig
from repro.harness.runner import (
    ProfileOutcome,
    ProfileRequest,
    profile_app,
    profile_program,
    run_profile_session,
)
from repro.plan import (
    AdaptivePlanner,
    ExperimentPlan,
    PlanConfig,
    Planner,
    PlanReport,
    StaticPlanner,
)
from repro.sim import (
    MS,
    SEC,
    US,
    Engine,
    Program,
    RunResult,
    Scope,
    SimConfig,
    SourceLine,
    VThread,
    line,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePlanner",
    "CausalProfile",
    "CausalProfiler",
    "CozConfig",
    "ExecutionConfig",
    "ExperimentPlan",
    "LatencySpec",
    "LineProfile",
    "PlanConfig",
    "PlanReport",
    "Planner",
    "ProfileData",
    "ProfileOutcome",
    "ProfileRequest",
    "ProgressPoint",
    "ResilienceConfig",
    "StaticPlanner",
    "compare_app",
    "profile_app",
    "profile_program",
    "run_profile_session",
    "build_causal_profile",
    "predict_program_speedup",
    "render_line_graph",
    "render_profile",
    "summarize",
    "to_coz_format",
    "top_line",
    "MS",
    "SEC",
    "US",
    "Engine",
    "Program",
    "RunResult",
    "Scope",
    "SimConfig",
    "SourceLine",
    "VThread",
    "line",
    "__version__",
]
