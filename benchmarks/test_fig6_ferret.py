"""Figures 5 & 6: ferret's pipeline and its causal profile.

The paper's profile shows the indexing (line 320) and ranking (line 358)
queries as the top opportunities, image segmentation (line 255) third, and
feature extraction unimportant — which justified reallocating threads from
extraction to the other stages (Figure 5's colors).
"""


from benchmarks.conftest import run_once
from repro.apps import registry
from repro.apps.ferret import (
    LINE_EXTRACT,
    LINE_INDEX,
    LINE_RANK,
    LINE_SEG,
)
from repro.core.config import CozConfig
from repro.core.report import render_profile
from repro.harness.parallel import AUTO_JOBS
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def test_fig6_ferret_causal_profile(benchmark):
    # registry-built so the profiling runs can fan out over worker processes
    spec = registry.build("ferret", n_queries=1500)
    cfg = CozConfig(
        scope=spec.scope,
        experiment_duration_ns=MS(25),
        speedup_values=(0, 15, 30, 45),
        zero_speedup_prob=0.4,
    )

    def regen():
        return profile_app(spec, runs=14, coz_config=cfg, jobs=AUTO_JOBS)

    out = run_once(benchmark, regen)
    print()
    print(render_profile(out.profile))

    profile = out.profile
    idx, rank = profile.get(LINE_INDEX), profile.get(LINE_RANK)
    seg, ext = profile.get(LINE_SEG), profile.get(LINE_EXTRACT)
    assert idx is not None and rank is not None and seg is not None

    impact = {
        "segment (255)": seg.slope,
        "index (320)": idx.slope,
        "rank (358)": rank.slope,
        "extract (280)": ext.slope if ext is not None else 0.0,
    }
    print("Figure 5 stage impacts (slope):")
    for stage, slope in impact.items():
        color = "red" if slope > 0.15 else ("orange" if slope > 0.05 else "green")
        print(f"  {stage:<14} {slope:+.3f}  [{color}]")

    # Figure 6's ordering: indexing & ranking on top, segmentation close,
    # extraction negligible (it has ~1/20th of the other stages' work)
    ext_slope = impact["extract (280)"]
    assert idx.slope > ext_slope
    assert rank.slope > ext_slope
    assert seg.slope > ext_slope
    assert max(idx.slope, rank.slope, seg.slope) > 0.1
    assert ext_slope < 0.1
