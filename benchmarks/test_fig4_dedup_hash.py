"""Figure 4: dedup hash-bucket collisions before / mid / after optimization.

Regenerated from first principles: the actual chained hash table with the
actual three hash functions (sum+shift, sum, XOR of 32-bit chunks) over
SHA1-like keys.  Paper numbers: utilization 2.3% -> 54.4% -> 82.0%, mean
chain 76.7 -> (n/a) -> 2.09.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.hashtable import figure4_stats


def test_fig4_bucket_collisions(benchmark):
    stats = run_once(benchmark, lambda: figure4_stats(n_keys=7000, buckets=4096))
    by_name = {s.variant: s for s in stats}

    print()
    print(f"{'variant':<10} {'utilization':>12} {'mean chain':>11}  (paper: 2.3%/76.7, 54.4%/-, 82.0%/2.09)")
    for s in stats:
        print(f"{s.variant:<10} {100*s.utilization:>11.1f}% {s.mean_chain:>11.2f}")
        hist = sorted(s.histogram.items())
        bars = "  ".join(f"{n}:{c}" for n, c in hist[:8])
        print(f"           chain histogram (len:buckets): {bars}"
              + (" ..." if len(hist) > 8 else ""))

    orig, mid, xor = by_name["original"], by_name["noshift"], by_name["xor"]
    assert orig.utilization < 0.05
    assert mid.utilization > 5 * orig.utilization
    assert xor.utilization > 0.7
    assert orig.mean_chain > 25 * xor.mean_chain
    assert xor.mean_chain == pytest.approx(2.09, abs=0.15)  # paper: 2.09 exactly
