"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures on the
simulator and prints the rows/series it reports, then asserts the *shape*
facts the paper claims (who wins, rough factors, slopes).  Absolute numbers
come from the simulated machine, not the authors' 64-core testbed.

Benchmarks run once per session (``pedantic(rounds=1)``): the interesting
output is the regenerated artifact, not the harness's own wall-clock time.
"""



def run_once(benchmark, fn):
    """Run a figure/table regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
