"""Figure 3: equivalence of virtual and actual speedups.

For a two-thread f/g program we sweep the speedup of f's line and compare
the *actual* effect (rebuilding the program with f cheaper) against the
*virtual* effect measured by the profiler.  This is the soundness experiment
behind §3.4's derivation (eqs. 1-4).
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.config import CozConfig
from repro.core.progress import ProgressPoint
from repro.harness.runner import profile_program
from repro.sim import MS, US, BarrierWait, Join, Program, Progress, Scope, SimConfig, Spawn, Work, line
from repro.sim.sync import Barrier

F = line("fg.c:10")
G = line("fg.c:20")
F_NS = MS(4.0)
G_NS = MS(3.0)


def build(f_factor=1.0, rounds=400):
    f_cost = int(F_NS * f_factor)

    def make(seed=0):
        def main(t):
            b = Barrier(2)

            def ft(t2):
                for _ in range(rounds):
                    if f_cost:
                        yield Work(F, f_cost)
                    if (yield BarrierWait(b)):
                        yield Progress("round")

            def gt(t2):
                for _ in range(rounds):
                    yield Work(G, G_NS)
                    if (yield BarrierWait(b)):
                        yield Progress("round")

            a = yield Spawn(ft)
            c = yield Spawn(gt)
            yield Join(a)
            yield Join(c)

        # sample_batch=2: process samples almost immediately.  The paper
        # notes that more frequent processing buys accuracy at overhead
        # cost; near critical-path transition points the default batch of
        # ten lets delay credit leak across the barrier wake, overstating
        # speedups by ~10pp right at the knee.
        cfg = SimConfig(
            seed=seed, cores=4, sample_period_ns=US(250), quantum_ns=MS(0.5),
            sample_batch=2,
        )
        return Program(main, config=cfg)

    return make


def actual_speedup(pct):
    base = build(1.0)(0).run()
    opt = build(1.0 - pct / 100.0)(0).run()
    p0 = base.runtime_ns / base.progress("round")
    p1 = opt.runtime_ns / opt.progress("round")
    return 1.0 - p1 / p0


def test_fig3_virtual_equals_actual(benchmark):
    speedups = (20, 40, 60, 80, 100)

    def regen():
        outcome = profile_program(
            build(1.0),
            [ProgressPoint("round")],
            "round",
            runs=10,
            coz_config=CozConfig(
                scope=Scope.all_main(),
                fixed_line=F,
                speedup_schedule=[0, 20, 0, 40, 0, 60, 0, 80, 0, 100],
                experiment_duration_ns=MS(80),
            ),
        )
        lp = outcome.profile.get(F)
        rows = []
        for pct in speedups:
            rows.append((pct, actual_speedup(pct), lp.point_at(pct).program_speedup))
        return rows

    rows = run_once(benchmark, regen)
    print()
    print(f"{'line speedup':>12} {'actual':>9} {'virtual':>9} {'error':>7}")
    for pct, actual, virtual in rows:
        print(f"{pct:>11}% {100*actual:>8.2f}% {100*virtual:>8.2f}% "
              f"{100*abs(actual-virtual):>6.2f}pp")

    for pct, actual, virtual in rows:
        # the equivalence claim: within a few points everywhere on the sweep
        assert virtual == pytest.approx(actual, abs=0.06)
    # and the truth itself is the f-critical-path curve: rises then plateaus
    assert rows[0][1] > 0.01
    assert rows[-1][1] == pytest.approx(0.25, abs=0.01)
