"""Table 3: the summary of optimization results.

Every application is run ten times before and after the paper's
optimization; speedup is (t0 - t_opt)/t0 with Efron-bootstrap standard
errors and one-tailed Mann-Whitney U significance — the paper's exact
methodology.  Paper values:

    blackscholes   2.56% ± 0.41%     fluidanimate  37.5%  ± 0.56%
    dedup          8.95% ± 0.27%     streamcluster 68.4%  ± 1.12%
    ferret        21.27% ± 0.17%     swaptions     15.8%  ± 1.10%
    Memcached      9.39% ± 0.95%     SQLite        25.60% ± 1.00%
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.comparison import compare_app
from repro.harness.parallel import AUTO_JOBS
from repro.harness.tables import render_table3

#: (registry name, builder kwargs, paper speedup %) — each app's baseline
#: and optimized variants come from the registry, so the 10 runs per
#: variant can fan out over worker processes
CASES = [
    ("blackscholes", {"n_rounds": 150}, 2.56),
    ("dedup", {"n_blocks": 1500}, 8.95),
    ("ferret", {"n_queries": 800}, 21.27),
    ("fluidanimate", {"n_phases": 120}, 37.5),
    ("streamcluster", {"n_phases": 120}, 68.4),
    ("swaptions", {"n_iters": 250}, 15.8),
    ("memcached", {"n_requests": 8000}, 9.39),
    ("sqlite", {"inserts_per_thread": 800}, 25.6),
]


def test_table3_summary_of_optimization_results(benchmark):
    def regen():
        rows = []
        for name, kwargs, _paper in CASES:
            rows.append(compare_app(name, runs=10, jobs=AUTO_JOBS, **kwargs))
        return rows

    rows = run_once(benchmark, regen)
    print()
    print(render_table3(rows))
    print("paper:", ", ".join(f"{n}={p}%" for n, _, p in CASES))

    by_name = {r.name: r for r in rows}
    for name, _, paper_pct in CASES:
        r = by_name[name]
        # shape: within a few points of the paper's value...
        assert r.speedup_pct == pytest.approx(paper_pct, abs=max(2.0, paper_pct * 0.35)), name
        # ...and statistically significant at the paper's level
        assert r.stats.significant(alpha=0.001), name

    # ordering claims: streamcluster >> fluidanimate > sqlite > ferret >
    # swaptions > memcached ~ dedup > blackscholes
    s = lambda n: by_name[n].speedup_pct
    assert s("streamcluster") > s("fluidanimate") > s("sqlite") > s("ferret")
    assert s("ferret") > s("swaptions") > s("memcached")
    assert s("memcached") > s("blackscholes")
    assert s("dedup") > s("blackscholes")
