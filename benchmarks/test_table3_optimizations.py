"""Table 3: the summary of optimization results.

Every application is run ten times before and after the paper's
optimization; speedup is (t0 - t_opt)/t0 with Efron-bootstrap standard
errors and one-tailed Mann-Whitney U significance — the paper's exact
methodology.  Paper values:

    blackscholes   2.56% ± 0.41%     fluidanimate  37.5%  ± 0.56%
    dedup          8.95% ± 0.27%     streamcluster 68.4%  ± 1.12%
    ferret        21.27% ± 0.17%     swaptions     15.8%  ± 1.10%
    Memcached      9.39% ± 0.95%     SQLite        25.60% ± 1.00%
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.blackscholes import build_blackscholes
from repro.apps.dedup import build_dedup
from repro.apps.ferret import DEFAULT_THREADS, OPTIMIZED_THREADS, build_ferret
from repro.apps.fluidanimate import build_fluidanimate
from repro.apps.memcached import build_memcached
from repro.apps.sqlite import build_sqlite
from repro.apps.streamcluster import build_streamcluster
from repro.apps.swaptions import build_swaptions
from repro.harness.comparison import compare_builds
from repro.harness.tables import render_table3

#: (name, baseline factory, optimized factory, paper speedup %)
CASES = [
    ("blackscholes",
     lambda: build_blackscholes(False, n_rounds=150),
     lambda: build_blackscholes(True, n_rounds=150), 2.56),
    ("dedup",
     lambda: build_dedup("original", n_blocks=1500),
     lambda: build_dedup("xor", n_blocks=1500), 8.95),
    ("ferret",
     lambda: build_ferret(DEFAULT_THREADS, n_queries=800),
     lambda: build_ferret(OPTIMIZED_THREADS, n_queries=800), 21.27),
    ("fluidanimate",
     lambda: build_fluidanimate(False, n_phases=120),
     lambda: build_fluidanimate(True, n_phases=120), 37.5),
    ("streamcluster",
     lambda: build_streamcluster(False, n_phases=120),
     lambda: build_streamcluster(True, n_phases=120), 68.4),
    ("swaptions",
     lambda: build_swaptions(False, n_iters=250),
     lambda: build_swaptions(True, n_iters=250), 15.8),
    ("memcached",
     lambda: build_memcached(False, n_requests=8000),
     lambda: build_memcached(True, n_requests=8000), 9.39),
    ("sqlite",
     lambda: build_sqlite(False, inserts_per_thread=800),
     lambda: build_sqlite(True, inserts_per_thread=800), 25.6),
]


def test_table3_summary_of_optimization_results(benchmark):
    def regen():
        rows = []
        for name, base, opt, _paper in CASES:
            rows.append(compare_builds(name, base().build, opt().build, runs=10))
        return rows

    rows = run_once(benchmark, regen)
    print()
    print(render_table3(rows))
    print("paper:", ", ".join(f"{n}={p}%" for n, _, _, p in CASES))

    by_name = {r.name: r for r in rows}
    for name, _, _, paper_pct in CASES:
        r = by_name[name]
        # shape: within a few points of the paper's value...
        assert r.speedup_pct == pytest.approx(paper_pct, abs=max(2.0, paper_pct * 0.35)), name
        # ...and statistically significant at the paper's level
        assert r.stats.significant(alpha=0.001), name

    # ordering claims: streamcluster >> fluidanimate > sqlite > ferret >
    # swaptions > memcached ~ dedup > blackscholes
    s = lambda n: by_name[n].speedup_pct
    assert s("streamcluster") > s("fluidanimate") > s("sqlite") > s("ferret")
    assert s("ferret") > s("swaptions") > s("memcached")
    assert s("memcached") > s("blackscholes")
    assert s("dedup") > s("blackscholes")
