"""Engine performance trajectory (``repro bench`` results).

This package holds the recorded engine-throughput microbenchmark results,
``BENCH_engine.json``, produced by::

    PYTHONPATH=src python -m repro.cli bench --output benchmarks/perf/BENCH_engine.json

The benchmark matrix and metric definitions live in
:mod:`repro.harness.bench`; the document schema is described there and in
DESIGN.md.  The ``history`` list inside the document is the hand-promoted
cross-PR trajectory (one entry per engine-relevant PR) and is preserved
across re-runs — see EXPERIMENTS.md for how to read it.

Unlike the ``benchmarks/test_*`` figure suites, nothing here asserts on
timing: wall-clock numbers from CI runners or shared machines are noisy,
so the recorded file is refreshed manually from a quiet machine and CI
only smoke-runs ``repro bench --quick`` to catch crashes and schema drift.
"""
