"""Table 4: progress points and top optimization opportunities for the
remaining PARSEC benchmarks.

For each app we register the paper's progress point (as a breakpoint
progress point on the listed line) and check that Coz ranks the paper's
"Top Optimization" line first.
"""


from benchmarks.conftest import run_once
from repro.apps import registry
from repro.apps.parsec_misc import TABLE4
from repro.core.analysis import top_line
from repro.core.config import CozConfig
from repro.harness.parallel import AUTO_JOBS
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def test_table4_top_opportunities(benchmark):
    def regen():
        results = []
        for entry in TABLE4:
            spec = registry.build(entry.name, n_items=800)
            cfg = CozConfig(
                scope=spec.scope,
                experiment_duration_ns=MS(25),
                speedup_values=(0, 20, 40, 60),
                zero_speedup_prob=0.4,
            )
            out = profile_app(spec, runs=6, coz_config=cfg, jobs=AUTO_JOBS)
            results.append((entry, out.profile))
        return results

    results = run_once(benchmark, regen)
    print()
    print(f"{'Benchmark':<12} {'Progress Point':<26} {'Top (Coz)':<26} {'Top (paper)':<24}")
    hits = 0
    for entry, profile in results:
        found = top_line(profile)
        match = "=" if found == entry.top_line else "!"
        hits += found == entry.top_line
        print(f"{entry.name:<12} {str(entry.progress_point):<26} "
              f"{str(found):<26} {str(entry.top_line):<22}{match}")

    assert hits == len(TABLE4), "every Table 4 top line must rank first"
