"""Figure 9: profiling overhead broken down by source.

The paper's four-configuration protocol (baseline; startup only; sampling
without delays; full) decomposes Coz's mean 17.6% overhead into startup
(2.6%), sampling (4.8%), and delays (10.2%).  We run the same protocol on
the PARSEC set and check the *shape*: delays dominate, then sampling, then
startup, and the total stays moderate.
"""


from benchmarks.conftest import run_once
from repro.apps import registry
from repro.core.config import CozConfig
from repro.harness.overhead import measure_overhead
from repro.harness.parallel import AUTO_JOBS
from repro.harness.tables import render_figure9
from repro.sim.clock import MS

#: registry-built so each four-configuration protocol can fan its runs out
SPECS = [
    registry.build("blackscholes", n_rounds=150),
    registry.build("dedup", n_blocks=1200),
    registry.build("ferret", n_queries=600),
    registry.build("fluidanimate", n_phases=100),
    registry.build("streamcluster", n_phases=100),
    registry.build("swaptions", n_iters=250),
]


def test_fig9_overhead_breakdown(benchmark):
    def regen():
        rows = []
        for spec in SPECS:
            cfg = CozConfig(experiment_duration_ns=MS(20))
            rows.append(measure_overhead(spec, coz_config=cfg, runs=2, jobs=AUTO_JOBS))
        return rows

    rows = run_once(benchmark, regen)
    print()
    print(render_figure9(rows))
    print("paper means: startup 2.6%, sampling 4.8%, delays 10.2%, total 17.6%")

    n = len(rows)
    mean_startup = sum(r.startup_pct for r in rows) / n
    mean_sampling = sum(r.sampling_pct for r in rows) / n
    mean_delay = sum(r.delay_pct for r in rows) / n
    mean_total = sum(r.total_pct for r in rows) / n

    # shape: delay overhead dominates, like the paper's 10.2% vs 4.8%/2.6%.
    # Sampling can measure slightly negative on individual apps — the paper
    # itself observed sampling *speedups* for swaptions, vips, and x264.
    assert mean_delay > mean_sampling
    assert mean_delay > mean_startup >= 0
    assert all(r.sampling_pct > -3.0 for r in rows)
    assert 1.0 < mean_total < 40.0
    # every app stays within a practical envelope (paper max: 65%)
    for r in rows:
        assert r.total_pct < 70.0, r.name
