"""Figure 2: conventional vs causal profile of example.cpp.

* Figure 2a — gprof reports a() and b() as ~51%/49% of runtime;
* Figure 2b — the causal profile shows that optimizing either line in
  isolation buys at most ~4.5% (line a) or ~0% (line b), with line a's curve
  flattening once b becomes the critical path.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.example import (
    LINE_A,
    LINE_B,
    build_example,
    expected_profile_point,
)
from repro.baselines.gprof import GprofObserver
from repro.core.config import CozConfig
from repro.core.report import render_line_graph, render_profile
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def test_fig2a_gprof_profile(benchmark):
    def regen():
        g = GprofObserver()
        build_example(rounds=60).build(0).run(observers=[g])
        return g.profile()

    profile = run_once(benchmark, regen)
    print()
    print(profile.render())
    # the misleading answer: both halves look equally important
    assert profile.pct_time("a") == pytest.approx(51.1, abs=1.5)
    assert profile.pct_time("b") == pytest.approx(48.9, abs=1.5)


def test_fig2b_causal_profile(benchmark):
    from repro.apps import registry
    from repro.harness.parallel import AUTO_JOBS

    # registry-built so the 30 profiling runs can fan out over workers
    spec = registry.build("example", rounds=300)
    cfg = CozConfig(
        scope=spec.scope,
        experiment_duration_ns=MS(150),
        speedup_values=(0, 25, 50, 75, 100),
        zero_speedup_prob=0.4,
    )

    def regen():
        return profile_app(spec, runs=30, coz_config=cfg, jobs=AUTO_JOBS)

    out = run_once(benchmark, regen)
    print()
    print(render_profile(out.profile))
    lp_a = out.profile.get(LINE_A)
    lp_b = out.profile.get(LINE_B)
    print(render_line_graph(lp_a))
    print(render_line_graph(lp_b))
    print(f"{'pct':>4} {'line a (measured/true)':>24} {'line b (measured/true)':>24}")
    for pct in (25, 50, 75, 100):
        pa = lp_a.point_at(pct)
        pb = lp_b.point_at(pct)
        print(
            f"{pct:>4} {pa.program_speedup_pct:>10.2f}% /"
            f"{100 * expected_profile_point(pct):>6.2f}% "
            f"{pb.program_speedup_pct:>14.2f}% / 0.00%"
        )

    # Figure 2b's shape: a() caps out near 4.5%, b() stays near zero, and
    # the whole profile predicts far less than gprof's 51%/49% would imply.
    assert lp_a.max_program_speedup < 0.12
    assert lp_b.max_program_speedup < 0.09
    assert lp_a.point_at(100).program_speedup == pytest.approx(0.045, abs=0.045)
    assert lp_b.point_at(100).program_speedup == pytest.approx(0.0, abs=0.055)
    # line a plateaus: the 25->100 gain is much less than 3x the 25% value
    a25 = max(lp_a.point_at(25).program_speedup, 1e-9)
    assert lp_a.point_at(100).program_speedup < 3.0 * a25 + 0.02
