"""Ablations of the design choices DESIGN.md calls out.

1. minimal vs naive delay scheme (§3.4.3): both produce correct speedup
   measurements for a single-executor line, but the naive scheme inserts far
   more delay (higher overhead) when several threads run the line;
2. phase correction on/off (eq. 8): correction scales down speedups of lines
   that only run during part of the execution;
3. interference model on/off: without it, the spin barrier costs almost
   nothing — the fluidanimate/streamcluster case studies need it;
4. random vs systematic speedup exploration: the paper's warning about bias
   from warmup-dependent lines.
"""


from benchmarks.conftest import run_once
from repro.apps.fluidanimate import build_fluidanimate
from repro.core.config import CozConfig
from repro.core.progress import ProgressPoint
from repro.harness.runner import profile_program
from repro.sim import MS, US, Join, Program, Progress, Scope, SimConfig, Spawn, Work, line

HOT = line("hot.c:1")
COLD = line("cold.c:1")


def _symmetric_program(n_threads=4, rounds=300):
    """Every thread runs the HOT line equally — the minimal-delay scheme's
    best case (no pauses needed at all)."""

    def make(seed=0):
        def main(t):
            def worker(t2):
                for _ in range(rounds):
                    yield Work(HOT, US(200))
                    yield Progress("tick")

            ws = []
            for i in range(n_threads):
                ws.append((yield Spawn(worker)))
            for w in ws:
                yield Join(w)

        cfg = SimConfig(seed=seed, cores=n_threads + 1, sample_period_ns=US(100))
        return Program(main, config=cfg)

    return make


def test_ablation_minimal_vs_naive_delays(benchmark):
    def run_mode(minimal):
        outcome = profile_program(
            _symmetric_program(),
            [ProgressPoint("tick")],
            "tick",
            runs=4,
            coz_config=CozConfig(
                scope=Scope.all_main(),
                fixed_line=HOT,
                speedup_schedule=[0, 50],
                experiment_duration_ns=MS(20),
                minimal_delays=minimal,
            ),
        )
        total_delay = sum(r.delay_ns for r in outcome.run_results)
        total_runtime = sum(r.runtime_ns for r in outcome.run_results)
        return total_delay / total_runtime

    results = run_once(
        benchmark, lambda: (run_mode(True), run_mode(False))
    )
    minimal_ratio, naive_ratio = results
    print()
    print(f"inserted delay / runtime: minimal={100*minimal_ratio:.1f}% "
          f"naive={100*naive_ratio:.1f}%")
    # §3.4.3: with every thread running the line, the minimal scheme inserts
    # almost nothing while the naive scheme pauses everyone constantly
    assert naive_ratio > 3 * minimal_ratio
    assert naive_ratio > 0.10


def test_ablation_phase_correction(benchmark):
    """A line that runs in only part of the execution gets its measured
    speedup scaled by ~t_A/T (eq. 8)."""

    def make(seed=0):
        def main(t):
            def worker(t2):
                # phase A: the hot line runs (1/4 of the execution)
                for _ in range(100):
                    yield Work(HOT, US(200))
                    yield Progress("tick")
                # phase B: only cold code
                for _ in range(300):
                    yield Work(COLD, US(200))
                    yield Progress("tick")

            a = yield Spawn(worker)
            b = yield Spawn(worker)
            yield Join(a)
            yield Join(b)

        return Program(main, config=SimConfig(seed=seed, cores=4, sample_period_ns=US(100)))

    def regen():
        from repro.core.profile_data import build_line_profile

        # Selection must be sampling-driven (scope restricted to the hot
        # file): experiments on HOT then only start while HOT is actually
        # running — the phased-selection bias eq. 8 corrects for.  A
        # fixed_line override would start experiments during phase B too,
        # hiding the bias.
        outcome = profile_program(
            make,
            [ProgressPoint("tick")],
            "tick",
            runs=8,
            coz_config=CozConfig(
                scope=Scope.only("hot.c"),
                speedup_schedule=[0, 60],
                experiment_duration_ns=MS(8),
            ),
        )
        raw = build_line_profile(outcome.data, HOT, "tick", phase_correction=False)
        corrected = build_line_profile(outcome.data, HOT, "tick", phase_correction=True)
        return raw, corrected

    raw, corrected = run_once(benchmark, regen)
    print()
    print(f"phase factor: {corrected.phase_factor:.2f} "
          f"(line active ~25% of the run)")
    print(f"raw@60: {100*raw.point_at(60).program_speedup:+.1f}%  "
          f"corrected@60: {100*corrected.point_at(60).program_speedup:+.1f}%")
    assert corrected.phase_factor < 0.6
    assert corrected.point_at(60).program_speedup < raw.point_at(60).program_speedup


def test_ablation_interference_model(benchmark):
    """Without the cache-coherence interference model, the spin barrier is
    nearly free and the fluidanimate case study collapses."""

    def regen():
        def speedup(coeff):
            base_spec = build_fluidanimate(False, n_phases=80, interference_coeff=coeff)
            opt_spec = build_fluidanimate(True, n_phases=80, interference_coeff=coeff)
            a = base_spec.build(0).run().runtime_ns
            b = opt_spec.build(0).run().runtime_ns
            return (a - b) / a

        return speedup(0.62), speedup(0.0)

    with_model, without_model = run_once(benchmark, regen)
    print()
    print(f"barrier-replacement speedup: with interference {100*with_model:.1f}%, "
          f"without {100*without_model:.1f}%")
    assert with_model > 0.25
    assert without_model < 0.15
