"""§4.3: prediction accuracy — Coz's predicted speedups match realized ones.

Paper results:

* ferret: raising indexing threads 16 -> 22 speeds line 320 by 27%
  (1 - 16/22); Coz predicted +21.4%, observed +21.2%;
* dedup: the hash fix cuts the chain walk by ~96%; Coz predicted +9%,
  observed +8.95%.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.dedup import LINE_HASH_LOOP, build_dedup
from repro.apps.ferret import (
    DEFAULT_THREADS,
    LINE_INDEX,
    OPTIMIZED_THREADS,
    build_ferret,
)
from repro.core.analysis import predict_program_speedup
from repro.core.config import CozConfig
from repro.harness.comparison import compare_builds
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def test_accuracy_ferret_line_speedup(benchmark):
    """Predicted effect of speeding line 320 by 27.3% (the paper's 16 -> 22
    thread arithmetic: 1 - 16/22) vs the *realized* effect of actually
    speeding that line by the same amount.

    Scale note: in our half-scale pipeline the ranking stage sits closer to
    the indexing stage than in the paper's configuration, so a 27% line-320
    speedup caps at ~4-5% (rank becomes the bottleneck) rather than the
    paper's 21%; prediction and realization must still agree — that is the
    §4.3 accuracy claim.
    """
    line_speedup_pct = 100 * (1 - DEFAULT_THREADS[2] / OPTIMIZED_THREADS[2])

    def regen():
        spec = build_ferret(DEFAULT_THREADS, n_queries=1500)
        cfg = CozConfig(
            scope=spec.scope,
            experiment_duration_ns=MS(30),
            fixed_line=LINE_INDEX,
            speedup_schedule=[0, 15, 0, 30, 0, 45],
        )
        out = profile_app(spec, runs=10, coz_config=cfg)
        lp = out.profile.get(LINE_INDEX)
        predicted = predict_program_speedup(lp, line_speedup_pct)
        factor = 1.0 - line_speedup_pct / 100.0
        realized = compare_builds(
            "ferret-line",
            build_ferret(DEFAULT_THREADS, n_queries=800).build,
            build_ferret(
                DEFAULT_THREADS, n_queries=800,
                line_speedups={LINE_INDEX: factor},
            ).build,
            runs=4,
        ).stats.speedup
        return predicted, realized

    predicted, realized = run_once(benchmark, regen)
    print()
    print(f"ferret line-320 speedup {line_speedup_pct:.1f}% -> "
          f"predicted {100*predicted:+.2f}%, realized {100*realized:+.2f}%"
          f"  (paper: predicted +21.4%, observed +21.2% at its scale)")

    assert predicted == pytest.approx(realized, abs=0.03)
    assert 0.0 < realized < 0.10


def test_accuracy_dedup_hash_fix(benchmark):
    """Predicted effect of a ~96% speedup of the chain-walk line vs the
    realized hash-function replacement."""

    def regen():
        spec = build_dedup("original", n_blocks=4000)
        cfg = CozConfig(
            scope=spec.scope,
            experiment_duration_ns=MS(25),
            fixed_line=LINE_HASH_LOOP,
            speedup_schedule=[0, 30, 0, 60, 0, 90],
        )
        out = profile_app(spec, runs=8, coz_config=cfg)
        lp = out.profile.get(LINE_HASH_LOOP)
        predicted = predict_program_speedup(lp, 96.0)
        realized = compare_builds(
            "dedup",
            build_dedup("original", n_blocks=1500).build,
            build_dedup("xor", n_blocks=1500).build,
            runs=4,
        ).stats.speedup
        return predicted, realized

    predicted, realized = run_once(benchmark, regen)
    print()
    print(f"dedup hash-loop speedup 96% -> predicted {100*predicted:+.2f}%, "
          f"realized {100*realized:+.2f}%  (paper: predicted +9%, observed +8.95%)")

    assert realized == pytest.approx(0.09, abs=0.03)
    assert predicted == pytest.approx(realized, abs=0.05)
