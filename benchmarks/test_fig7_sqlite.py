"""Figure 7: causal vs conventional profiles of SQLite.

* 7a — Coz: the three tiny hot-function prologues are major opportunities
  (we regenerate their curves with focused fixed-line profiles; the full
  random-selection session would simply take proportionally longer, since
  these lines draw few samples);
* 7b — perf: the same lines account for a tiny share of samples, so a
  conventional profiler dismisses them.

The realized optimization (direct calls) is ~25%, far beyond what 7b's
sample shares suggest.
"""


from benchmarks.conftest import run_once
from repro.apps.sqlite import (
    LINE_MEMSIZE,
    LINE_MUTEX_LEAVE,
    LINE_PCACHE_FETCH,
    build_sqlite,
)
from repro.baselines.perf import PerfObserver
from repro.core.config import CozConfig
from repro.harness.runner import profile_app
from repro.sim.clock import MS

HOT_LINES = [
    ("pcache1Fetch", LINE_PCACHE_FETCH),
    ("sqlite3MemSize", LINE_MEMSIZE),
    ("pthreadMutexLeave", LINE_MUTEX_LEAVE),
]


def test_fig7_sqlite_coz_vs_perf(benchmark):
    def regen():
        # 7b: perf profile of the unmodified build
        perf = PerfObserver()
        build_sqlite(False, inserts_per_thread=1500).build(0).run(observers=[perf])
        perf_profile = perf.profile()

        # 7a: focused causal profiles of the three hot lines
        spec = build_sqlite(False, inserts_per_thread=4000)
        curves = {}
        for name, hot in HOT_LINES:
            cfg = CozConfig(
                scope=spec.scope,
                experiment_duration_ns=MS(10),
                fixed_line=hot,
                speedup_schedule=[0, 15, 0, 30, 0, 45, 0, 60],
            )
            out = profile_app(spec, runs=5, coz_config=cfg)
            curves[name] = out.profile.get(hot)
        return perf_profile, curves

    perf_profile, curves = run_once(benchmark, regen)

    print()
    print("Figure 7b analogue — perf sample shares:")
    for name, hot in HOT_LINES:
        print(f"  {name:<18} {perf_profile.pct_line(hot):5.2f}%  ({hot})")
    print(perf_profile.render(top=5, by="line"))

    print("Figure 7a analogue — causal profiles:")
    for name, lp in curves.items():
        pts = "  ".join(
            f"{p.speedup_pct}:{p.program_speedup_pct:+.1f}%"
            for p in sorted(lp.points, key=lambda q: q.speedup_pct)
        )
        print(f"  {name:<18} {pts}")

    # perf's verdict: these lines are a small share of samples...
    total_hot_pct = sum(perf_profile.pct_line(h) for _, h in HOT_LINES)
    assert total_hot_pct < 12.0
    # ...yet Coz shows meaningful upside on each of them
    for name, lp in curves.items():
        assert lp.max_program_speedup > 0.025, name
        # and far more than perf's share would suggest proportionally
        assert lp.max_program_speedup * 100 > perf_profile.pct_line(
            dict(HOT_LINES)[name]
        ), name
