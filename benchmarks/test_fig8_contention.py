"""Figure 8: contention signatures — downward-sloping causal profiles.

The paper shows fluidanimate's custom spin-barrier lines with *negative*
causal profiles: virtually speeding them up slows the program, the telltale
of contention.  In the simulator the same signature appears on memcached's
striped item locks (§4.2.6), where the refcount update inside the contended
stripe is inelastic; the elastic spin-wait line of the barrier itself
measures near-flat-positive here (see EXPERIMENTS.md for the deviation
discussion), far below its enormous CPU share, so Coz still steers the
developer away from "optimizing" the spin loop and toward removing it.
"""


from benchmarks.conftest import run_once
from repro.apps.fluidanimate import LINE_SPIN, build_fluidanimate
from repro.apps.memcached import LINE_ITEM_REMOVE, LINE_REFCOUNT, build_memcached
from repro.baselines.perf import PerfObserver
from repro.core.config import CozConfig
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def test_fig8_memcached_contention_slopes(benchmark):
    spec = build_memcached(False, n_requests=50_000)

    def regen():
        curves = {}
        for name, hot in (("item_remove", LINE_ITEM_REMOVE), ("refcount", LINE_REFCOUNT)):
            cfg = CozConfig(
                scope=spec.scope,
                experiment_duration_ns=MS(5),
                fixed_line=hot,
                speedup_schedule=[0, 15, 0, 35, 0, 60],
            )
            out = profile_app(spec, runs=3, coz_config=cfg)
            curves[name] = out.profile.get(hot)
        return curves

    curves = run_once(benchmark, regen)
    print()
    print("memcached striped-lock contention (downward slopes):")
    for name, lp in curves.items():
        pts = "  ".join(
            f"{p.speedup_pct}:{p.program_speedup_pct:+.1f}%"
            for p in sorted(lp.points, key=lambda q: q.speedup_pct)
        )
        print(f"  {name:<12} slope={lp.slope:+.2f}  {pts}")

    # the Figure 8 signature: steep downward slopes, flagged as contention
    for name, lp in curves.items():
        assert lp.slope < -0.05, name
        assert lp.is_contended(), name
        assert lp.point_at(60).program_speedup < 0, name


def test_fig8_fluidanimate_spin_line_not_worth_optimizing(benchmark):
    """The spin line burns a huge share of CPU (perf would rank it #1), yet
    its causal value is a small fraction of that share — Coz's actionable
    signal that optimizing the spin loop is futile."""
    spec = build_fluidanimate(False, n_phases=300)

    def regen():
        perf = PerfObserver()
        build_fluidanimate(False, n_phases=120).build(0).run(observers=[perf])
        cfg = CozConfig(
            scope=spec.scope,
            experiment_duration_ns=MS(40),
            fixed_line=LINE_SPIN,
            speedup_schedule=[0, 20, 0, 40, 0, 60],
        )
        out = profile_app(spec, runs=3, coz_config=cfg)
        return perf.profile(), out.profile.get(LINE_SPIN)

    perf_profile, lp = run_once(benchmark, regen)
    spin_share = perf_profile.pct_line(LINE_SPIN)
    print()
    print(f"spin line perf share: {spin_share:.1f}% of samples")
    pts = "  ".join(
        f"{p.speedup_pct}:{p.program_speedup_pct:+.1f}%"
        for p in sorted(lp.points, key=lambda q: q.speedup_pct)
    )
    print(f"spin line causal profile: {pts}  (slope {lp.slope:+.2f})")

    # perf says the spin loop is the hottest code in the program...
    assert spin_share > 20.0
    # ...but its causal profile shows a fraction of that as real upside
    assert lp.max_program_speedup * 100 < spin_share * 0.8
