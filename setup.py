"""Setup shim: metadata lives in pyproject.toml; this adds the optional
compiled engine core.

The extension is *optional* in the setuptools sense: environments without a
C toolchain still install fine and run the pure-Python engine loop.  Build
it in place with::

    python setup.py build_ext --inplace

(`pip install 'repro[accel]'` documents the same intent; see README.)  Set
``REPRO_SKIP_ACCEL_BUILD=1`` to skip the extension entirely.
"""

import os

from setuptools import Extension, setup

ext_modules = []
if os.environ.get("REPRO_SKIP_ACCEL_BUILD") != "1":
    ext_modules.append(
        Extension(
            "repro.sim.backend._core",
            sources=["src/repro/sim/backend/_core.c"],
            optional=True,
            extra_compile_args=["-O2"],
        )
    )

setup(ext_modules=ext_modules)
