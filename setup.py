"""Setup shim for environments without the `wheel` package.

`pip install -e .` on a pyproject-only package requires PEP 660 editable
wheels; offline environments without `wheel` can fall back to
`python setup.py develop` via this shim.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
