#!/usr/bin/env python3
"""Quickstart: causal-profile a program you write yourself.

This is the paper's Figure 1/2 story end to end:

1. write a small two-thread program against the simulator API;
2. profile it with a conventional (gprof-style) profiler — it says the two
   threads matter equally;
3. causal-profile it — it says neither line is worth much, and quantifies
   exactly how much (line a caps at ~4.5%, line b at ~0%).

Run:  python examples/quickstart.py
"""

from repro import (
    MS,
    CausalProfiler,
    CozConfig,
    Program,
    ProgressPoint,
    Scope,
    SimConfig,
    build_causal_profile,
    line,
    render_line_graph,
    render_profile,
)
from repro.baselines.gprof import GprofObserver
from repro.core.profile_data import ProfileData
from repro.sim import BarrierWait, Join, Progress, Spawn, Work, call
from repro.sim.clock import US
from repro.sim.sync import Barrier

# --- 1. the program ---------------------------------------------------------
# Two threads run busy loops of ~6.7 and ~6.4 ms per round (Figure 1's
# example.cpp, with rounds so there is a throughput progress point).

LINE_A = line("example.cpp:2")
LINE_B = line("example.cpp:5")
ROUNDS = 300


def make_program(seed: int = 0) -> Program:
    def main(t):
        barrier = Barrier(2)

        def loop_a():
            yield Work(LINE_A, MS(6.7))              # void a() { for(...) {} }

        def loop_b():
            yield Work(LINE_B, MS(6.4))              # void b() { for(...) {} }

        def fn_a(t2):
            for _ in range(ROUNDS):
                yield from call("a", loop_a())
                if (yield BarrierWait(barrier)):
                    yield Progress("round")

        def fn_b(t2):
            for _ in range(ROUNDS):
                yield from call("b", loop_b())
                if (yield BarrierWait(barrier)):
                    yield Progress("round")

        a = yield Spawn(fn_a, "a_thread")
        b = yield Spawn(fn_b, "b_thread")
        yield Join(a)
        yield Join(b)

    config = SimConfig(seed=seed, sample_period_ns=US(250))
    return Program(main, name="example", config=config)


def main() -> None:
    # --- 2. what a conventional profiler says --------------------------------
    gprof = GprofObserver()
    make_program().run(observers=[gprof])
    print("=" * 64)
    print("gprof's answer (Figure 2a): optimize either, they're ~50/50")
    print("=" * 64)
    print(gprof.profile().render())

    # --- 3. what the causal profiler says ------------------------------------
    print("=" * 64)
    print("Coz's answer (Figure 2b): neither is worth much")
    print("=" * 64)
    data = ProfileData()
    for seed in range(20):
        profiler = CausalProfiler(
            CozConfig(
                scope=Scope.only("example.cpp"),
                experiment_duration_ns=MS(150),
                speedup_values=(0, 25, 50, 75, 100),
                seed=seed,
            ),
            progress_points=[ProgressPoint("round")],
        )
        make_program(seed).run(hook=profiler)
        data.merge(profiler.data)

    profile = build_causal_profile(data, "round", min_speedup_amounts=2)
    print(render_profile(profile))
    for lp in profile.ranked():
        print(render_line_graph(lp))
    print(
        "Reading the graphs: speeding up example.cpp:2 (the 6.7ms loop) by\n"
        "100% buys only ~4.5% — the other thread becomes the critical path.\n"
        "Speeding up example.cpp:5 buys ~nothing. gprof's 51%/49% was a trap."
    )


if __name__ == "__main__":
    main()
