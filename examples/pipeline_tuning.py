#!/usr/bin/env python3
"""Pipeline tuning with causal profiling: the ferret case study (§4.2.2).

The workflow the paper describes:

1. causal-profile the pipeline with the progress point at the output stage;
2. read off which stages' lines matter (indexing, ranking, segmentation)
   and which don't (feature extraction);
3. shift threads from the unimportant stage to the important ones;
4. repeat until the profile flattens.

This script runs that loop automatically: at each iteration it profiles the
current allocation, moves a thread from the stage with the flattest line to
the stage with the steepest line, and reports throughput.

Run:  python examples/pipeline_tuning.py
"""

from repro.apps.ferret import (
    LINE_EXTRACT,
    LINE_INDEX,
    LINE_RANK,
    LINE_SEG,
    build_ferret,
)
from repro.core.config import CozConfig
from repro.harness.runner import profile_app
from repro.sim.clock import MS

STAGE_LINES = {
    "segment": LINE_SEG,
    "extract": LINE_EXTRACT,
    "index": LINE_INDEX,
    "rank": LINE_RANK,
}
STAGE_ORDER = ["segment", "extract", "index", "rank"]


def throughput(threads, n_queries=600):
    spec = build_ferret(tuple(threads), n_queries=n_queries)
    r = spec.build(0).run()
    return n_queries / (r.runtime_ns / 1e9)


def profile_slopes(threads):
    spec = build_ferret(tuple(threads), n_queries=1200)
    cfg = CozConfig(
        scope=spec.scope,
        experiment_duration_ns=MS(25),
        speedup_values=(0, 15, 30, 45),
        zero_speedup_prob=0.4,
    )
    out = profile_app(spec, runs=10, coz_config=cfg)
    slopes = {}
    for name, src in STAGE_LINES.items():
        lp = out.profile.get(src)
        slopes[name] = lp.slope if lp is not None else 0.0
    return slopes


def main() -> None:
    threads = [8, 8, 8, 8]
    base_tp = throughput(threads)
    print(f"initial allocation {threads}: {base_tp:,.0f} queries/s")

    for round_no in range(1, 4):
        slopes = profile_slopes(threads)
        print(f"\nround {round_no}: profile slopes "
              + ", ".join(f"{k}={v:+.3f}" for k, v in slopes.items()))

        donor = min(
            (s for s in STAGE_ORDER if threads[STAGE_ORDER.index(s)] > 1),
            key=lambda s: slopes[s],
        )
        receiver = max(STAGE_ORDER, key=lambda s: slopes[s])
        if slopes[receiver] - slopes[donor] < 0.02:
            print("profile is flat; stopping")
            break
        threads[STAGE_ORDER.index(donor)] -= 1
        threads[STAGE_ORDER.index(receiver)] += 1
        tp = throughput(threads)
        print(f"  move 1 thread {donor} -> {receiver}: {threads} "
              f"=> {tp:,.0f} queries/s ({100 * (tp / base_tp - 1):+.1f}%)")

    final_tp = throughput(threads)
    print(f"\nfinal allocation {threads}: {final_tp:,.0f} queries/s, "
          f"{100 * (final_tp / base_tp - 1):+.1f}% over the equal split")
    print("(the paper reached +21.27% with 20/1/22/21 out of 64 threads)")


if __name__ == "__main__":
    main()
