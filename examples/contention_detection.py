#!/usr/bin/env python3
"""Contention detection: reading a downward-sloping causal profile (§4.2.6).

The paper's second headline insight: a causal profile can slope *downward*
— virtually speeding a line up makes the program slower — which is a strong
signature of contention.  In memcached, Coz flagged the start of
``item_remove``: the striped item lock it takes collides with unrelated
items, so "optimizing" that code path just raises the collision rate, while
*removing* the lock (reference counts are atomic anyway) gives ~9%.

This script profiles the memcached model's refcount line, shows the
negative slope, applies the paper's fix, and confirms the speedup.

Run:  python examples/contention_detection.py
"""

from repro.apps.memcached import LINE_REFCOUNT, build_memcached
from repro.core.config import CozConfig
from repro.core.report import render_line_graph
from repro.harness.comparison import compare_builds
from repro.harness.runner import profile_app
from repro.sim.clock import MS


def main() -> None:
    spec = build_memcached(False, n_requests=50_000)
    cfg = CozConfig(
        scope=spec.scope,
        experiment_duration_ns=MS(5),
        fixed_line=LINE_REFCOUNT,
        speedup_schedule=[0, 15, 0, 35, 0, 60],
    )
    print("profiling memcached's item_remove refcount line "
          "(inside the striped item lock)...")
    out = profile_app(spec, runs=3, coz_config=cfg)
    lp = out.profile.get(LINE_REFCOUNT)

    print()
    print(render_line_graph(lp))
    verdict = "CONTENTION" if lp.is_contended() else "optimize"
    print(f"slope {lp.slope:+.2f} -> {verdict}")
    print(
        "\nThe profile slopes DOWN: making this line faster would increase\n"
        "pressure on the contended lock stripe and slow the server down.\n"
        "The right fix is not to optimize the line but to remove the lock:\n"
    )

    cmp_result = compare_builds(
        "memcached",
        build_memcached(False, n_requests=8000).build,
        build_memcached(True, n_requests=8000).build,
        runs=5,
    )
    print(f"lock removed (atomic refcount): {cmp_result.row()}")
    print("(the paper measured 9.39% ± 0.95% for the same change)")


if __name__ == "__main__":
    main()
