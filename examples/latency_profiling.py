#!/usr/bin/env python3
"""Latency profiling with two progress points and Little's law (§3.3).

Throughput is not the only metric Coz can optimize for: placing progress
points at the *start* and *end* of a request lets the profiler infer average
latency from Little's law (L = lambda * W) without timestamping individual
requests.

The program: clients submit requests to a bounded queue; a pool of workers
handles each request in two steps — an expensive parse and a cheap respond.
We profile the parse line and report how virtually speeding it up moves the
average request latency.

Run:  python examples/latency_profiling.py
"""

from repro import CausalProfiler, CozConfig, LatencySpec, ProgressPoint, Scope, line
from repro.core.profile_data import ProfileData, build_latency_profile
from repro.sim import IO, MS, US, Join, Program, Progress, SimConfig, Spawn, Work
from repro.sim.sync import Channel

PARSE = line("server.c:100")
RESPOND = line("server.c:140")
N_REQUESTS = 12000


def make_program(seed: int = 0) -> Program:
    def main(t):
        queue = Channel(64, "requests")

        def client(t2, cid):
            import random

            rng = random.Random(seed * 131 + cid)
            for _ in range(N_REQUESTS // 8):
                yield IO(US(rng.randrange(10, 60)))   # inter-arrival think time
                yield Progress("request-begin")        # arrival: latency clock in
                yield from queue.put(cid)

        def worker(t2):
            while True:
                item = yield from queue.get()
                if item is Channel.CLOSED:
                    break
                yield Work(PARSE, US(14))              # the expensive step
                yield Work(RESPOND, US(4))
                yield Progress("request-end")          # completion: clock out

        clients = []
        for cid in range(8):
            def cbody(t2, cid=cid):
                yield from client(t2, cid)
            clients.append((yield Spawn(cbody, f"client-{cid}")))
        workers = []
        for i in range(4):
            workers.append((yield Spawn(worker, f"worker-{i}")))
        for c in clients:
            yield Join(c)
        yield from queue.close()
        for w in workers:
            yield Join(w)

    return Program(main, config=SimConfig(seed=seed, cores=8, sample_period_ns=US(100)))


def main() -> None:
    spec_points = [ProgressPoint("request-begin"), ProgressPoint("request-end")]
    latency = LatencySpec("request", begin="request-begin", end="request-end")

    data = ProfileData()
    for seed in range(8):
        profiler = CausalProfiler(
            CozConfig(
                scope=Scope.all_main(),
                fixed_line=PARSE,
                speedup_schedule=[0, 25, 0, 50, 0, 75],
                experiment_duration_ns=MS(5),
                seed=seed,
            ),
            progress_points=spec_points,
            latency_specs=[latency],
        )
        make_program(seed).run(hook=profiler)
        data.merge(profiler.data)

    points = build_latency_profile(data, PARSE, latency)
    if points is None:
        raise SystemExit("not enough latency data collected")

    print("Latency profile of server.c:100 (the parse step)")
    print(f"{'line speedup':>12} {'avg latency':>12} {'change':>9}")
    for p in sorted(points, key=lambda q: q.speedup_pct):
        print(f"{p.speedup_pct:>11}% {p.latency_ns / 1000:>10.1f}us "
              f"{100 * p.latency_reduction:>+8.1f}%")
    print(
        "\nSpeeding up the parse line shortens the time requests spend\n"
        "queued + in service — the latency falls faster than the 14us\n"
        "service-time saving alone, because the queue drains too."
    )


if __name__ == "__main__":
    main()
