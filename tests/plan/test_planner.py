"""The planner API: static-planner identity with the historical schedule,
adaptive determinism and journal replay, plan wire format, experiment caps,
and the report's planner columns."""

import random

import pytest

from repro.apps import registry
from repro.core.config import CozConfig
from repro.core.report import render_plan, render_profile
from repro.harness import (
    JournalError,
    ProfileRequest,
    ResilienceConfig,
    run_profile_session,
)
from repro.plan import (
    AdaptivePlanner,
    ExperimentPlan,
    PlanConfig,
    RunScheduler,
    StaticPlanner,
    make_planner,
)
from repro.plan.base import REASON_SCHEDULE
from repro.sim import line


def _session(app="example", runs=3, **kw):
    return run_profile_session(registry.build(app), ProfileRequest(runs=runs, **kw))


def _adaptive_request(runs=4, **kw):
    return ProfileRequest(
        runs=runs,
        plan=PlanConfig(planner="adaptive", budget=runs),
        **kw,
    )


# -- planner resolution and config validation ----------------------------------------


def test_make_planner_resolves_names():
    static = make_planner(PlanConfig(), default_runs=7)
    assert isinstance(static, StaticPlanner)
    assert static.runs == 7

    adaptive = make_planner(PlanConfig(planner="adaptive", budget=4), default_runs=7)
    assert isinstance(adaptive, AdaptivePlanner)
    assert adaptive.budget == 4


@pytest.mark.parametrize(
    "kw",
    [
        {"planner": "annealing"},
        {"budget": 0},
        {"explore_runs": 0},
        {"se_target": 0.0},
    ],
)
def test_plan_config_rejects_bad_knobs(kw):
    with pytest.raises(ValueError):
        PlanConfig(**kw).validate()


def test_coz_config_rejects_bad_experiment_cap():
    with pytest.raises(ValueError, match="max_experiments"):
        CozConfig(max_experiments=0).validate()


# -- experiment plans: wire format and config application ----------------------------


def test_experiment_plan_roundtrip():
    free = ExperimentPlan(index=0)
    directed = ExperimentPlan(
        index=3,
        line=line("app.c:10"),
        speedups=(0, 25, 0, 75),
        max_experiments=6,
        note="knee",
    )
    for plan in (free, directed):
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan
    assert not free.is_directed
    assert directed.is_directed
    assert ExperimentPlan(index=1, max_experiments=2).is_directed


def test_experiment_plan_apply():
    cfg = CozConfig()
    assert ExperimentPlan(index=0).apply(cfg) is cfg

    directed = ExperimentPlan(
        index=1, line=line("app.c:10"), speedups=(0, 50), max_experiments=4
    )
    applied = directed.apply(cfg)
    assert applied.fixed_line == line("app.c:10")
    assert applied.speedup_schedule == (0, 50)
    assert applied.max_experiments == 4
    # everything not directed stays the session's
    assert applied.seed == cfg.seed
    assert applied.experiment_duration_ns == cfg.experiment_duration_ns


# -- in-run selection (RunScheduler) -------------------------------------------------


def test_run_scheduler_directed_selection():
    cfg = CozConfig(fixed_line=line("app.c:10"), speedup_schedule=(5, 10))
    sched = RunScheduler(cfg, random.Random(0))
    assert sched.select_line([], has_samples=False) is None
    assert sched.select_line([], has_samples=True) == line("app.c:10")
    assert [sched.choose_speedup() for _ in range(4)] == [5, 10, 5, 10]
    assert sched.schedule_idx == 4


def test_run_scheduler_free_selection_uses_shared_rng():
    batch = [line("app.c:10"), line("app.c:20")]
    picks = {
        RunScheduler(CozConfig(), random.Random(seed)).select_line(batch, True)
        for seed in range(8)
    }
    assert picks == set(batch)


# -- the experiment cap --------------------------------------------------------------


def test_max_experiments_caps_a_run():
    spec = registry.build("example")
    capped = run_profile_session(
        spec,
        ProfileRequest(
            runs=1, coz_config=CozConfig(scope=spec.scope, max_experiments=3)
        ),
    )
    free = run_profile_session(
        spec, ProfileRequest(runs=1, coz_config=CozConfig(scope=spec.scope))
    )
    assert len(capped.data.experiments) == 3
    assert len(free.data.experiments) > 3
    # the capped run is a prefix of the free one: same seed, same selections
    assert capped.data.experiments == free.data.experiments[:3]


# -- static planner: bit-identical to the pre-planner schedule -----------------------


def test_static_planner_matches_default_session():
    default = _session()
    explicit = _session(plan=PlanConfig(planner="static"))
    assert explicit.data == default.data
    assert explicit.data.to_json() == default.data.to_json()

    report = explicit.plan
    assert report.planner == "static"
    assert report.runs_planned == 3
    assert all(r == REASON_SCHEDULE for r in report.line_reason.values())


# -- adaptive planner: determinism, efficiency, replay -------------------------------


def test_adaptive_planner_is_deterministic():
    first = _session(runs=4, plan=PlanConfig(planner="adaptive", budget=4))
    second = _session(runs=4, plan=PlanConfig(planner="adaptive", budget=4))
    assert first.data == second.data
    assert first.plan.to_dict() == second.plan.to_dict()
    assert first.plan.runs_planned <= 4


def test_adaptive_converges_cheaper_than_static():
    # the acceptance bar tracked in BENCH_engine.json (planner_efficiency),
    # checked here on the fastest app: no more than 60% of static's
    # experiments, with replicated CIs on the hottest line no wider
    from repro.harness.bench import BenchCell, run_cell

    cell = run_cell(BenchCell(app="example", variant="planner", runs=8, repeats=1))
    assert cell.extra["experiments_ratio"] <= 0.6
    assert cell.extra["ci_ok"]


def test_adaptive_resume_replays_identically(tmp_path):
    path = str(tmp_path / "adaptive.journal")
    uninterrupted = _session(runs=4, plan=PlanConfig(planner="adaptive", budget=4))

    _session(
        runs=4,
        plan=PlanConfig(planner="adaptive", budget=4),
        resilience=ResilienceConfig(journal=path, stop_after_runs=2),
    )
    resumed = _session(
        runs=4,
        plan=PlanConfig(planner="adaptive", budget=4),
        resilience=ResilienceConfig(resume=path),
    )
    assert resumed.data == uninterrupted.data
    assert resumed.plan.to_dict() == uninterrupted.plan.to_dict()


def test_journal_refuses_planner_mismatch(tmp_path):
    path = str(tmp_path / "static.journal")
    _session(resilience=ResilienceConfig(journal=path))
    with pytest.raises(JournalError):
        _session(
            plan=PlanConfig(planner="adaptive"),
            resilience=ResilienceConfig(resume=path),
        )


# -- report rendering ----------------------------------------------------------------


def test_render_profile_planner_columns():
    out = _session(plan=PlanConfig(planner="static"))
    plain = render_profile(out.profile)
    with_plan = render_profile(out.profile, plan=out.plan)
    assert "spent" not in plain
    assert "spent" in with_plan and "stopped" in with_plan
    assert REASON_SCHEDULE in with_plan

    narration = render_plan(out.plan)
    assert "Planner 'static'" in narration
    assert "static round-robin" in narration
