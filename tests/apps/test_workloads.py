"""Behavioral tests for the evaluation workloads (scaled-down runs).

Each app must (a) run to completion deterministically, (b) show its paper
speedup when the optimization is applied (wide tolerance at test scale), and
(c) expose the structural bottleneck its case study relies on.
"""

import pytest

from repro.apps.blackscholes import build_blackscholes
from repro.apps.dedup import build_dedup
from repro.apps.ferret import (
    DEFAULT_THREADS,
    OPTIMIZED_THREADS,
    build_ferret,
    expected_throughput_period,
)
from repro.apps.fluidanimate import build_fluidanimate
from repro.apps.memcached import build_memcached
from repro.apps.parsec_misc import TABLE4, build_parsec_app
from repro.apps.sqlite import build_sqlite
from repro.apps.streamcluster import build_streamcluster
from repro.apps.swaptions import build_swaptions, expected_speedup


def speedup(base_spec, opt_spec, seed=0):
    a = base_spec.build(seed).run()
    b = opt_spec.build(seed).run()
    return (a.runtime_ns - b.runtime_ns) / a.runtime_ns, a, b


# ---------------------------------------------------------------- dedup

def test_dedup_processes_all_blocks():
    r = build_dedup("original", n_blocks=300).build(0).run()
    assert r.progress("block-compressed") == 300


def test_dedup_hash_fix_speedup():
    """Paper: 8.95% ± 0.27%."""
    s, _, _ = speedup(
        build_dedup("original", n_blocks=1500), build_dedup("xor", n_blocks=1500)
    )
    assert s == pytest.approx(0.09, abs=0.03)


def test_dedup_noshift_is_intermediate():
    a = build_dedup("original", n_blocks=500).build(0).run().runtime_ns
    m = build_dedup("noshift", n_blocks=500).build(0).run().runtime_ns
    o = build_dedup("xor", n_blocks=500).build(0).run().runtime_ns
    assert a > m > o


def test_dedup_rejects_bad_variant():
    with pytest.raises(ValueError):
        build_dedup("sha256")


# ---------------------------------------------------------------- ferret

def test_ferret_pipeline_completes():
    r = build_ferret(n_queries=200).build(0).run()
    assert r.progress("query-done") == 200


def test_ferret_thread_shift_speedup():
    """Paper: 21.27% ± 0.17%."""
    s, a, b = speedup(
        build_ferret(DEFAULT_THREADS, n_queries=600),
        build_ferret(OPTIMIZED_THREADS, n_queries=600),
    )
    assert s == pytest.approx(0.21, abs=0.05)


def test_ferret_analytic_period_model():
    assert expected_throughput_period(DEFAULT_THREADS) > expected_throughput_period(
        OPTIMIZED_THREADS
    )


def test_ferret_validates_thread_allocation():
    with pytest.raises(ValueError):
        build_ferret((1, 2, 3))
    with pytest.raises(ValueError):
        build_ferret((0, 1, 1, 1))


# ---------------------------------------------------------------- sqlite

def test_sqlite_indirect_call_fix_speedup():
    """Paper: 25.6% ± 1.0%."""
    s, a, b = speedup(
        build_sqlite(False, inserts_per_thread=500),
        build_sqlite(True, inserts_per_thread=500),
    )
    assert s == pytest.approx(0.25, abs=0.05)
    assert a.progress("row-inserted") == 500 * 10


def test_sqlite_pcache_mutex_is_contended():
    r = build_sqlite(False, inserts_per_thread=300).build(0).run()
    # the shared page-cache mutex serializes the "independent" threads
    eng = r.engine
    # find it via thread bookkeeping: runtime far exceeds cpu/cores ratio
    assert r.runtime_ns * (eng.cfg.cores - 1) > r.cpu_ns


# ---------------------------------------------------------------- memcached

def test_memcached_lock_removal_speedup():
    """Paper: 9.39% ± 0.95%."""
    s, a, _ = speedup(
        build_memcached(False, n_requests=6000),
        build_memcached(True, n_requests=6000),
    )
    assert s == pytest.approx(0.094, abs=0.04)
    assert a.progress("command-done") == 6000


# ------------------------------------------------- fluidanimate/streamcluster

def test_fluidanimate_barrier_replacement_speedup():
    """Paper: 37.5% ± 0.56%."""
    s, a, _ = speedup(
        build_fluidanimate(False, n_phases=100),
        build_fluidanimate(True, n_phases=100),
    )
    assert s == pytest.approx(0.375, abs=0.07)
    assert a.progress("phase-done") == 100


def test_streamcluster_barrier_replacement_speedup():
    """Paper: 68.4% ± 1.12%."""
    s, _, _ = speedup(
        build_streamcluster(False, n_phases=100),
        build_streamcluster(True, n_phases=100),
    )
    assert s == pytest.approx(0.684, abs=0.08)


def test_streamcluster_rng_alone_is_minor():
    """The RNG replacement alone is worth ~2% (paper §4.2.5)."""
    base = build_streamcluster(False, n_phases=100).build(0).run().runtime_ns
    rng_only = (
        build_streamcluster(False, light_rng=True, n_phases=100)
        .build(0)
        .run()
        .runtime_ns
    )
    s = (base - rng_only) / base
    # at test scale the effect is tiny and noisy; it must stay minor either
    # way (the barrier, not the RNG, is the dominant problem)
    assert -0.05 < s < 0.08


# ---------------------------------------------- blackscholes / swaptions

def test_blackscholes_cse_speedup():
    """Paper: 2.56% ± 0.41%."""
    s, _, _ = speedup(
        build_blackscholes(False, n_rounds=80), build_blackscholes(True, n_rounds=80)
    )
    assert s == pytest.approx(0.0256, abs=0.01)


def test_swaptions_loop_fix_speedup():
    """Paper: 15.8% ± 1.10%."""
    s, _, _ = speedup(
        build_swaptions(False, n_iters=100), build_swaptions(True, n_iters=100)
    )
    assert s == pytest.approx(expected_speedup(), abs=0.02)
    assert s == pytest.approx(0.158, abs=0.03)


# ---------------------------------------------------------------- Table 4

@pytest.mark.parametrize("entry", TABLE4, ids=lambda e: e.name)
def test_table4_apps_run_and_count_progress(entry):
    spec = build_parsec_app(entry.name, n_items=120)
    r = spec.build(0).run()
    assert r.runtime_ns > 0
    # breakpoint progress points only count under a profiler; raw runs just
    # verify the structure (engine.progress_counts is for source points)
    assert spec.line("top") == entry.top_line


def test_parsec_unknown_name_rejected():
    with pytest.raises(ValueError):
        build_parsec_app("nginx")
