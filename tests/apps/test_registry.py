"""The public app registry (name-addressable builders + AppRef provenance)."""

import pickle

import pytest

from repro.apps import registry
from repro.apps.example import build_example
from repro.apps.parsec_misc import TABLE4
from repro.apps.registry import AppEntry, AppRef, UnknownAppError
from repro.apps.spec import AppSpec


def test_builtin_apps_registered():
    names = registry.names()
    for expected in ("example", "dedup", "ferret", "sqlite", "memcached",
                     "swaptions", "blackscholes"):
        assert expected in names
    for entry in TABLE4:
        assert entry.name in names
    assert names == sorted(names)


def test_entries_are_dataclasses_not_tuples():
    entry = registry.get("ferret")
    assert isinstance(entry, AppEntry)
    assert entry.name == "ferret"
    assert entry.has_optimized
    assert callable(entry.builder)
    assert not registry.get("example").has_optimized


def test_build_stamps_picklable_ref():
    spec = registry.build("example", rounds=7)
    assert isinstance(spec, AppSpec)
    ref = spec.registry_ref
    assert ref == AppRef(name="example", optimized=False, kwargs=(("rounds", 7),))
    clone = pickle.loads(pickle.dumps(ref)).build()
    assert clone.name == spec.name
    assert clone.registry_ref == ref


def test_build_optimized_variant():
    spec = registry.build("ferret", optimized=True)
    assert spec.registry_ref.optimized
    with pytest.raises(ValueError, match="no optimized variant"):
        registry.build("example", optimized=True)


def test_unknown_app_error_lists_available():
    with pytest.raises(UnknownAppError) as exc_info:
        registry.get("nosuchapp")
    assert "nosuchapp" in str(exc_info.value)
    assert "example" in str(exc_info.value)
    assert isinstance(exc_info.value, KeyError)  # back-compat for dict users


def test_register_unregister_roundtrip():
    def builder(**kwargs):
        return build_example(rounds=2, **kwargs)

    registry.register("_test_app", builder, description="test app")
    try:
        assert "_test_app" in registry.names()
        spec = registry.build("_test_app")
        assert spec.registry_ref == AppRef("_test_app")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("_test_app", builder)
        registry.register("_test_app", builder, replace=True)
    finally:
        registry.unregister("_test_app")
    assert "_test_app" not in registry.names()
    registry.unregister("_test_app")  # no-op, does not raise


def test_direct_builders_leave_ref_unset():
    assert build_example(rounds=2).registry_ref is None
