"""The Figure 1/2 example program."""

import pytest

from repro.apps.example import (
    A_NS,
    B_NS,
    LINE_A,
    LINE_B,
    build_example,
    expected_profile_point,
    optimal_speedup_fraction,
)


def test_round_time_is_critical_path():
    spec = build_example(rounds=20)
    r = spec.build(0).run()
    per_round = r.runtime_ns / 20
    assert per_round == pytest.approx(max(A_NS, B_NS), rel=0.02)
    assert r.progress("round") == 20


def test_ground_truth_helpers():
    assert optimal_speedup_fraction() == pytest.approx(0.0448, abs=0.001)
    assert expected_profile_point(0) == 0.0
    assert expected_profile_point(2) == pytest.approx(0.02, abs=0.002)
    assert expected_profile_point(100) == optimal_speedup_fraction()


def test_line_speedups_change_real_runtime():
    base = build_example(rounds=20).build(0).run().runtime_ns
    # eliminating a(): b becomes the critical path
    opt_a = build_example(rounds=20, line_speedups={LINE_A: 0.0}).build(0).run().runtime_ns
    assert (base - opt_a) / base == pytest.approx(optimal_speedup_fraction(), abs=0.01)
    # eliminating b(): no effect
    opt_b = build_example(rounds=20, line_speedups={LINE_B: 0.0}).build(0).run().runtime_ns
    assert (base - opt_b) / base == pytest.approx(0.0, abs=0.01)


def test_spec_metadata():
    spec = build_example()
    assert spec.primary_progress == "round"
    assert spec.scope.contains(LINE_A)
    assert not spec.scope.contains(__import__("repro.sim.source", fromlist=["line"]).line("other.c:1"))
