"""dedup's hash table and the Figure 4 statistics."""

import pytest

from repro.apps.hashtable import (
    HASH_VARIANTS,
    HashTable,
    figure4_stats,
    hash_original,
    hash_xor,
    make_keys,
)


def test_insert_and_search():
    t = HashTable(buckets=16, hash_fn=hash_xor)
    t.insert(b"a" * 20, "va")
    t.insert(b"b" * 20, "vb")
    assert t.search(b"a" * 20)[0] == "va"
    assert t.search(b"c" * 20)[0] is None
    assert t.size == 2


def test_insert_updates_existing_key():
    t = HashTable(buckets=16)
    t.insert(b"k" * 20, 1)
    t.insert(b"k" * 20, 2)
    assert t.size == 1
    assert t.search(b"k" * 20)[0] == 2


def test_search_reports_chain_links():
    """The chain-walk count is what dedup turns into hashtable.c:217 time."""
    t = HashTable(buckets=1)  # everything collides
    keys = [bytes([i]) * 20 for i in range(10)]
    for k in keys:
        t.insert(k)
    _, links = t.search(keys[9])
    assert links == 10
    _, links_miss = t.search(b"z" * 20)
    assert links_miss == 10


def test_make_keys_distinct_and_deterministic():
    a = make_keys(100, seed=1)
    b = make_keys(100, seed=1)
    assert a == b
    assert len(set(a)) == 100
    assert all(len(k) == 20 for k in a)
    assert make_keys(100, seed=2) != a


def test_original_hash_collapses_range():
    keys = make_keys(1000, seed=0)
    values = {hash_original(k) for k in keys}
    assert len(values) < 120  # narrow band: the paper's pathology


def test_xor_hash_spreads():
    keys = make_keys(1000, seed=0)
    values = {hash_xor(k) % 4096 for k in keys}
    assert len(values) > 700


def test_figure4_ordering_matches_paper():
    """Utilization: original << noshift << xor; chains reversed (Figure 4)."""
    stats = {s.variant: s for s in figure4_stats(n_keys=7000, buckets=4096)}
    assert stats["original"].utilization < 0.05          # paper: 2.3%
    assert 0.25 < stats["noshift"].utilization < 0.65    # paper: 54.4%
    assert 0.70 < stats["xor"].utilization < 0.90        # paper: 82.0%
    assert stats["original"].mean_chain > 60             # paper: 76.7
    assert stats["xor"].mean_chain == pytest.approx(2.09, abs=0.15)  # paper: 2.09
    assert (
        stats["original"].mean_chain
        > stats["noshift"].mean_chain
        > stats["xor"].mean_chain
    )


def test_histogram_sums_to_used_buckets():
    t = HashTable(buckets=64, hash_fn=hash_xor)
    for k in make_keys(100, seed=3):
        t.insert(k)
    hist = t.chain_histogram()
    used = sum(hist.values())
    assert used == sum(1 for b in t.buckets if b)
    assert sum(length * count for length, count in hist.items()) == 100


def test_validation():
    with pytest.raises(ValueError):
        HashTable(buckets=0)
    assert set(HASH_VARIANTS) == {"original", "noshift", "xor"}
