"""GAPP baseline: blocked-time criticality, holder attribution, passivity."""

from repro.baselines.gapp import GappObserver
from repro.sim import (
    MS,
    US,
    Join,
    Lock,
    Program,
    SimConfig,
    Spawn,
    Unlock,
    Work,
    call,
    line,
)
from repro.sim.sync import Mutex

L_HOLD = line("app.c:10")   # the critical section the holder runs
L_OTHER = line("app.c:99")


def run(main, cores=4):
    g = GappObserver()
    Program(main, config=SimConfig(cores=cores)).run(observers=[g])
    return g.profile()


def _contended(n_waiters):
    """One holder keeps ``n_waiters`` threads blocked for ~2ms."""

    def main(t):
        m = Mutex()

        def holder(t2):
            yield Lock(m)
            yield Work(L_HOLD, MS(2))
            # unlock with the IP at the critical section's line, like an app
            # model tagging its sync calls (sqlite's pthreadMutexLeave)
            yield Unlock(m, line=L_HOLD)

        def waiter(t2):
            yield Lock(m)
            yield Unlock(m)

        threads = [(yield Spawn(holder, name="holder"))]
        yield Work(L_OTHER, US(10))  # holder takes the lock first
        for i in range(n_waiters):
            threads.append((yield Spawn(waiter, name=f"w{i}")))
        for th in threads:
            yield Join(th)

    return main


def test_attributes_blocked_time_to_holder_site():
    p = run(_contended(1))
    keys = {e.key: e for e in p.by_line()}
    # the waker (unlocker) was executing its critical section at app.c:10;
    # main's concurrent Join wait lands on <runtime> (the joinee exits from
    # pseudo code), so both sites appear
    assert "app.c:10" in keys
    entry = keys["app.c:10"]
    # two edges land here: the mutex handoff, and main's Join of the holder
    # (the holder exits with its IP still on app.c:10) — both were the
    # holder's fault, which is the point
    assert entry.edges == 2
    assert MS(2) < entry.blocked_s * 1e9 <= MS(4)
    assert p.criticality_line(L_HOLD) > 90.0


def test_criticality_weights_by_concurrent_blockers():
    """More concurrent waiters weigh each blocked nanosecond more."""
    p1 = run(_contended(1))
    p3 = run(_contended(3))
    w1, b1, _ = p1.sites[L_HOLD]
    w3, b3, _ = p3.sites[L_HOLD]
    # weighted/blocked is the average number of concurrently-blocked
    # threads over the blocking windows; with three waiters (plus main
    # join-blocked) it must sit well above the single-waiter case
    assert w3 / b3 > (w1 / b1) + 0.5
    assert w1 >= b1  # never below the raw blocked time


def test_callchain_walks_out_of_pseudo_frames():
    """A holder unlocking from <libc> code attributes to its app callsite."""
    from repro.sim.source import LIBC_FILE, SourceLine

    lib_line = SourceLine(LIBC_FILE, 7)
    app_site = line("app.c:42")

    def main(t):
        m = Mutex()

        def lib_unlock(m):
            yield Work(lib_line, US(5))
            yield Unlock(m, line=lib_line)

        def holder(t2):
            yield Lock(m)
            yield Work(L_HOLD, MS(1))
            yield from call("lib_unlock", lib_unlock(m), callsite=app_site)

        def waiter(t2):
            yield Lock(m)
            yield Unlock(m)

        a = yield Spawn(holder, name="holder")
        yield Work(L_OTHER, US(10))
        b = yield Spawn(waiter, name="waiter")
        yield Join(a)
        yield Join(b)

    p = run(main)
    keys = [e.key for e in p.by_line()]
    # the innermost frame at unlock time is <libc>; attribution walks out
    # to the app-level callsite instead
    assert "app.c:42" in keys
    assert not any(k.startswith(f"{LIBC_FILE}:") for k in keys)


def test_sqlite_fingers_mutex_leave():
    """The striped-free page cache serializes on pthreadMutexLeave's lock."""
    from repro.apps.sqlite import LINE_MUTEX_LEAVE, build_sqlite

    g = GappObserver()
    build_sqlite(False, inserts_per_thread=200).build(0).run(observers=[g])
    p = g.profile()
    assert p.by_line()[0].key == str(LINE_MUTEX_LEAVE)
    assert p.criticality_line(LINE_MUTEX_LEAVE) > 50.0
    assert p.total_edges > 100
    # weighted >= raw blocked: many threads wait concurrently
    assert p.total_weighted_ns >= p.total_blocked_ns


def test_passive_observer_does_not_perturb_runtime():
    from repro.apps.sqlite import build_sqlite

    base = build_sqlite(False, inserts_per_thread=100).build(0).run()
    g = GappObserver()
    observed = build_sqlite(False, inserts_per_thread=100).build(0).run(
        observers=[g]
    )
    assert observed.runtime_ns == base.runtime_ns
    assert observed.cpu_ns == base.cpu_ns


def test_render_and_tie_breaks():
    p = run(_contended(2))
    out = p.render()
    assert "GAPP criticality" in out
    assert "app.c:10" in out
    # by_func aggregates the holder's sites under its function; sorting is
    # by (-weight, key) so equal-weight rows order by name
    funcs = [e.key for e in p.by_func()]
    assert len(funcs) == len(set(funcs))


def test_no_contention_profile_is_empty():
    def main(t):
        yield Work(L_OTHER, MS(1))

    p = run(main)
    assert p.by_line() == []
    assert p.total_edges == 0
    assert p.total_weighted_ns == 0
