"""gprof baseline: flat profile, call graph, probe effect (Figure 2a)."""

import pytest

from repro.apps.example import build_example
from repro.baselines.gprof import GprofObserver
from repro.sim import US, Program, Work, call, line

L = line("g.c:1")


def test_example_flat_profile_matches_figure_2a():
    """Figure 2a: gprof reports a ~51%, b ~49% — the misleading answer."""
    g = GprofObserver()
    build_example(rounds=30).build(0).run(observers=[g])
    p = g.profile()
    assert p.pct_time("a") == pytest.approx(51.1, abs=1.0)
    assert p.pct_time("b") == pytest.approx(48.9, abs=1.0)
    flat = p.flat()
    assert flat[0].func == "a"
    assert flat[0].calls == 30


def test_call_graph_edges():
    g = GprofObserver()

    def main(t):
        def inner():
            yield Work(L, US(10))

        def outer():
            yield from call("inner", inner())

        for _ in range(4):
            yield from call("outer", outer())

    Program(main).run(observers=[g])
    p = g.profile()
    assert p.calls["outer"] == 4
    assert p.calls["inner"] == 4
    assert p.callers("inner") == {"outer": 4}
    # top-level code is "<main>", consistently across flat/calls/edges
    assert p.callers("outer") == {"<main>": 4}
    assert p.callers("<main>") == {"<spontaneous>": 1}
    assert p.calls["<main>"] == 1


def test_flat_ties_break_by_name_not_insertion_order():
    """Equal self-time rows sort alphabetically, not by execution order."""
    g = GprofObserver()

    def main(t):
        def fn():
            yield Work(L, US(10))

        # adversarial execution order: reverse-alphabetical
        for name in ("zeta", "mid", "alpha"):
            yield from call(name, fn())

    Program(main).run(observers=[g])
    rows = [e.func for e in g.profile().flat()]
    assert rows == ["alpha", "mid", "zeta"]


def test_instrumentation_overhead_slows_program():
    """gprof's mcount probe effect: instrumented runs are slower (§4.4)."""

    def build():
        def main(t):
            def fn():
                yield Work(L, US(5))

            for _ in range(2000):
                yield from call("fn", fn())

        return Program(main)

    base = build().run().runtime_ns
    instrumented = build().run(observers=[GprofObserver(call_overhead_ns=300)]).runtime_ns
    assert instrumented >= base + 2000 * 300


def test_render_output():
    g = GprofObserver()
    build_example(rounds=5).build(0).run(observers=[g])
    out = g.profile().render()
    assert "Flat profile" in out
    assert "a" in out and "b" in out
