"""perf baseline: sampling flat profile (Figure 7b)."""

import pytest

from repro.baselines.perf import PerfObserver
from repro.sim import MS, US, Program, SimConfig, Work, call, line

L1 = line("p.c:1")
L2 = line("p.c:2")


def test_sample_shares_proportional_to_time():
    obs = PerfObserver()

    def main(t):
        for _ in range(100):
            yield Work(L1, US(300))
            yield Work(L2, US(100))

    cfg = SimConfig(sample_period_ns=US(50), sample_phase_jitter=False)
    Program(main, config=cfg).run(observers=[obs])
    p = obs.profile()
    assert p.pct_line(L1) == pytest.approx(75.0, abs=2.0)
    assert p.pct_line(L2) == pytest.approx(25.0, abs=2.0)


def test_by_func_aggregation():
    obs = PerfObserver()

    def main(t):
        def fa():
            yield Work(L1, MS(3))

        def fb():
            yield Work(L2, MS(1))

        yield from call("fa", fa())
        yield from call("fb", fb())

    cfg = SimConfig(sample_period_ns=US(100), sample_phase_jitter=False)
    Program(main, config=cfg).run(observers=[obs])
    p = obs.profile()
    assert p.pct_func("fa") == pytest.approx(75.0, abs=2.0)
    rows = p.by_func()
    assert rows[0].key == "fa"


def test_sqlite_hot_functions_look_tiny_to_perf():
    """Figure 7b: the three lines Coz flags barely register in perf."""
    from repro.apps.sqlite import (
        LINE_MEMSIZE,
        LINE_MUTEX_LEAVE,
        LINE_PCACHE_FETCH,
        build_sqlite,
    )

    obs = PerfObserver()
    build_sqlite(False, inserts_per_thread=400).build(0).run(observers=[obs])
    p = obs.profile()
    total_hot = (
        p.pct_line(LINE_MEMSIZE)
        + p.pct_line(LINE_MUTEX_LEAVE)
        + p.pct_line(LINE_PCACHE_FETCH)
    )
    # a conventional profiler would dismiss these lines entirely, yet the
    # paper's fix to them yields ~25%
    assert total_hot < 12.0
    top = p.by_line()[0]
    assert top.key in ("sqlite3.c:78000", "sqlite3.c:64100")


def test_rank_ties_break_by_name_not_insertion_order():
    """Equal-count rows sort by key; Counter insertion order must not leak."""
    from collections import Counter

    from repro.baselines.perf import PerfProfile

    # adversarial insertion order: reverse-alphabetical
    lines = Counter()
    for name in ("z.c:9", "m.c:5", "a.c:1"):
        lines[line(name)] = 7
    funcs = Counter({"zeta": 7, "mid": 7, "alpha": 7})
    p = PerfProfile(lines, funcs)
    assert [e.key for e in p.by_line()] == ["a.c:1", "m.c:5", "z.c:9"]
    assert [e.key for e in p.by_func()] == ["alpha", "mid", "zeta"]
    # count still dominates the name
    funcs["zeta"] += 1
    p = PerfProfile(lines, funcs)
    assert [e.key for e in p.by_func()] == ["zeta", "alpha", "mid"]


def test_main_key_normalized_at_observer_boundary():
    """Top-level samples intern as "<main>" so pct_func agrees with by_func."""
    obs = PerfObserver()

    def main(t):
        yield Work(L1, MS(2))

    cfg = SimConfig(sample_period_ns=US(100), sample_phase_jitter=False)
    Program(main, config=cfg).run(observers=[obs])
    p = obs.profile()
    assert p.by_func()[0].key == "<main>"
    assert p.pct_func("<main>") == pytest.approx(100.0)


def test_render():
    obs = PerfObserver()

    def main(t):
        yield Work(L1, MS(2))

    Program(main).run(observers=[obs])
    out = obs.profile().render(by="line")
    assert "Overhead" in out
    assert "p.c:1" in out
