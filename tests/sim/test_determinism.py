"""Determinism: identical seeds give identical executions."""

from repro.apps.dedup import build_dedup
from repro.apps.example import build_example
from repro.sim import MS, line

L = line("d.c:1")


def test_same_seed_same_runtime():
    spec = build_example(rounds=10)
    a = spec.build(3).run()
    b = spec.build(3).run()
    assert a.runtime_ns == b.runtime_ns
    assert a.cpu_ns == b.cpu_ns
    assert a.progress_counts == b.progress_counts


def test_different_seed_different_phase():
    """Seeds only drive sampling phase here; runtimes stay equal, sampling
    state differs (checked via sample counts under a profiler elsewhere)."""
    spec = build_example(rounds=10)
    a = spec.build(1).run()
    b = spec.build(2).run()
    assert a.runtime_ns == b.runtime_ns


def test_complex_app_deterministic():
    spec = build_dedup("original", n_blocks=200)
    a = spec.build(5).run()
    b = spec.build(5).run()
    assert a.runtime_ns == b.runtime_ns
    assert a.progress_counts == b.progress_counts


def test_profiled_run_deterministic():
    from repro.core.config import CozConfig
    from repro.core.profiler import CausalProfiler

    spec = build_example(rounds=30)

    def profiled():
        cfg = CozConfig(scope=spec.scope, experiment_duration_ns=MS(20), seed=11)
        prof = CausalProfiler(cfg, spec.progress_points)
        spec.build(7).run(hook=prof)
        return [
            (str(e.line), e.speedup_pct, e.duration_ns, e.delay_count)
            for e in prof.data.experiments
        ]

    assert profiled() == profiled()
