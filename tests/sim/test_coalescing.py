"""Chunk coalescing: event reduction, fairness truncation, determinism.

Regression coverage for the engine hot-path overhaul: the coalesced inner
loop must process far fewer events on undersubscribed machines while
producing results bit-identical to the legacy per-quantum path
(``SimConfig.coalesce=False``), including when fairness forces an in-flight
mega-chunk to be truncated back to the quantum grid.  Also pins the
per-engine tid allocation: two engines in one process must produce
identical traces even under interference rescaling, which iterates the
running set.
"""

from dataclasses import replace

from repro.apps.streamcluster import build_streamcluster
from repro.sim import MS, Join, Program, SimConfig, Sleep, Spawn, Work, line
from repro.sim.hooks import HookAction, ProfilerHook
from repro.sim.trace import TraceHasher

LA = line("a.c:1")
LB = line("a.c:2")


class _SamplingHook(ProfilerHook):
    """Turns sampling on and counts delivered samples (timing-sensitive:
    any change to chunk boundaries that perturbed sample interpolation or
    batch delivery would change the trace digest)."""

    wants_samples = True

    def __init__(self):
        self.samples = []

    def on_run_start(self, engine):
        engine.enable_sampling()

    def on_samples(self, thread, samples):
        self.samples.extend(samples)
        return HookAction()


def _run(main, config, sampling=False):
    hook = _SamplingHook() if sampling else None
    hasher = TraceHasher()
    result = Program(main, config=config).run(hook=hook, observers=[hasher])
    return result, hasher.hexdigest()


def test_coalescing_reduces_events():
    """A single-thread run collapses per-quantum events: down to one chunk
    unsampled, down to one chunk per sample-batch flush when sampling."""

    def main(t):
        yield Work(LA, MS(200))

    legacy = Program(main, config=SimConfig(coalesce=False)).run()
    coalesced = Program(main, config=SimConfig(coalesce=True)).run()
    assert coalesced.runtime_ns == legacy.runtime_ns
    # legacy books ~100 quantum chunks (2 ms each); coalesced books one
    assert legacy.events_processed >= 100
    assert coalesced.events_processed <= 3

    # with sampling live (TraceHasher turns it on), coalesced chunks are
    # bounded by the analytic batch-flush boundary: one event per 10 ms
    # batch instead of one per 2 ms quantum
    legacy_s, _ = _run(main, SimConfig(coalesce=False))
    coal_s, _ = _run(main, SimConfig(coalesce=True))
    assert legacy_s.sample_count == coal_s.sample_count == 200
    assert coal_s.events_processed < legacy_s.events_processed / 4


def test_coalescing_bit_identical_with_sampling():
    """Sample times interpolate identically across chunking modes."""

    def main(t):
        def helper(t2):
            yield Sleep(MS(3))
            yield Work(LB, MS(9))

        child = yield Spawn(helper)
        yield Work(LA, MS(17))
        yield Join(child)

    legacy_r, legacy_d = _run(main, SimConfig(coalesce=False), sampling=True)
    coal_r, coal_d = _run(main, SimConfig(coalesce=True), sampling=True)
    assert coal_d == legacy_d
    assert coal_r.runtime_ns == legacy_r.runtime_ns
    assert coal_r.sample_count == legacy_r.sample_count > 0
    assert coal_r.events_processed < legacy_r.events_processed


def test_fairness_truncation_on_saturated_core():
    """A mega-chunk is truncated when a thread becomes ready on a
    saturated machine: one core, a long-running main, and a sleeper that
    wakes mid-chunk.  Round-robin interleaving (and therefore every sample
    timestamp) must match the legacy engine exactly."""

    def main(t):
        def sleeper(t2):
            yield Sleep(MS(5))
            yield Work(LB, MS(12))

        child = yield Spawn(sleeper)
        yield Work(LA, MS(30))
        yield Join(child)

    config = SimConfig(cores=1)
    legacy_r, legacy_d = _run(main, replace(config, coalesce=False), sampling=True)
    coal_r, coal_d = _run(main, replace(config, coalesce=True), sampling=True)
    assert coal_d == legacy_d
    assert coal_r.runtime_ns == legacy_r.runtime_ns
    assert coal_r.sample_count == legacy_r.sample_count > 0


def test_two_engines_one_process_under_interference():
    """Per-engine tids: a second engine in the same process must replay the
    first one's trace exactly (interference rescaling iterates the running
    set, whose order is tid-driven — the old process-global tid counter
    made it depend on how many runs the process had already executed)."""
    spec = build_streamcluster(n_threads=4, n_phases=30)

    def run_once():
        hasher = TraceHasher()
        result = spec.build(7).run(observers=[hasher])
        tids = [t.tid for t in result.engine.threads]
        return hasher.hexdigest(), result.runtime_ns, tids

    first = run_once()
    second = run_once()
    assert first == second
    # tids are engine-local and dense from zero
    assert first[2] == list(range(len(first[2])))
