"""Bounded channel (pipeline pipe) semantics."""

import pytest

from repro.sim import MS, US, Join, Program, SimConfig, Spawn, Work, line
from repro.sim.sync import Channel

L = line("c.c:1")


def run(main, cores=4):
    return Program(main, config=SimConfig(cores=cores)).run()


def test_fifo_order_single_consumer():
    got = []

    def main(t):
        ch = Channel(8)

        def producer(t2):
            for i in range(20):
                yield from ch.put(i)
            yield from ch.close()

        def consumer(t2):
            while True:
                item = yield from ch.get()
                if item is Channel.CLOSED:
                    break
                got.append(item)

        p = yield Spawn(producer)
        c = yield Spawn(consumer)
        yield Join(p)
        yield Join(c)

    run(main)
    assert got == list(range(20))


def test_capacity_blocks_producer():
    """A fast producer into a full channel must wait for the consumer."""

    def main(t):
        ch = Channel(2)

        def producer(t2):
            for i in range(10):
                yield from ch.put(i)
                assert len(ch) <= 2
            yield from ch.close()

        def consumer(t2):
            while True:
                item = yield from ch.get()
                if item is Channel.CLOSED:
                    break
                yield Work(L, MS(1))  # slow consumer

        p = yield Spawn(producer)
        c = yield Spawn(consumer)
        yield Join(p)
        yield Join(c)

    r = run(main)
    # runtime dominated by the slow consumer, proving the producer blocked
    assert r.runtime_ns >= MS(10)


def test_close_drains_multiple_consumers():
    got = []

    def main(t):
        ch = Channel(4)

        def consumer(t2):
            while True:
                item = yield from ch.get()
                if item is Channel.CLOSED:
                    break
                got.append(item)
                yield Work(L, US(50))

        cs = []
        for _ in range(3):
            cs.append((yield Spawn(consumer)))
        for i in range(30):
            yield from ch.put(i)
        yield from ch.close()
        for c in cs:
            yield Join(c)

    run(main, cores=8)
    assert sorted(got) == list(range(30))


def test_put_after_close_raises():
    def main(t):
        ch = Channel(2)
        yield from ch.close()
        with pytest.raises(RuntimeError):
            yield from ch.put(1)

    run(main)


def test_none_is_a_valid_item():
    def main(t):
        ch = Channel(2)
        yield from ch.put(None)
        item = yield from ch.get()
        assert item is None
        assert item is not Channel.CLOSED

    run(main)


def test_channel_statistics():
    def main(t):
        ch = Channel(4)
        for i in range(6):
            yield from ch.put(i)
            yield from ch.get()
        assert ch.total_put == 6
        assert ch.total_got == 6

    run(main)
