"""Columnar ≡ scalar sample-pipeline equivalence (DESIGN.md §5i).

The columnar pipeline stores run-length-encoded segments and expands sample
timestamps lazily — with numpy vector ops for long segments.  Its contract
is *byte identity* with the scalar reference: same Sample tuples, same batch
boundaries, same snapshot bytes.  These tests pin that contract:

* a deterministic fuzz sweep drives random chunk sequences (periods, rates,
  batch sizes, carry-in accumulators, segment lengths straddling
  ``VECTOR_MIN``) through both pipelines and compares everything;
* the ``SAFE_TIME_MAX`` (2^62) regression: near the int64/float64 ceiling
  the vector paths must hand off to the exact arbitrary-precision scalar
  loop instead of wrapping around;
* snapshot round trip: a mid-chunk columnar buffer captures to the
  pipeline-agnostic Sample-tuple wire format and rehydrates as a literal
  segment, and mid-run engine snapshots resume bit-identically under both
  pipelines.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace

import pytest

from repro.sim.sampler import (
    SAFE_TIME_MAX,
    VECTOR_MIN,
    ColumnarBuf,
    Sampler,
)
from repro.sim.source import line
from repro.sim.thread import Frame, VThread

LINES = [line(f"fuzz.c:{i}") for i in range(1, 6)]
FUNCS = ["", "alpha", "beta"]


def _thread(tid=0):
    def body(t):
        yield

    return VThread(body, tid=tid)


def _drive(columnar, chunks, period, batch):
    """One chunk sequence through one pipeline -> (batches, tail, total)."""
    s = Sampler(period_ns=period, batch_size=batch, columnar=columnar)
    t = _thread()
    t.sample_buffer = s.new_buffer()
    batches = []
    now = 0
    for ln, func, callsite, nominal, rate, allow_flush in chunks:
        t.activity_line = ln
        t.stack = [Frame(func, callsite)] if func else []
        t.chain_cache = None
        now += math.ceil(nominal * rate)
        b = s.account(t, nominal, now=now, allow_flush=allow_flush, rate=rate)
        if b is not None:
            batches.append(list(b))
    return batches, list(t.sample_buffer), s.total_samples


def _random_chunks(rng, period):
    chunks = []
    for _ in range(rng.randrange(4, 28)):
        ln = rng.choice(LINES)
        func = rng.choice(FUNCS)
        callsite = rng.choice(LINES) if func else None
        # segment lengths from 0 to well past VECTOR_MIN
        nominal = rng.randrange(0, period * (VECTOR_MIN * 3))
        rate = 1.0 if rng.random() < 0.5 else rng.uniform(0.4, 3.0)
        allow_flush = rng.random() < 0.8
        chunks.append((ln, func, callsite, nominal, rate, allow_flush))
    return chunks


@pytest.mark.parametrize("seed", range(15))
def test_columnar_pipeline_is_byte_identical_to_scalar(seed):
    """Property: any chunk sequence yields identical batches and buffers."""
    rng = random.Random(seed)
    period = rng.randrange(50, 5000)
    batch = rng.randrange(1, 40)
    chunks = _random_chunks(rng, period)
    s_batches, s_tail, s_total = _drive(False, chunks, period, batch)
    c_batches, c_tail, c_total = _drive(True, chunks, period, batch)
    assert c_batches == s_batches, f"batch divergence (seed {seed})"
    assert c_tail == s_tail, f"tail-buffer divergence (seed {seed})"
    assert c_total == s_total


@pytest.mark.parametrize("rate", [1.0, 1.0009, 2.5])
def test_near_2_62_times_take_the_exact_slow_path(rate):
    """Regression: segments near SAFE_TIME_MAX must not wrap or drift.

    At virtual times around 2^62 the vectorized ``base + k*period`` /
    ``cpu * rate`` math can overflow int64 or lose float64 precision, so
    ``account`` must fall back to exact Python integers there — and stay
    byte-identical to the scalar pipeline, with no sample past the chunk
    edge.
    """
    period = 1000
    n_samples = VECTOR_MIN * 2  # long enough that the vector path would engage
    nominal = period * n_samples
    now = SAFE_TIME_MAX + math.ceil(nominal * rate)

    def run(columnar):
        s = Sampler(period_ns=period, batch_size=10_000, columnar=columnar)
        t = _thread()
        t.sample_buffer = s.new_buffer()
        t.activity_line = LINES[0]
        s.account(t, nominal, now=now, rate=rate)
        return list(t.sample_buffer)

    scalar, columnar = run(False), run(True)
    assert columnar == scalar
    assert len(scalar) == n_samples
    assert all(s.time <= now for s in scalar)
    # exact arithmetic, not a wrapped int64: every timestamp is positive
    # and sits inside the chunk span
    start = now - math.ceil(nominal * rate)
    assert all(start < s.time <= now for s in scalar)


def test_columnar_buffer_snapshot_round_trip():
    """Mid-chunk buffers capture as Sample tuples and rehydrate losslessly."""
    s = Sampler(period_ns=1000, batch_size=10_000, columnar=True)
    t = _thread()
    t.sample_buffer = s.new_buffer()
    now = 0
    for i, nominal in enumerate([2_500, 40_000, 777]):
        t.activity_line = LINES[i % len(LINES)]
        t.chain_cache = None
        rate = 1.0 if i % 2 == 0 else 1.3
        now += math.ceil(nominal * rate)
        s.account(t, nominal, now=now, rate=rate)
    assert isinstance(t.sample_buffer, ColumnarBuf)
    assert len(t.sample_buffer.segs) > 1  # genuinely mid-accumulation
    captured = tuple(t.sample_buffer)  # snapshot capture wire format
    restored = s.new_buffer(captured)  # snapshot restore path
    assert isinstance(restored, ColumnarBuf)
    assert len(restored) == len(captured)
    assert restored.materialize() == list(captured)
    # the rehydrated buffer keeps accumulating like the original would
    t2 = _thread()
    t2.sample_buffer = restored
    t2.activity_line = LINES[0]
    batch = s.account(t2, 5_000, now=now + 5_000)
    assert batch is None  # batch_size is huge; still buffering
    assert len(restored) == len(captured) + 5


@pytest.mark.parametrize("columnar", [False, True])
def test_mid_run_snapshot_resume_identity_per_pipeline(columnar):
    """Engine snapshots taken mid-run resume bit-identically per pipeline."""
    from repro.apps import registry
    from repro.core.config import CozConfig
    from repro.core.profiler import CausalProfiler
    from repro.sim.clock import MS
    from repro.sim.snapshot import Recorder

    seed = 3
    spec = registry.build("example", rounds=40)
    config = replace(spec.build(seed).config, columnar_samples=columnar)

    def fingerprint(result, prof):
        return (
            result.runtime_ns,
            result.cpu_ns,
            result.sample_count,
            result.events_processed,
            prof.data.to_json(),
        )

    cfg = replace(CozConfig(scope=spec.scope), seed=seed)
    prof = CausalProfiler(cfg, spec.progress_points, spec.latency_specs)
    recorder = Recorder(grid=[MS(5), MS(20)], keep_all=True)
    cold = spec.build(seed).run(hook=prof, config=config, recorder=recorder)
    assert recorder.snapshots, "no mid-run snapshot captured"
    want = fingerprint(cold, prof)
    for snap in recorder.snapshots:
        prof2 = CausalProfiler(
            replace(CozConfig(scope=spec.scope), seed=seed),
            spec.progress_points,
            spec.latency_specs,
        )
        warm = spec.build(seed).resume(snap, hook=prof2, config=config)
        assert fingerprint(warm, prof2) == want, (
            f"resume at t={snap.when} diverged (columnar={columnar})"
        )
