"""Golden-trace equivalence matrix (engine bit-identity referee).

The ``GOLDEN`` hashes below were recorded on the pre-optimization engine
(quantum-chunked inner loop, PR 2 state plus the tid/sampler-rounding bug
fixes that land in the same PR as the coalescing overhaul).  Every cell runs
an app x config combination — serial/parallel sessions, sampling on/off,
sample-phase jitter on/off, nanosleep jitter on/off, interference on/off —
and fingerprints everything observable about the execution:

* the merged :class:`~repro.core.profile_data.ProfileData` wire bytes
  (``to_json``) for profile-session cells, and
* a :class:`~repro.sim.trace.TraceHasher` digest (thread lifecycle, every
  sample with its interpolated timestamp and callchain, progress visits,
  per-line CPU totals, run aggregates) plus the profiler's wire bytes for
  program-level cells.

The optimized engine must reproduce every hash **in both chunking modes**
(``coalesce=True`` and the legacy quantum path), proving the hot-path
overhaul is bit-identical to the engine it replaced.

Re-record (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/sim/test_golden_trace.py --capture
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest

from repro.apps import registry
from repro.apps.example import build_example
from repro.apps.streamcluster import build_streamcluster
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.harness.runner import ProfileRequest, run_profile_session
from repro.sim.clock import MS
from repro.sim.trace import TraceHasher


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _apply_mode(config, coalesce):
    """Force a chunking mode on a SimConfig, if the engine supports it."""
    if coalesce is None or not hasattr(config, "coalesce"):
        return config
    return replace(config, coalesce=coalesce)


def _session_cell(spec_args, runs=2, jobs=1):
    def run(coalesce=None):
        spec = registry.build(*spec_args[:1], **spec_args[1])
        if coalesce is not None:
            # session cells run through app-built SimConfigs; skip forcing
            # legacy mode here (program-level cells cover both modes)
            pass
        out = run_profile_session(spec, ProfileRequest(runs=runs, jobs=jobs))
        return _sha(out.data.to_json())

    return run


def _program_cell(build_spec, seed, coz_kwargs=None, sim_override=None,
                  record_samples=True):
    def run(coalesce=None):
        spec = build_spec()
        program = spec.build(seed)
        config = program.config
        if sim_override:
            config = replace(config, **sim_override)
        config = _apply_mode(config, coalesce)
        cfg = CozConfig(
            scope=spec.scope, experiment_duration_ns=MS(10), seed=seed,
            **(coz_kwargs or {}),
        )
        prof = CausalProfiler(cfg, spec.progress_points)
        hasher = TraceHasher(record_samples=record_samples)
        result = program.run(hook=prof, observers=[hasher], config=config)
        return _sha(
            prof.data.to_json()
            + f"|{hasher.hexdigest()}|{result.runtime_ns}|{result.cpu_ns}"
            + f"|{result.delay_ns}|{result.sample_count}"
        )

    return run


CELLS = {
    "example_session": _session_cell(("example", {"rounds": 40})),
    "sqlite_session": _session_cell(
        ("sqlite", {"threads": 4, "inserts_per_thread": 150})
    ),
    "ferret_session": _session_cell(("ferret", {"n_queries": 80})),
    "example_jitter": _program_cell(
        lambda: build_example(rounds=40), seed=5
    ),
    "example_nojitter": _program_cell(
        lambda: build_example(rounds=40), seed=5,
        sim_override={"sample_phase_jitter": False},
    ),
    "example_cozjitter": _program_cell(
        lambda: build_example(rounds=40), seed=5,
        coz_kwargs={"nanosleep_jitter_ns": 400},
    ),
    "example_nosampling": _program_cell(
        lambda: build_example(rounds=40), seed=5,
        coz_kwargs={"enable_sampling": False}, record_samples=False,
    ),
    "streamcluster_interference": _program_cell(
        lambda: build_streamcluster(n_threads=4, n_phases=40), seed=7
    ),
    "streamcluster_nointerference": _program_cell(
        lambda: build_streamcluster(
            n_threads=4, n_phases=40, interference_coeff=0.0
        ),
        seed=7,
    ),
}

# Recorded on the pre-optimization (quantum-chunked) engine; see module doc.
GOLDEN = {
    "example_cozjitter": "c223d509340774b37e359a114e95f33c96886bb9709a5d8e2ac6a4fb9c09f53b",
    "example_jitter": "541d40fb2a30534ea31b83b37987a7722cc0849f0aac4b042c9b65ecf9759c76",
    "example_nojitter": "297dc3ef1a20f6829a3bf10e1383854fed0b8dd57c7fe21d85c5f1515e8e8bae",
    "example_nosampling": "7a683d967cea0e2e59bd6a2008fd983c4438addd00a1ccb75c25009ed4f000e4",
    "example_session": "3f39753b297b3229d82c7b697286343732e65cc06102787c6a7e5dadf5918e49",
    "ferret_session": "d04f26055dc6ce244c4bebc1f5d58c7b1e787c8ab1452fd0e4bd5a541dfe293e",
    "sqlite_session": "784b069ef7e8e7dadeab183bcccdb69619418a53e4eaac53580e17373dc4f59c",
    "streamcluster_interference": "ed7af2aa1c224d6a28d2218dd833337f1019def03a90fc6c923b764a817d88e5",
    "streamcluster_nointerference": "309abe155fde07fa0de6070d19446bd10ccf0365f2a38518e8a959ad76ccae51",
}


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_golden_trace_coalesced(cell):
    """The optimized (coalescing) engine reproduces the recorded hashes."""
    assert CELLS[cell]() == GOLDEN[cell], (
        f"{cell}: optimized engine diverged from the pre-optimization trace"
    )


_PROGRAM_CELLS = [c for c in sorted(CELLS) if not c.endswith("_session")]


@pytest.mark.parametrize("cell", _PROGRAM_CELLS)
def test_golden_trace_legacy_mode(cell):
    """The retained legacy quantum path also reproduces the hashes."""
    assert CELLS[cell](coalesce=False) == GOLDEN[cell], (
        f"{cell}: legacy quantum path diverged from the recorded trace"
    )


def test_parallel_session_matches_serial():
    """Worker-process fan-out produces the same ProfileData wire bytes."""
    serial = CELLS["example_session"]()
    parallel = _session_cell(("example", {"rounds": 40}), jobs=2)()
    assert serial == parallel == GOLDEN["example_session"]


if __name__ == "__main__":
    import sys

    if "--capture" in sys.argv:
        for name in sorted(CELLS):
            print(f'    "{name}": "{CELLS[name]()}",')
