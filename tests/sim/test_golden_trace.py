"""Golden-trace equivalence matrix (engine bit-identity referee).

The ``GOLDEN`` hashes below were first recorded on the pre-optimization
engine (quantum-chunked inner loop, PR 2 state plus the tid/sampler-rounding
bug fixes that land in the same PR as the coalescing overhaul) and
re-recorded when the ``ProfileData`` wire format gained the interned line
table (version 2) — a serialization-only change: the engine traces were
verified bit-identical against the version-1 hashes immediately before the
wire flip, so trace identity still chains back to the original recording.
Every cell runs
an app x config combination — serial/parallel sessions, sampling on/off,
sample-phase jitter on/off, nanosleep jitter on/off, interference on/off —
and fingerprints everything observable about the execution:

* the merged :class:`~repro.core.profile_data.ProfileData` wire bytes
  (``to_json``) for profile-session cells, and
* a :class:`~repro.sim.trace.TraceHasher` digest (thread lifecycle, every
  sample with its interpolated timestamp and callchain, progress visits,
  per-line CPU totals, run aggregates) plus the profiler's wire bytes for
  program-level cells.

The optimized engine must reproduce every hash **in both chunking modes**
(``coalesce=True`` and the legacy quantum path), proving the hot-path
overhaul is bit-identical to the engine it replaced.

Re-record (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/sim/test_golden_trace.py --capture
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest

from repro.apps import registry
from repro.apps.example import build_example
from repro.apps.streamcluster import build_streamcluster
from repro.core.config import CozConfig
from repro.core.profiler import CausalProfiler
from repro.harness.request import ExecutionConfig
from repro.harness.runner import ProfileRequest, run_profile_session
from repro.sim.clock import MS
from repro.sim.trace import TraceHasher


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _apply_mode(config, coalesce):
    """Force a chunking mode on a SimConfig, if the engine supports it."""
    if coalesce is None or not hasattr(config, "coalesce"):
        return config
    return replace(config, coalesce=coalesce)


def _session_cell(spec_args, runs=2, jobs=1):
    def run(coalesce=None):
        spec = registry.build(*spec_args[:1], **spec_args[1])
        if coalesce is not None:
            # session cells run through app-built SimConfigs; skip forcing
            # legacy mode here (program-level cells cover both modes)
            pass
        out = run_profile_session(
            spec,
            ProfileRequest(runs=runs, execution=ExecutionConfig(jobs=jobs)),
        )
        return _sha(out.data.to_json())

    return run


def _program_cell(build_spec, seed, coz_kwargs=None, sim_override=None,
                  record_samples=True, extra_observers=None):
    def run(coalesce=None):
        spec = build_spec()
        program = spec.build(seed)
        config = program.config
        if sim_override:
            config = replace(config, **sim_override)
        config = _apply_mode(config, coalesce)
        cfg = CozConfig(
            scope=spec.scope, experiment_duration_ns=MS(10), seed=seed,
            **(coz_kwargs or {}),
        )
        prof = CausalProfiler(cfg, spec.progress_points)
        hasher = TraceHasher(record_samples=record_samples)
        observers = [hasher] + (extra_observers() if extra_observers else [])
        result = program.run(hook=prof, observers=observers, config=config)
        return _sha(
            prof.data.to_json()
            + f"|{hasher.hexdigest()}|{result.runtime_ns}|{result.cpu_ns}"
            + f"|{result.delay_ns}|{result.sample_count}"
        )

    return run


CELLS = {
    "example_session": _session_cell(("example", {"rounds": 40})),
    "sqlite_session": _session_cell(
        ("sqlite", {"threads": 4, "inserts_per_thread": 150})
    ),
    "ferret_session": _session_cell(("ferret", {"n_queries": 80})),
    "example_jitter": _program_cell(
        lambda: build_example(rounds=40), seed=5
    ),
    "example_nojitter": _program_cell(
        lambda: build_example(rounds=40), seed=5,
        sim_override={"sample_phase_jitter": False},
    ),
    "example_cozjitter": _program_cell(
        lambda: build_example(rounds=40), seed=5,
        coz_kwargs={"nanosleep_jitter_ns": 400},
    ),
    "example_nosampling": _program_cell(
        lambda: build_example(rounds=40), seed=5,
        coz_kwargs={"enable_sampling": False}, record_samples=False,
    ),
    "streamcluster_interference": _program_cell(
        lambda: build_streamcluster(n_threads=4, n_phases=40), seed=7
    ),
    "streamcluster_nointerference": _program_cell(
        lambda: build_streamcluster(
            n_threads=4, n_phases=40, interference_coeff=0.0
        ),
        seed=7,
    ),
}

# Trace identity chains to the pre-optimization engine; bytes re-recorded
# for wire format v2 (interned line table) — see module doc.
GOLDEN = {
    "example_cozjitter": "39dfbd00a904be109ecf8823ec9a47a3b2b505d05c46a808b1458f6a8fe9e92d",
    "example_jitter": "8e0552a088f1d57e532dae8dc25ebfa54ad1759580910c3470e058ed27f9a63c",
    "example_nojitter": "00a81d641a380220c227519bb5eceb7f3637a004f548f96adedf9e924231ab32",
    "example_nosampling": "c809a2f8891175a002ffbf431a074b99bb95c8458beb61e8524619099ca678fa",
    "example_session": "fe87d61875f284ee7597737248cfcd4d9335a30646cb6ec8b5c9e086128455ef",
    "ferret_session": "9aa134f090497f01d53174cd808384a3ff0dd30c9fe1c3ea2f78098afb017a2b",
    "sqlite_session": "2caa2afdec70bc9eca636ff7040ef52619106181c44800cb40881e932f438584",
    "streamcluster_interference": "a22cada3ee8bd315b961582fdbe45b792f5282254baf201f07c8b089203e670f",
    "streamcluster_nointerference": "1c8f03fcba89987620ad428ef2e9c81c3783f6511cd04bcf1a73d8d082d31af8",
}


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_golden_trace_coalesced(cell):
    """The optimized (coalescing) engine reproduces the recorded hashes."""
    assert CELLS[cell]() == GOLDEN[cell], (
        f"{cell}: optimized engine diverged from the pre-optimization trace"
    )


_PROGRAM_CELLS = [c for c in sorted(CELLS) if not c.endswith("_session")]


@pytest.mark.parametrize("cell", _PROGRAM_CELLS)
def test_golden_trace_legacy_mode(cell):
    """The retained legacy quantum path also reproduces the hashes."""
    assert CELLS[cell](coalesce=False) == GOLDEN[cell], (
        f"{cell}: legacy quantum path diverged from the recorded trace"
    )


def test_block_observers_do_not_perturb_golden_traces():
    """Observers on the block/unblock surface leave golden hashes unchanged.

    A profiled run with a GAPP observer (plus a plain block-counting
    observer) attached next to the trace hasher must reproduce the recorded
    hash exactly — the notification path is purely observational.
    """
    from repro.baselines.gapp import GappObserver
    from repro.sim.hooks import Observer

    class BlockCounter(Observer):
        def __init__(self):
            self.edges = 0

        def on_block(self, thread, obj):
            self.edges += 1

        def on_unblock(self, thread, waker, blocked_ns):
            pass

    extras = lambda: [GappObserver(), BlockCounter()]  # noqa: E731
    observed = {
        "example_jitter": _program_cell(
            lambda: build_example(rounds=40), seed=5, extra_observers=extras
        ),
        "streamcluster_interference": _program_cell(
            lambda: build_streamcluster(n_threads=4, n_phases=40), seed=7,
            extra_observers=extras,
        ),
    }
    for name, cell in observed.items():
        assert cell() == GOLDEN[name], (
            f"{name}: block observer perturbed the trace"
        )


def test_parallel_session_matches_serial():
    """Worker-process fan-out produces the same ProfileData wire bytes."""
    serial = CELLS["example_session"]()
    parallel = _session_cell(("example", {"rounds": 40}), jobs=2)()
    assert serial == parallel == GOLDEN["example_session"]


if __name__ == "__main__":
    import sys

    if "--capture" in sys.argv:
        for name in sorted(CELLS):
            print(f'    "{name}": "{CELLS[name]()}",')
